//! The replication protocols shipped with the runtime.
//!
//! The paper (§7) ships client/server and master/slave; §3.3 sketches
//! active replication and lazy (cache-style) replication as the kind of
//! variety the standard interface must accommodate. All four are here,
//! each a [`ReplicationSubobject`] attachable to any object class:
//!
//! | protocol | local state | reads | writes |
//! |---|---|---|---|
//! | [`ForwardingProxy`] | none | forwarded | forwarded |
//! | [`ServerReplica`] | full | local | local |
//! | [`MasterReplica`] | full | local | local + propagate |
//! | [`SlaveReplica`] | full | local (when valid) | forwarded to master |
//! | [`CacheProxy`] | cached copy | local while TTL fresh | forwarded |

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use globe_net::{Endpoint, WireError, WireReader, WireWriter};
use globe_sim::{SimDuration, SimTime};

use crate::chunks::{short_id, ChunkId, ChunkRef};
use crate::grp::{protocol_id, GrpBody, PropagationMode, RoleSpec};
use crate::health::FailureReason;
use crate::object::{Invocation, MethodKind};
use crate::replication::{InvokeError, Peer, ReplCtx, ReplicationSubobject};

/// Default timeout for a forwarded invocation.
const FORWARD_TIMEOUT: SimDuration = SimDuration::from_secs(10);

/// How often a slave that believes it is *not* registered with its
/// master re-sends its `Hello`.
const HELLO_RETRY: SimDuration = SimDuration::from_secs(2);

/// How often a slave re-announces while it believes it *is*
/// registered. The master prunes a slave from its propagation set when
/// the push connection dies (crash, partition), and the slave side of
/// that channel is an incoming connection — nothing there is
/// guaranteed to observe the death. Without a registration heartbeat a
/// severed slave keeps serving its last copy as valid while silently
/// missing every subsequent invalidation: the unbounded-staleness leak
/// the schedule fuzzer first surfaced (partition heals, master writes
/// on, severed slave never hears). The heartbeat bounds that exposure
/// to one interval plus a round trip after a partition heals, and a
/// current slave's heartbeat costs only an empty delta in reply. Ticks
/// that follow a push inside the same interval skip the `Hello`
/// entirely (the push already proved the channel), so heartbeat bytes
/// only flow during write-quiet stretches.
const HELLO_HEARTBEAT: SimDuration = SimDuration::from_secs(10);

/// Timer subtoken for the re-announce tick. Forwarded-write timers use
/// the `next_req` counter which starts at 1, so 0 is free.
const HELLO_TIMER: u64 = 0;

/// Deliberate protocol-bug injection, for validating the fuzz auditor.
///
/// The schedule-fuzzing harness needs a known-bad protocol variant to
/// prove the consistency auditor actually catches violations. The one
/// bug re-enabled here is the pre-fix invalidated-slave answer path: an
/// invalidated slave serving `GetState`/`Refresh` from its outdated
/// copy instead of revalidating first, which feeds caches stale state
/// they cannot detect. Process-global because the protocol instances
/// are constructed deep inside the runtime; tests that flip it must not
/// share a process image's state across runs (set it, run, unset it).
pub mod inject {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STALE_SLAVE_ANSWERS: AtomicBool = AtomicBool::new(false);

    /// Re-enables the invalidated-slave stale-answer bug (test use
    /// only).
    pub fn set_stale_slave_answers(on: bool) {
        STALE_SLAVE_ANSWERS.store(on, Ordering::Relaxed);
    }

    /// Whether the stale-answer bug is currently injected.
    pub fn stale_slave_answers() -> bool {
        STALE_SLAVE_ANSWERS.load(Ordering::Relaxed)
    }
}

/// Builds the server-side replication subobject a scenario role calls
/// for — the single place where a [`RoleSpec`] (as carried by a
/// moderator's create command or a persisted replica blob) becomes a
/// live protocol instance. A `Master` role's [`PropagationMode`] is
/// honored verbatim, which is what lets scenario policies sweep
/// propagation modes end to end.
pub fn spawn_replication(protocol: u16, role: RoleSpec) -> Box<dyn ReplicationSubobject> {
    match role {
        RoleSpec::Standalone => Box::new(ServerReplica::new(protocol)),
        RoleSpec::Master { mode } => Box::new(MasterReplica::new(protocol, mode)),
        RoleSpec::Slave { master } => Box::new(SlaveReplica::new(protocol, master)),
    }
}

/// How many recent per-write deltas a write-accepting replica retains
/// to answer [`GrpBody::Refresh`] catch-ups without a full state
/// transfer.
const DELTA_HISTORY_CAP: usize = 32;

/// A bounded log of recent write deltas at a write-accepting replica,
/// keyed by the version each delta produces.
///
/// Delta payloads are concatenable by construction (see
/// [`SemanticsObject::take_delta`](crate::object::SemanticsObject::take_delta)),
/// so a requester at version `v` can be caught up to `v+k` with one
/// [`GrpBody::Delta`] splicing `k` retained payloads together. A write
/// that produced no delta (class keeps no log, or the log overflowed)
/// breaks the chain: the history resets and requesters behind that
/// point fall back to full state.
#[derive(Default)]
struct DeltaHistory {
    /// `(to_version, payload)`, consecutive versions, oldest first.
    entries: VecDeque<(u64, Vec<u8>)>,
}

impl DeltaHistory {
    /// Records the delta that produced `to_version` (`None` breaks the
    /// chain and clears the history).
    fn record(&mut self, to_version: u64, delta: Option<Vec<u8>>) {
        let Some(payload) = delta else {
            self.entries.clear();
            return;
        };
        if let Some(&(last, _)) = self.entries.back() {
            if to_version != last + 1 {
                self.entries.clear();
            }
        }
        self.entries.push_back((to_version, payload));
        while self.entries.len() > DELTA_HISTORY_CAP {
            self.entries.pop_front();
        }
    }

    /// Forgets everything (installs break the version chain; lineage
    /// changes make retained versions meaningless).
    fn clear(&mut self) {
        self.entries.clear();
    }

    /// Serializes for [`ReplicationSubobject::persist_extra`].
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.entries.len() as u32);
        for (v, p) in &self.entries {
            w.put_u64(*v);
            w.put_bytes(p);
        }
    }

    /// Deserializes a blob produced by [`DeltaHistory::encode`].
    fn decode(r: &mut WireReader<'_>) -> Result<DeltaHistory, WireError> {
        let n = r.u32()? as usize;
        if n > 4096 {
            return Err(WireError::TooLarge);
        }
        let mut entries = VecDeque::with_capacity(n.min(DELTA_HISTORY_CAP));
        for _ in 0..n {
            entries.push_back((r.u64()?, r.bytes()?.to_vec()));
        }
        Ok(DeltaHistory { entries })
    }

    /// The concatenated payload advancing `have` to `current`, if every
    /// intermediate delta is retained. `have == current` yields an
    /// empty payload (a freshness confirmation).
    fn since(&self, have: u64, current: u64) -> Option<Vec<u8>> {
        if have > current {
            return None;
        }
        if have == current {
            return Some(Vec::new());
        }
        let first = self.entries.front()?.0;
        if have + 1 < first || self.entries.back()?.0 < current {
            return None;
        }
        let mut payload = Vec::new();
        for (v, p) in &self.entries {
            if *v > have && *v <= current {
                payload.extend_from_slice(p);
            }
        }
        Some(payload)
    }
}

/// Serializes a protocol's delta history for
/// [`ReplicationSubobject::persist_extra`].
fn history_extra(history: &DeltaHistory) -> Vec<u8> {
    let mut w = WireWriter::new();
    history.encode(&mut w);
    w.finish()
}

/// Restores a delta history from a `persist_extra` blob; anything
/// undecodable (including the empty blob of a pre-upgrade replica)
/// degrades to a blank history — the worst case is one full-state
/// answer that the history would have turned into a delta.
fn history_from_extra(data: &[u8]) -> DeltaHistory {
    let mut r = WireReader::new(data);
    match DeltaHistory::decode(&mut r) {
        Ok(h) if r.expect_end().is_ok() => h,
        _ => DeltaHistory::default(),
    }
}

/// Builds the compact [`GrpBody::ChunkAnnounce`] for the current state,
/// or `None` when the class keeps no chunked state (callers fall back
/// to a full [`GrpBody::Update`]).
fn chunk_announce(c: &ReplCtx<'_>, version: u64, epoch: u64) -> Option<GrpBody> {
    let (skeleton, manifest) = c.save_chunked()?;
    let chunks = manifest.iter().map(|r| (short_id(&r.id), r.len)).collect();
    Some(GrpBody::ChunkAnnounce {
        version,
        epoch,
        skeleton,
        chunks,
    })
}

/// Answers a [`GrpBody::Refresh`]: a [`GrpBody::Delta`] when the
/// requester's copy belongs to this incarnation's lineage and the
/// history covers its version, a full [`GrpBody::State`] otherwise.
fn answer_refresh(
    c: &mut ReplCtx<'_>,
    from: Peer,
    req: u64,
    have_version: u64,
    req_epoch: u64,
    history: &DeltaHistory,
) {
    let current = c.version();
    let my_epoch = c.copy_epoch();
    if req_epoch == my_epoch && my_epoch != 0 {
        if let Some(payload) = history.since(have_version, current) {
            c.send(
                from,
                GrpBody::Delta {
                    from_version: have_version,
                    to_version: current,
                    epoch: my_epoch,
                    payload,
                },
            );
            return;
        }
    }
    let state = c.state();
    c.send(
        from,
        GrpBody::State {
            req,
            version: current,
            epoch: my_epoch,
            state,
        },
    );
}

/// A waiter for state to arrive: a local invocation or a remote read.
#[derive(Debug)]
enum Waiter {
    Local {
        token: u64,
        inv: Invocation,
    },
    Remote {
        from: Peer,
        req: u64,
        inv: Invocation,
    },
}

/// Client-side proxy: no local state, forwards reads to the nearest
/// replica and writes to the write-capable replica.
///
/// This is the whole client side of the paper's client/server protocol,
/// and doubles as the pure-client representative for master/slave and
/// active objects. It keeps the *entire* distance-sorted replica list
/// from binding and fails over to the next replica when the current one
/// becomes unreachable — replication as an availability technique
/// (paper §6.1, experiment E8).
pub struct ForwardingProxy {
    proto: u16,
    /// Read replicas, best-ranked first; `read_idx` selects the current
    /// one.
    read_targets: Vec<Endpoint>,
    read_idx: usize,
    write_target: Endpoint,
    pending: BTreeMap<u64, PendingForward>,
    next_req: u64,
}

/// One in-flight forwarded invocation: who we asked and when, so the
/// answer (or its absence) can be attributed to a replica in the
/// health ledger.
struct PendingForward {
    token: u64,
    target: Endpoint,
    sent_at: SimTime,
}

impl ForwardingProxy {
    /// Creates a proxy for an object speaking `proto`. `read_targets`
    /// must be sorted nearest-first and nonempty.
    ///
    /// # Panics
    ///
    /// Panics if `read_targets` is empty.
    pub fn new(proto: u16, read_targets: Vec<Endpoint>, write_target: Endpoint) -> ForwardingProxy {
        assert!(!read_targets.is_empty(), "proxy needs a read target");
        ForwardingProxy {
            proto,
            read_targets,
            read_idx: 0,
            write_target,
            pending: BTreeMap::new(),
            next_req: 1,
        }
    }

    fn read_target(&self) -> Endpoint {
        self.read_targets[self.read_idx % self.read_targets.len()]
    }
}

impl ReplicationSubobject for ForwardingProxy {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        false
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let target = match c.kind_of(inv.method) {
            MethodKind::Read => self.read_target(),
            MethodKind::Write => self.write_target,
        };
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(
            req,
            PendingForward {
                token,
                target,
                sent_at: c.now(),
            },
        );
        c.send(Peer::Addr(target), GrpBody::Invoke { req, inv });
        c.set_timer(FORWARD_TIMEOUT, req);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, _from: Peer, body: GrpBody) {
        if let GrpBody::InvokeResult { req, ok, data } = body {
            if let Some(p) = self.pending.remove(&req) {
                let latency = c.now().saturating_sub(p.sent_at);
                let result = if ok {
                    Ok(data)
                } else {
                    Err(decode_error(&data))
                };
                report_reply_health(c, p.target, latency, &result);
                c.complete_from(p.token, result, p.target);
            }
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        if let Some(p) = self.pending.remove(&subtoken) {
            c.report_failure(p.target, FailureReason::Timeout);
            c.complete_from(p.token, Err(InvokeError::Timeout), p.target);
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.read_target() || peer == self.write_target {
            c.report_failure(peer, FailureReason::Connect);
        }
        // Only invocations aimed at the dead peer fail; requests in
        // flight to other replicas stay pending.
        let (dead, alive): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|(_, p)| p.target == peer);
        self.pending = alive.into_iter().collect();
        for (_, p) in dead {
            c.complete_from(p.token, Err(InvokeError::PeerUnreachable), p.target);
        }
        // No silent failover here: the `PeerUnreachable` completions
        // (and the ledger entry above) hand the decision to the
        // client's health-ranked rotation, which picks the healthiest
        // surviving candidate rather than the next list position — and
        // is accounted for, so operators can see the failover happened.
    }

    fn targets(&self) -> Vec<Endpoint> {
        self.read_targets.clone()
    }

    fn current_target(&self) -> Option<Endpoint> {
        Some(self.read_target())
    }

    fn retarget(&mut self, ep: Endpoint) -> bool {
        match self.read_targets.iter().position(|&t| t == ep) {
            Some(i) if i != self.read_idx % self.read_targets.len() => {
                self.read_idx = i;
                true
            }
            _ => false,
        }
    }

    fn widen_targets(&mut self, eps: &[Endpoint]) -> usize {
        // Pin the current target by index first: appending must not
        // silently move reads to a replica we have never talked to.
        self.read_idx %= self.read_targets.len();
        let mut added = 0;
        for &ep in eps {
            if !self.read_targets.contains(&ep) {
                self.read_targets.push(ep);
                added += 1;
            }
        }
        added
    }
}

/// Classifies a forwarded-invocation reply for the health ledger: a
/// successful or application-level result proves the replica alive
/// (latency feeds the EWMA); "no such object here" means the replica
/// was torn down under our binding; internal errors mark it wedged.
fn report_reply_health(
    c: &mut ReplCtx<'_>,
    target: Endpoint,
    latency: SimDuration,
    result: &Result<Vec<u8>, InvokeError>,
) {
    match result {
        Ok(_) | Err(InvokeError::AccessDenied) => c.report_success(target, latency),
        Err(InvokeError::Sem(msg)) if msg.contains("no such object") => {
            c.report_failure(target, FailureReason::Invalidated)
        }
        Err(InvokeError::Internal(_)) => c.report_failure(target, FailureReason::Protocol),
        // Other semantics errors came from a live replica executing the
        // method: the endpoint is healthy even if the call failed.
        Err(_) => c.report_success(target, latency),
    }
}

/// Encodes an invocation failure for the wire.
pub(crate) fn encode_error(e: &InvokeError) -> Vec<u8> {
    e.to_string().into_bytes()
}

fn decode_error(data: &[u8]) -> InvokeError {
    let msg = String::from_utf8_lossy(data);
    if msg.contains("denied") {
        InvokeError::AccessDenied
    } else {
        InvokeError::Sem(msg.into_owned())
    }
}

/// The single server of a client/server object: executes everything
/// locally and answers forwarded invocations.
///
/// The advertised protocol is the *scenario's*, not the server's own:
/// a standalone server behind `CACHE_TTL` tells clients to install
/// cache proxies, behind `CLIENT_SERVER` plain forwarding proxies.
pub struct ServerReplica {
    proto: u16,
    history: DeltaHistory,
}

impl ServerReplica {
    /// Creates the server-side subobject advertising `proto`.
    pub fn new(proto: u16) -> ServerReplica {
        ServerReplica {
            proto,
            history: DeltaHistory::default(),
        }
    }
}

/// Executes an invocation at a full replica, bumping the version on
/// writes and banking the write's delta in the replica's history;
/// shared by every server-side protocol. Draining the delta per write
/// also keeps the semantics subobject's mutation log from growing.
fn exec_at_replica(
    c: &mut ReplCtx<'_>,
    inv: &Invocation,
    history: &mut DeltaHistory,
) -> Result<Vec<u8>, InvokeError> {
    let kind = c.kind_of(inv.method);
    let result = c.exec(inv);
    if kind == MethodKind::Write && result.is_ok() {
        let v = c.bump_version();
        history.record(v, c.take_delta());
    } else if kind == MethodKind::Read {
        c.record_read_freshness();
    }
    result
}

impl ReplicationSubobject for ServerReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        true
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn on_install(&mut self, c: &mut ReplCtx<'_>) {
        c.ensure_epoch();
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let result = exec_at_replica(c, &inv, &mut self.history);
        c.complete(token, result);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => {
                let result = exec_at_replica(c, &inv, &mut self.history);
                let (ok, data) = match result {
                    Ok(d) => (true, d),
                    Err(e) => (false, encode_error(&e)),
                };
                c.send(from, GrpBody::InvokeResult { req, ok, data });
            }
            GrpBody::GetState { req } => {
                let state = c.state();
                let version = c.version();
                let epoch = c.copy_epoch();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version,
                        epoch,
                        state,
                    },
                );
            }
            GrpBody::Refresh {
                req,
                have_version,
                epoch,
            } => {
                answer_refresh(c, from, req, have_version, epoch, &self.history);
            }
            _ => {}
        }
    }

    fn persist_extra(&self) -> Vec<u8> {
        history_extra(&self.history)
    }

    fn restore_extra(&mut self, data: &[u8]) {
        self.history = history_from_extra(data);
    }
}

/// The master of a master/slave or active object: executes writes,
/// bumps the version and propagates to slaves according to the
/// [`PropagationMode`].
pub struct MasterReplica {
    proto: u16,
    mode: PropagationMode,
    slaves: BTreeSet<Endpoint>,
    history: DeltaHistory,
}

impl MasterReplica {
    /// Creates a master advertising `proto` and propagating in `mode`
    /// (`proto` is the scenario's protocol: clients of a `CACHE_TTL`
    /// object install cache proxies even though replication between the
    /// servers is master/slave).
    pub fn new(proto: u16, mode: PropagationMode) -> MasterReplica {
        MasterReplica {
            proto,
            mode,
            slaves: BTreeSet::new(),
            history: DeltaHistory::default(),
        }
    }

    /// The currently known slaves (tests / experiments).
    pub fn slaves(&self) -> &BTreeSet<Endpoint> {
        &self.slaves
    }

    /// Fans one write out to every slave. The body — including the
    /// state snapshot in `PushState` mode — is built *once* and handed
    /// to the runtime's multicast path, which encodes it once for all
    /// N slaves (previously: one state encode and one frame encode per
    /// slave).
    fn propagate(
        &mut self,
        c: &mut ReplCtx<'_>,
        inv: &Invocation,
        version: u64,
        delta: Option<Vec<u8>>,
    ) {
        if self.slaves.is_empty() {
            return;
        }
        let epoch = c.copy_epoch();
        let body = match self.mode {
            PropagationMode::PushState => GrpBody::Update {
                version,
                epoch,
                state: c.state(),
            },
            PropagationMode::Invalidate => GrpBody::Invalidate { version },
            PropagationMode::ApplyOps => GrpBody::Apply {
                version,
                inv: inv.clone(),
            },
            PropagationMode::PushDelta => match delta {
                Some(payload) => GrpBody::Delta {
                    from_version: version - 1,
                    to_version: version,
                    epoch,
                    payload,
                },
                // The class keeps no mutation log (or it overflowed):
                // fall back to shipping the whole state.
                None => GrpBody::Update {
                    version,
                    epoch,
                    state: c.state(),
                },
            },
            // Compact propagation: announce the manifest, slaves fetch
            // only the chunks they lack. Falls back to a full push when
            // the class keeps no chunked state.
            PropagationMode::PushChunks => match chunk_announce(c, version, epoch) {
                Some(body) => body,
                None => GrpBody::Update {
                    version,
                    epoch,
                    state: c.state(),
                },
            },
        };
        let peers = self.slaves.iter().map(|&s| Peer::Addr(s)).collect();
        c.multicast(peers, body);
    }

    /// Ships the chunks a receiver asked for after a
    /// [`GrpBody::ChunkAnnounce`]. Indexes refer to the announced
    /// manifest, so they are only resolvable while the state is still
    /// at the announced version — a stale request (the master wrote on
    /// meanwhile) is answered with a *fresh* announcement instead, and
    /// the receiver restarts its diff from there.
    fn answer_chunk_request(
        &self,
        c: &mut ReplCtx<'_>,
        from: Peer,
        req: u64,
        version: u64,
        indexes: &[u32],
    ) {
        if version == c.version() {
            if let Some((_skeleton, manifest)) = c.save_chunked() {
                let store = c.chunk_store().clone();
                let mut chunks = Vec::with_capacity(indexes.len());
                let mut complete = true;
                {
                    let s = store.borrow();
                    for &i in indexes {
                        match manifest.get(i as usize).and_then(|r| s.get(&r.id)) {
                            Some(data) => chunks.push((i, data.to_vec())),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                }
                if complete {
                    c.send(
                        from,
                        GrpBody::ChunkData {
                            req,
                            version,
                            chunks,
                        },
                    );
                    return;
                }
            }
        }
        let epoch = c.copy_epoch();
        match chunk_announce(c, c.version(), epoch) {
            Some(body) => c.send(from, body),
            None => {
                let state = c.state();
                c.send(
                    from,
                    GrpBody::Update {
                        version: c.version(),
                        epoch,
                        state,
                    },
                );
            }
        }
    }

    fn exec_and_propagate(
        &mut self,
        c: &mut ReplCtx<'_>,
        inv: &Invocation,
    ) -> Result<Vec<u8>, InvokeError> {
        let kind = c.kind_of(inv.method);
        let result = c.exec(inv);
        if kind == MethodKind::Write && result.is_ok() {
            let v = c.bump_version();
            let delta = c.take_delta();
            self.history.record(v, delta.clone());
            self.propagate(c, inv, v, delta);
        } else if kind == MethodKind::Read {
            c.record_read_freshness();
        }
        result
    }
}

impl ReplicationSubobject for MasterReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        true
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Master { mode: self.mode }
    }

    fn on_install(&mut self, c: &mut ReplCtx<'_>) {
        c.ensure_epoch();
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        let result = self.exec_and_propagate(c, &inv);
        c.complete(token, result);
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => {
                let result = self.exec_and_propagate(c, &inv);
                let (ok, data) = match result {
                    Ok(d) => (true, d),
                    Err(e) => (false, encode_error(&e)),
                };
                c.send(from, GrpBody::InvokeResult { req, ok, data });
            }
            GrpBody::GetState { req } => {
                let state = c.state();
                let version = c.version();
                let epoch = c.copy_epoch();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version,
                        epoch,
                        state,
                    },
                );
            }
            GrpBody::Hello {
                grp,
                have_version,
                epoch,
            } => {
                // New or re-announcing slave: (re-)register it, then
                // bring it up to date as cheaply as its copy allows.
                self.slaves.insert(grp);
                let version = c.version();
                let my_epoch = c.copy_epoch();
                let same_lineage = epoch != 0 && epoch == my_epoch;
                if same_lineage && have_version >= version {
                    // Current: a free confirmation (the empty
                    // same-version delta, as for Refresh).
                    c.send(
                        Peer::Addr(grp),
                        GrpBody::Delta {
                            from_version: version,
                            to_version: version,
                            epoch: my_epoch,
                            payload: Vec::new(),
                        },
                    );
                } else if same_lineage && self.mode != PropagationMode::PushChunks {
                    // Behind on our own lineage: an invalidation is
                    // enough — the slave refetches on demand, which
                    // keeps invalidate-mode economics (heartbeats must
                    // not turn into periodic state pushes); the push
                    // modes re-sync it on the next write anyway.
                    c.send(Peer::Addr(grp), GrpBody::Invalidate { version });
                } else if self.mode == PropagationMode::PushChunks {
                    // Compact mode: behind or cold, the announcement is
                    // cheap (short ids only) and the slave's chunk
                    // store turns it into a fetch of exactly what it
                    // lacks — the cross-version dedup path when a v2
                    // package's slave already holds v1's chunks.
                    match chunk_announce(c, version, my_epoch) {
                        Some(body) => c.send(Peer::Addr(grp), body),
                        None => c.send(
                            Peer::Addr(grp),
                            GrpBody::Update {
                                version,
                                epoch: my_epoch,
                                state: c.state(),
                            },
                        ),
                    }
                } else {
                    // No copy at all or a foreign lineage it cannot
                    // splice onto: warm-start with the full state.
                    c.send(
                        Peer::Addr(grp),
                        GrpBody::Update {
                            version,
                            epoch: my_epoch,
                            state: c.state(),
                        },
                    );
                }
            }
            GrpBody::ChunkRequest {
                req,
                version,
                indexes,
            } => {
                self.answer_chunk_request(c, from, req, version, &indexes);
            }
            GrpBody::Refresh {
                req,
                have_version,
                epoch,
            } => {
                answer_refresh(c, from, req, have_version, epoch, &self.history);
            }
            _ => {}
        }
    }

    fn on_peer_gone(&mut self, _c: &mut ReplCtx<'_>, peer: Endpoint) {
        self.slaves.remove(&peer);
    }

    fn persist_extra(&self) -> Vec<u8> {
        history_extra(&self.history)
    }

    fn restore_extra(&mut self, data: &[u8]) {
        self.history = history_from_extra(data);
    }
}

/// Where a forwarded write originated, so the result can be routed
/// back.
#[derive(Debug)]
enum WriteOrigin {
    /// A local invocation (completes with this token).
    Local(u64),
    /// A write chained from a remote proxy: reply on `from` echoing
    /// `req`. Chaining is how writes reach the master when the GLS
    /// handed the client only its nearest (slave) replica.
    Remote { from: Peer, req: u64 },
}

/// A chunked install in progress: the slave resolved a
/// [`GrpBody::ChunkAnnounce`] against its store and is waiting for the
/// [`GrpBody::ChunkData`] that fills the gaps.
struct PendingChunks {
    version: u64,
    epoch: u64,
    skeleton: Vec<u8>,
    /// The announced `(short_id, len)` manifest, in manifest order.
    shorts: Vec<(u64, u32)>,
    /// Full chunk ids, filled in as each manifest slot resolves.
    resolved: Vec<Option<ChunkId>>,
    /// Manifest indexes still unaccounted for.
    missing: BTreeSet<u32>,
    /// Request token (also the fallback-timer subtoken).
    req: u64,
}

/// A slave replica: serves reads locally while its copy is valid,
/// forwards writes to the master (both its own and those chained from
/// proxies), refetches state after invalidations.
pub struct SlaveReplica {
    proto: u16,
    master: Endpoint,
    valid: bool,
    waiting: Vec<Waiter>,
    /// State/refresh requests (from caches and sibling replicas) that
    /// arrived while the copy was invalid: answering them immediately
    /// would hand an *invalidated* state to a requester that has no way
    /// to know a newer version exists, so they wait for revalidation
    /// like read invocations do.
    pending_states: Vec<(Peer, GrpBody)>,
    fetch_in_flight: bool,
    pending_writes: BTreeMap<u64, WriteOrigin>,
    next_req: u64,
    /// Whether the master has (as far as we know) this slave in its
    /// propagation set: set on any push from the master, cleared when
    /// the master connection dies. While false, a paced `Hello` retry
    /// re-registers us — see [`HELLO_RETRY`].
    announced: bool,
    /// A [`HELLO_TIMER`] tick is outstanding (bounds re-announce sends
    /// to one per interval no matter how many peer-gone events fire).
    hello_timer_pending: bool,
    /// When the last master push arrived. A heartbeat tick landing
    /// within [`HELLO_HEARTBEAT`] of a push defers its `Hello` to one
    /// full interval past that push — the push already proved the
    /// channel, and the deferral keeps severed-channel discovery
    /// bounded by one interval after the last proof.
    last_push: SimTime,
    /// Chunked install awaiting its missing chunks, if any.
    pending_chunks: Option<PendingChunks>,
    /// The single-step deltas this slave has applied, so sibling
    /// refreshers (and this slave's own warm restarts) can be caught up
    /// without a full state transfer even when the master is not the
    /// one answering.
    history: DeltaHistory,
}

impl SlaveReplica {
    /// Creates a slave attached to `master` for protocol `proto`
    /// (master/slave or active).
    pub fn new(proto: u16, master: Endpoint) -> SlaveReplica {
        SlaveReplica {
            proto,
            master,
            valid: false,
            waiting: Vec::new(),
            pending_states: Vec::new(),
            fetch_in_flight: false,
            pending_writes: BTreeMap::new(),
            next_req: 1,
            announced: false,
            hello_timer_pending: false,
            last_push: SimTime::ZERO,
            pending_chunks: None,
            history: DeltaHistory::default(),
        }
    }

    /// (Re-)announces to the master and arms the next tick. The master
    /// answers every `Hello` (state, invalidation or a free
    /// confirmation), registering the sender as a side effect; any
    /// master push flips `announced` back to confirmed, which relaxes
    /// the tick from the retry pace to the heartbeat pace.
    fn announce(&mut self, c: &mut ReplCtx<'_>) {
        let me = c.my_grp();
        c.send(
            Peer::Addr(self.master),
            GrpBody::Hello {
                grp: me,
                have_version: c.version(),
                epoch: c.copy_epoch(),
            },
        );
        self.arm_hello(c);
    }

    /// Arms the announce tick if none is outstanding: fast while the
    /// registration is unconfirmed, the heartbeat pace once confirmed.
    fn arm_hello(&mut self, c: &mut ReplCtx<'_>) {
        if !self.hello_timer_pending {
            self.hello_timer_pending = true;
            let pace = if self.announced {
                HELLO_HEARTBEAT
            } else {
                HELLO_RETRY
            };
            c.set_timer(pace, HELLO_TIMER);
        }
    }

    /// Whether the local copy is currently valid (tests).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    fn ensure_fetch(&mut self, c: &mut ReplCtx<'_>) {
        if self.fetch_in_flight || self.pending_chunks.is_some() {
            return;
        }
        self.fetch_in_flight = true;
        let req = self.next_req;
        self.next_req += 1;
        if c.version() > 0 && c.copy_epoch() != 0 {
            // A warm copy (e.g. restored from disk, or invalidated in
            // place): ask for a catch-up delta. The answerer falls back
            // to full state when its history does not reach our
            // version.
            c.send(
                Peer::Addr(self.master),
                GrpBody::Refresh {
                    req,
                    have_version: c.version(),
                    epoch: c.copy_epoch(),
                },
            );
        } else {
            c.send(Peer::Addr(self.master), GrpBody::GetState { req });
        }
    }

    /// Diffs an announced chunk manifest against the local store and
    /// either installs immediately (everything already resident — the
    /// cross-version dedup fast path) or requests exactly the missing
    /// chunks from the master.
    fn begin_chunked_install(
        &mut self,
        c: &mut ReplCtx<'_>,
        version: u64,
        epoch: u64,
        skeleton: Vec<u8>,
        shorts: Vec<(u64, u32)>,
    ) {
        let store = c.chunk_store().clone();
        let mut resolved: Vec<Option<ChunkId>> = Vec::with_capacity(shorts.len());
        let mut missing: BTreeSet<u32> = BTreeSet::new();
        {
            let mut s = store.borrow_mut();
            for (i, &(short, len)) in shorts.iter().enumerate() {
                match s.resolve_short(short, len) {
                    Some(id) => resolved.push(Some(id)),
                    None => {
                        resolved.push(None);
                        missing.insert(i as u32);
                    }
                }
            }
        }
        if missing.is_empty() {
            let manifest: Vec<ChunkRef> = resolved
                .iter()
                .zip(&shorts)
                .map(|(id, &(_, len))| ChunkRef {
                    id: id.expect("no slot missing"),
                    len,
                })
                .collect();
            self.finish_chunked_install(c, version, epoch, &skeleton, &manifest);
        } else {
            // The copy is now known-stale and the replacement is not
            // assembled yet: stop serving it (reads queue and are
            // drained once the install lands), then fetch the gaps.
            self.valid = false;
            let req = self.next_req;
            self.next_req += 1;
            let indexes: Vec<u32> = missing.iter().copied().collect();
            self.pending_chunks = Some(PendingChunks {
                version,
                epoch,
                skeleton,
                shorts,
                resolved,
                missing,
                req,
            });
            c.send(
                Peer::Addr(self.master),
                GrpBody::ChunkRequest {
                    req,
                    version,
                    indexes,
                },
            );
            c.set_timer(FORWARD_TIMEOUT, req);
        }
    }

    /// Installs a fully resolved chunk manifest; on failure (lineage
    /// sanity, class refuses) falls back to a plain state fetch.
    fn finish_chunked_install(
        &mut self,
        c: &mut ReplCtx<'_>,
        version: u64,
        epoch: u64,
        skeleton: &[u8],
        manifest: &[ChunkRef],
    ) {
        let lineage_change = c.copy_epoch() != 0 && c.copy_epoch() != epoch;
        if (lineage_change || version >= c.version())
            && c.install_chunked(version, epoch, skeleton, manifest)
                .is_ok()
        {
            self.history.clear();
            self.valid = true;
            self.fetch_in_flight = false;
            self.drain_waiters(c);
        } else {
            self.valid = false;
            self.ensure_fetch(c);
        }
    }

    fn drain_waiters(&mut self, c: &mut ReplCtx<'_>) {
        for w in std::mem::take(&mut self.waiting) {
            match w {
                Waiter::Local { token, inv } => {
                    c.record_read_freshness();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                }
                Waiter::Remote { from, req, inv } => {
                    c.record_read_freshness();
                    let (ok, data) = match c.exec(&inv) {
                        Ok(d) => (true, d),
                        Err(e) => (false, encode_error(&e)),
                    };
                    c.send(from, GrpBody::InvokeResult { req, ok, data });
                }
            }
        }
        for (from, body) in std::mem::take(&mut self.pending_states) {
            self.serve_state(c, from, &body);
        }
    }

    /// Answers a `GetState`/`Refresh` from the current copy: refreshers
    /// are answered from this slave's applied-delta log when it covers
    /// their version (an already-current refresher gets the free
    /// empty-delta confirmation), everyone else the whole state — the
    /// version and lineage let the requester judge freshness.
    fn serve_state(&self, c: &mut ReplCtx<'_>, from: Peer, body: &GrpBody) {
        match *body {
            GrpBody::Refresh {
                req,
                have_version,
                epoch: req_epoch,
            } => answer_refresh(c, from, req, have_version, req_epoch, &self.history),
            GrpBody::GetState { req } => {
                let state = c.state();
                c.send(
                    from,
                    GrpBody::State {
                        req,
                        version: c.version(),
                        epoch: c.copy_epoch(),
                        state,
                    },
                );
            }
            _ => unreachable!("serve_state only handles state requests"),
        }
    }
}

impl ReplicationSubobject for SlaveReplica {
    fn proto(&self) -> u16 {
        self.proto
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        true
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Slave {
            master: self.master,
        }
    }

    fn on_install(&mut self, c: &mut ReplCtx<'_>) {
        // Announce to the master; it responds with the current state.
        // The retry tick covers a lost first Hello too.
        self.announce(c);
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        match c.kind_of(inv.method) {
            MethodKind::Read => {
                if self.valid {
                    c.record_read_freshness();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                } else {
                    self.waiting.push(Waiter::Local { token, inv });
                    self.ensure_fetch(c);
                }
            }
            MethodKind::Write => {
                let req = self.next_req;
                self.next_req += 1;
                self.pending_writes.insert(req, WriteOrigin::Local(token));
                c.send(Peer::Addr(self.master), GrpBody::Invoke { req, inv });
                c.set_timer(FORWARD_TIMEOUT, req);
            }
        }
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, from: Peer, body: GrpBody) {
        match body {
            GrpBody::Invoke { req, inv } => match c.kind_of(inv.method) {
                MethodKind::Read => {
                    if self.valid {
                        c.record_read_freshness();
                        let (ok, data) = match c.exec(&inv) {
                            Ok(d) => (true, d),
                            Err(e) => (false, encode_error(&e)),
                        };
                        c.send(from, GrpBody::InvokeResult { req, ok, data });
                    } else {
                        self.waiting.push(Waiter::Remote { from, req, inv });
                        self.ensure_fetch(c);
                    }
                }
                MethodKind::Write => {
                    // Chain the write to the master: the proxy only knows
                    // its nearest replica (the GLS resolves to the
                    // nearest contact address), so slaves relay.
                    let fwd = self.next_req;
                    self.next_req += 1;
                    self.pending_writes
                        .insert(fwd, WriteOrigin::Remote { from, req });
                    c.send(Peer::Addr(self.master), GrpBody::Invoke { req: fwd, inv });
                    c.set_timer(FORWARD_TIMEOUT, fwd);
                }
            },
            GrpBody::Update {
                version,
                epoch,
                state,
            } => {
                // An Update only reaches us via the master's slave set
                // (push or Hello reply): registration confirmed.
                self.announced = true;
                self.last_push = c.now();
                // A new master epoch means the version lineage reset
                // (replica recreated / restarted): adopt its state even
                // if the version number regressed.
                let lineage_change = c.copy_epoch() != 0 && c.copy_epoch() != epoch;
                if (lineage_change || version >= c.version())
                    && c.install_state(version, epoch, &state).is_ok()
                {
                    // A full install breaks the applied-delta chain; a
                    // stale log could otherwise serve an old-lineage
                    // payload to a refresher whose version numbers
                    // happen to line up.
                    self.history.clear();
                    self.valid = true;
                    self.fetch_in_flight = false;
                    self.drain_waiters(c);
                }
            }
            GrpBody::Apply { version, inv } => {
                self.announced = true;
                self.last_push = c.now();
                // Active replication: re-execute the write locally.
                if version == c.version() + 1 {
                    let _ = c.exec(&inv);
                    c.bump_version();
                    self.valid = true;
                    self.drain_waiters(c);
                } else if version > c.version() {
                    // Missed an operation (e.g. installed mid-stream):
                    // fall back to a state fetch.
                    self.valid = false;
                    self.ensure_fetch(c);
                }
            }
            GrpBody::Delta {
                from_version,
                to_version,
                epoch,
                payload,
            } => {
                self.announced = true;
                self.last_push = c.now();
                let same_lineage = epoch != 0 && c.copy_epoch() == epoch;
                if same_lineage && to_version <= c.version() {
                    // An empty delta at exactly our version is the
                    // answerer's freshness confirmation to a warm
                    // `Refresh`; anything else behind us is old news
                    // (e.g. redelivery after a refetch).
                    if from_version == to_version && to_version == c.version() && payload.is_empty()
                    {
                        self.fetch_in_flight = false;
                        self.valid = true;
                        self.drain_waiters(c);
                    }
                } else if same_lineage
                    && from_version == c.version()
                    && c.apply_delta(from_version, to_version, epoch, &payload)
                        .is_ok()
                {
                    self.fetch_in_flight = false;
                    if to_version == from_version + 1 {
                        self.history.record(to_version, Some(payload));
                    } else {
                        // A spliced catch-up covers several versions in
                        // one payload; logging it keyed by the final
                        // version would double-apply writes for an
                        // intermediate refresher.
                        self.history.clear();
                    }
                    self.valid = true;
                    self.drain_waiters(c);
                } else {
                    // Version gap, lineage change or splice failure:
                    // fall back to a full state fetch from the master.
                    self.fetch_in_flight = false;
                    self.valid = false;
                    self.ensure_fetch(c);
                }
            }
            GrpBody::Invalidate { version } => {
                self.announced = true;
                self.last_push = c.now();
                if version > c.version() {
                    self.valid = false;
                }
            }
            GrpBody::State {
                version,
                epoch,
                state,
                ..
            } => {
                self.fetch_in_flight = false;
                let lineage_change = c.copy_epoch() != 0 && c.copy_epoch() != epoch;
                if (lineage_change || version >= c.version())
                    && c.install_state(version, epoch, &state).is_ok()
                {
                    self.history.clear();
                    self.valid = true;
                    self.drain_waiters(c);
                }
            }
            GrpBody::InvokeResult { req, ok, data } => match self.pending_writes.remove(&req) {
                Some(WriteOrigin::Local(token)) => {
                    let result = if ok {
                        Ok(data)
                    } else {
                        Err(decode_error(&data))
                    };
                    c.complete(token, result);
                }
                Some(WriteOrigin::Remote { from, req }) => {
                    c.send(from, GrpBody::InvokeResult { req, ok, data });
                }
                None => {}
            },
            GrpBody::GetState { .. } | GrpBody::Refresh { .. } => {
                if self.valid || inject::stale_slave_answers() {
                    self.serve_state(c, from, &body);
                } else {
                    // The copy was invalidated: handing it out would
                    // feed a cache a state the requester cannot know is
                    // outdated (the stale-read leak the freshness
                    // oracle catches under invalidation propagation).
                    // Revalidate first; the request is answered in
                    // drain_waiters once the fetch lands.
                    self.pending_states.push((from, body));
                    self.ensure_fetch(c);
                }
            }
            GrpBody::ChunkAnnounce {
                version,
                epoch,
                skeleton,
                chunks,
            } => {
                self.announced = true;
                self.last_push = c.now();
                let same_lineage = epoch != 0 && c.copy_epoch() == epoch;
                if same_lineage && version <= c.version() {
                    // Behind us is old news — except an announce at
                    // exactly our version, which doubles as a freshness
                    // confirmation (e.g. the Hello reply of a master
                    // whose state we already hold).
                    if version == c.version() && !self.valid {
                        self.valid = true;
                        self.fetch_in_flight = false;
                        self.drain_waiters(c);
                    }
                } else {
                    self.pending_chunks = None;
                    self.begin_chunked_install(c, version, epoch, skeleton, chunks);
                }
            }
            GrpBody::ChunkData {
                req,
                version,
                chunks,
            } => {
                if self.pending_chunks.as_ref().map(|p| (p.req, p.version)) != Some((req, version))
                {
                    return;
                }
                let store = c.chunk_store().clone();
                let mut bad = false;
                {
                    let p = self.pending_chunks.as_mut().expect("matched above");
                    let mut s = store.borrow_mut();
                    for (i, data) in chunks {
                        if !p.missing.contains(&i) {
                            continue;
                        }
                        let Some(&(short, len)) = p.shorts.get(i as usize) else {
                            bad = true;
                            break;
                        };
                        let r = s.insert_fetched(&data);
                        // The payload must hash to what was announced —
                        // a mismatch means corruption or a confused
                        // sender, either way the transfer is unusable.
                        if r.len != len || short_id(&r.id) != short {
                            bad = true;
                            break;
                        }
                        p.resolved[i as usize] = Some(r.id);
                        p.missing.remove(&i);
                    }
                }
                if bad {
                    self.pending_chunks = None;
                    self.valid = false;
                    self.ensure_fetch(c);
                } else if self
                    .pending_chunks
                    .as_ref()
                    .is_some_and(|p| p.missing.is_empty())
                {
                    let p = self.pending_chunks.take().expect("matched above");
                    let manifest: Vec<ChunkRef> = p
                        .resolved
                        .iter()
                        .zip(&p.shorts)
                        .map(|(id, &(_, len))| ChunkRef {
                            id: id.expect("missing set is empty"),
                            len,
                        })
                        .collect();
                    self.finish_chunked_install(c, p.version, p.epoch, &p.skeleton, &manifest);
                }
            }
            // Only announcers (masters) serve chunk requests; a slave
            // hands refreshers deltas or full state instead.
            GrpBody::ChunkRequest { .. } => {}
            GrpBody::Hello { .. } => {}
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        if subtoken == HELLO_TIMER {
            self.hello_timer_pending = false;
            let since = c.now().saturating_sub(self.last_push);
            if self.announced && self.last_push != SimTime::ZERO && since < HELLO_HEARTBEAT {
                // A push landed inside this interval: the channel and
                // the registration are demonstrably live, so a `Hello`
                // now would be pure overhead. Defer it to one full
                // interval past that push (not a whole new interval
                // from now, which could stretch severed-channel
                // discovery past the fault windows the auditor pads).
                self.hello_timer_pending = true;
                c.set_timer(HELLO_HEARTBEAT.saturating_sub(since), HELLO_TIMER);
            } else {
                // `announced` alone is not trustworthy here — it can be
                // stale-true when the push channel died unobserved, and
                // the whole point of the heartbeat is to recover
                // exactly then.
                self.announce(c);
            }
            return;
        }
        if self.pending_chunks.as_ref().map(|p| p.req) == Some(subtoken) {
            // The chunk fetch stalled (request or reply lost): drop it
            // and fall back to a plain state fetch. A timer for an
            // already-completed fetch misses this guard and falls
            // through to the (empty) pending-writes lookup below.
            self.pending_chunks = None;
            self.ensure_fetch(c);
            return;
        }
        match self.pending_writes.remove(&subtoken) {
            Some(WriteOrigin::Local(token)) => {
                c.complete(token, Err(InvokeError::Timeout));
            }
            Some(WriteOrigin::Remote { from, req }) => {
                c.send(
                    from,
                    GrpBody::InvokeResult {
                        req,
                        ok: false,
                        data: b"master timed out".to_vec(),
                    },
                );
            }
            None => {}
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.master {
            self.fetch_in_flight = false;
            self.pending_chunks = None;
            // The master prunes us from its propagation set the moment
            // the connection dies: until a fresh Hello lands we would
            // miss every invalidation while still treating our copy as
            // valid. Keep serving (availability over freshness during
            // the partition) but re-register on the fast retry pace.
            self.announced = false;
            self.arm_hello(c);
            for (_, origin) in std::mem::take(&mut self.pending_writes) {
                match origin {
                    WriteOrigin::Local(token) => {
                        c.complete(token, Err(InvokeError::PeerUnreachable));
                    }
                    WriteOrigin::Remote { from, req } => {
                        c.send(
                            from,
                            GrpBody::InvokeResult {
                                req,
                                ok: false,
                                data: b"master unreachable".to_vec(),
                            },
                        );
                    }
                }
            }
            for w in std::mem::take(&mut self.waiting) {
                match w {
                    Waiter::Local { token, .. } => {
                        c.complete(token, Err(InvokeError::PeerUnreachable));
                    }
                    // Remote readers get an explicit failure, not a
                    // silent drop that stalls them into their own
                    // timeout.
                    Waiter::Remote { from, req, .. } => {
                        c.send(
                            from,
                            GrpBody::InvokeResult {
                                req,
                                ok: false,
                                data: b"master unreachable".to_vec(),
                            },
                        );
                    }
                }
            }
            // State requesters get the best copy we have rather than a
            // hang: with the master unreachable there is nothing
            // fresher to wait for, and the version + lineage on the
            // answer let them judge it (availability over freshness,
            // only in the partition case).
            for (from, body) in std::mem::take(&mut self.pending_states) {
                self.serve_state(c, from, &body);
            }
        }
    }

    fn persist_extra(&self) -> Vec<u8> {
        history_extra(&self.history)
    }

    fn restore_extra(&mut self, data: &[u8]) {
        self.history = history_from_extra(data);
    }
}

/// A caching proxy: keeps a full copy with a time-to-live, serving
/// reads locally while fresh — the paper's "lazy replication" and the
/// web-cache baseline of experiment E3.
pub struct CacheProxy {
    server: Endpoint,
    ttl: SimDuration,
    expires: Option<globe_sim::SimTime>,
    waiting: Vec<Waiter>,
    fetch_in_flight: bool,
    pending_writes: BTreeMap<u64, (u64, SimTime)>,
    next_req: u64,
}

impl CacheProxy {
    /// Creates a cache over `server` with the given TTL.
    pub fn new(server: Endpoint, ttl: SimDuration) -> CacheProxy {
        CacheProxy {
            server,
            ttl,
            expires: None,
            waiting: Vec::new(),
            fetch_in_flight: false,
            pending_writes: BTreeMap::new(),
            next_req: 1,
        }
    }

    fn fresh(&self, now: globe_sim::SimTime) -> bool {
        self.expires.map(|e| e > now).unwrap_or(false)
    }

    /// Requests a (re)fill: a full `GetState` on the first fill, a
    /// version-aware `Refresh` afterwards so the server can answer with
    /// a small delta — or a bare confirmation — instead of the whole
    /// state.
    fn ensure_fetch(&mut self, c: &mut ReplCtx<'_>) {
        if !self.fetch_in_flight {
            self.fetch_in_flight = true;
            let req = self.next_req;
            self.next_req += 1;
            let body = if c.version() > 0 {
                GrpBody::Refresh {
                    req,
                    have_version: c.version(),
                    epoch: c.copy_epoch(),
                }
            } else {
                GrpBody::GetState { req }
            };
            c.send(Peer::Addr(self.server), body);
        }
    }

    /// Serves every waiting read from the just-validated copy.
    fn drain_waiters(&mut self, c: &mut ReplCtx<'_>) {
        for w in std::mem::take(&mut self.waiting) {
            if let Waiter::Local { token, inv } = w {
                c.record_read_freshness();
                let result = c.exec(&inv);
                c.complete(token, result);
            }
        }
    }
}

impl ReplicationSubobject for CacheProxy {
    fn proto(&self) -> u16 {
        protocol_id::CACHE_TTL
    }
    fn accepts_writes(&self) -> bool {
        false
    }
    fn is_replica(&self) -> bool {
        false
    }
    fn descriptor(&self) -> RoleSpec {
        RoleSpec::Standalone
    }

    fn start_invocation(&mut self, c: &mut ReplCtx<'_>, token: u64, inv: Invocation) {
        match c.kind_of(inv.method) {
            MethodKind::Read => {
                if self.fresh(c.now()) {
                    c.record_read_freshness();
                    c.metrics_cache_hit();
                    let result = c.exec(&inv);
                    c.complete(token, result);
                } else {
                    c.metrics_cache_miss();
                    self.waiting.push(Waiter::Local { token, inv });
                    self.ensure_fetch(c);
                }
            }
            MethodKind::Write => {
                let req = self.next_req;
                self.next_req += 1;
                self.pending_writes.insert(req, (token, c.now()));
                c.send(Peer::Addr(self.server), GrpBody::Invoke { req, inv });
                c.set_timer(FORWARD_TIMEOUT, req);
            }
        }
    }

    fn on_grp(&mut self, c: &mut ReplCtx<'_>, _from: Peer, body: GrpBody) {
        match body {
            GrpBody::State {
                version,
                epoch,
                state,
                ..
            } => {
                self.fetch_in_flight = false;
                if c.install_state(version, epoch, &state).is_ok() {
                    self.expires = Some(c.now() + self.ttl);
                    self.drain_waiters(c);
                }
            }
            GrpBody::Delta {
                from_version,
                to_version,
                epoch,
                payload,
            } => {
                // Refresh answered with a delta (or, when
                // `from == to`, a confirmation the copy is current).
                self.fetch_in_flight = false;
                if c.apply_delta(from_version, to_version, epoch, &payload)
                    .is_ok()
                {
                    self.expires = Some(c.now() + self.ttl);
                    self.drain_waiters(c);
                } else {
                    // Unusable splice (lineage changed or versions
                    // raced): fetch the full state instead.
                    self.fetch_in_flight = true;
                    let req = self.next_req;
                    self.next_req += 1;
                    c.send(Peer::Addr(self.server), GrpBody::GetState { req });
                }
            }
            GrpBody::InvokeResult { req, ok, data } => {
                if let Some((token, sent_at)) = self.pending_writes.remove(&req) {
                    // Read-your-writes: drop the cached copy so the next
                    // read refetches.
                    self.expires = None;
                    let latency = c.now().saturating_sub(sent_at);
                    let result = if ok {
                        Ok(data)
                    } else {
                        Err(decode_error(&data))
                    };
                    report_reply_health(c, self.server, latency, &result);
                    c.complete_from(token, result, self.server);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, c: &mut ReplCtx<'_>, subtoken: u64) {
        if let Some((token, _)) = self.pending_writes.remove(&subtoken) {
            c.report_failure(self.server, FailureReason::Timeout);
            c.complete_from(token, Err(InvokeError::Timeout), self.server);
        }
    }

    fn on_peer_gone(&mut self, c: &mut ReplCtx<'_>, peer: Endpoint) {
        if peer == self.server {
            c.report_failure(self.server, FailureReason::Connect);
            self.fetch_in_flight = false;
            for (_, (token, _)) in std::mem::take(&mut self.pending_writes) {
                c.complete_from(token, Err(InvokeError::PeerUnreachable), self.server);
            }
            for w in std::mem::take(&mut self.waiting) {
                if let Waiter::Local { token, .. } = w {
                    c.complete_from(token, Err(InvokeError::PeerUnreachable), self.server);
                }
            }
        }
    }

    fn targets(&self) -> Vec<Endpoint> {
        vec![self.server]
    }

    fn current_target(&self) -> Option<Endpoint> {
        Some(self.server)
    }
}

impl ReplCtx<'_> {
    /// Counts a cache hit (CacheProxy bookkeeping).
    pub(crate) fn metrics_cache_hit(&mut self) {
        self.effects.cache_hits += 1;
    }

    /// Counts a cache miss.
    pub(crate) fn metrics_cache_miss(&mut self) {
        self.effects.cache_misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{MethodId, SemError, SemanticsObject};
    use crate::replication::ReplEffects;
    use globe_net::HostId;

    /// A delta-capable test class: method 1 adds its one-byte argument;
    /// the delta is the byte stream of pending additions.
    #[derive(Default)]
    struct DeltaCounter {
        value: u64,
        pending: Vec<u8>,
    }

    impl SemanticsObject for DeltaCounter {
        fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
            match inv.method {
                MethodId(0) => Ok(self.value.to_be_bytes().to_vec()),
                MethodId(1) => {
                    let d = *inv.args.first().ok_or(SemError::BadArguments)?;
                    self.value += d as u64;
                    self.pending.push(d);
                    Ok(self.value.to_be_bytes().to_vec())
                }
                m => Err(SemError::NoSuchMethod(m)),
            }
        }
        fn get_state(&self) -> Vec<u8> {
            self.value.to_be_bytes().to_vec()
        }
        fn set_state(&mut self, state: &[u8]) -> Result<(), SemError> {
            self.value = u64::from_be_bytes(state.try_into().map_err(|_| SemError::BadState)?);
            self.pending.clear();
            Ok(())
        }
        fn state_digest(&self) -> u64 {
            self.value
        }
        fn take_delta(&mut self) -> Option<Vec<u8>> {
            Some(std::mem::take(&mut self.pending))
        }
        fn apply_delta(&mut self, delta: &[u8]) -> Result<(), SemError> {
            for &d in delta {
                self.value += d as u64;
            }
            Ok(())
        }
    }

    fn kind_of(m: MethodId) -> MethodKind {
        if m == MethodId(0) {
            MethodKind::Read
        } else {
            MethodKind::Write
        }
    }

    /// One representative's copy state for driving protocol code.
    struct Copy {
        sem: Box<dyn SemanticsObject>,
        version: u64,
        epoch: u64,
        store: crate::chunks::ChunkStoreRef,
    }

    impl Copy {
        fn new() -> Copy {
            Copy::with_sem(Box::new(DeltaCounter::default()))
        }

        fn with_sem(sem: Box<dyn SemanticsObject>) -> Copy {
            Copy {
                sem,
                version: 0,
                epoch: 0,
                store: crate::chunks::new_store(),
            }
        }

        fn at(version: u64, epoch: u64) -> Copy {
            let mut c = Copy::new();
            c.version = version;
            c.epoch = epoch;
            c
        }

        /// Runs protocol code against a throwaway context, returning
        /// the effects it accumulated.
        fn drive(&mut self, f: impl FnOnce(&mut ReplCtx<'_>)) -> ReplEffects {
            let mut ctx = ReplCtx {
                oid: 1,
                my_grp: Endpoint::new(HostId(9), 1000),
                now: SimTime::from_secs(5),
                sem: Some(&mut self.sem),
                version: &mut self.version,
                epoch: &mut self.epoch,
                epoch_nonce: 99,
                kind_of: &kind_of,
                oracle_version: 0,
                chunks: self.store.clone(),
                effects: ReplEffects::default(),
            };
            f(&mut ctx);
            ctx.effects
        }
    }

    fn master_ep() -> Endpoint {
        Endpoint::new(HostId(0), 700)
    }

    #[test]
    fn delta_history_concatenates_and_confirms() {
        let mut h = DeltaHistory::default();
        h.record(1, Some(vec![1]));
        h.record(2, Some(vec![2, 2]));
        h.record(3, Some(vec![3]));
        assert_eq!(h.since(0, 3), Some(vec![1, 2, 2, 3]));
        assert_eq!(h.since(1, 3), Some(vec![2, 2, 3]));
        assert_eq!(h.since(3, 3), Some(vec![]));
        assert_eq!(h.since(4, 3), None);
    }

    #[test]
    fn delta_history_breaks_on_missing_delta_and_caps() {
        let mut h = DeltaHistory::default();
        h.record(1, Some(vec![1]));
        h.record(2, None); // class log overflowed: chain broken
        assert_eq!(h.since(0, 2), None);
        h.record(3, Some(vec![3]));
        assert_eq!(h.since(2, 3), Some(vec![3]));
        assert_eq!(h.since(0, 3), None);
        for v in 4..100 {
            h.record(v, Some(vec![v as u8]));
        }
        assert!(h.entries.len() <= DELTA_HISTORY_CAP);
        assert_eq!(h.since(98, 99), Some(vec![99]));
        assert_eq!(h.since(2, 99), None); // beyond the cap: full fetch
    }

    #[test]
    fn slave_applies_contiguous_delta() {
        let mut copy = Copy::at(3, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 3,
                    to_version: 4,
                    epoch: 7,
                    payload: vec![7],
                },
            );
        });
        assert_eq!(copy.version, 4);
        assert!(slave.is_valid());
        assert!(fx.dirty && !fx.dirty_eager, "delta dirtiness must defer");
        assert_eq!(fx.deltas_applied, 1);
        assert!(fx.sends.is_empty());
    }

    #[test]
    fn slave_gap_falls_back_to_full_fetch() {
        let mut copy = Copy::at(3, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 5, // versions 4..=5 were missed
                    to_version: 6,
                    epoch: 7,
                    payload: vec![7],
                },
            );
        });
        assert_eq!(copy.version, 3, "gap delta must not apply");
        assert!(!slave.is_valid());
        // A warm copy refetches via `Refresh` (catch-up delta if the
        // answerer's history reaches back, full state otherwise).
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(Peer::Addr(ep), GrpBody::Refresh { have_version: 3, epoch: 7, .. })]
                    if *ep == master_ep()
            ),
            "expected a warm refresh, got {:?}",
            fx.sends
        );
    }

    #[test]
    fn stale_delta_is_ignored() {
        let mut copy = Copy::at(9, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 3,
                    to_version: 4,
                    epoch: 7,
                    payload: vec![7],
                },
            );
        });
        assert_eq!(copy.version, 9);
        assert!(fx.sends.is_empty());
    }

    #[test]
    fn lineage_change_forces_full_fetch() {
        let mut copy = Copy::at(3, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        // A contiguous-looking delta from a *different* incarnation
        // must not splice: the version numbers are from another
        // history.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 3,
                    to_version: 4,
                    epoch: 8,
                    payload: vec![7],
                },
            );
        });
        assert_eq!(copy.version, 3, "cross-lineage delta must not apply");
        assert!(!slave.is_valid());
        assert!(matches!(
            fx.sends.as_slice(),
            [(Peer::Addr(_), GrpBody::Refresh { .. })]
        ));
        // The full-state answer from the new incarnation is adopted
        // even though its version number is lower.
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::State {
                    req: 1,
                    version: 1,
                    epoch: 8,
                    state: 5u64.to_be_bytes().to_vec(),
                },
            );
        });
        assert_eq!(copy.version, 1);
        assert_eq!(copy.epoch, 8);
        assert!(slave.is_valid());
    }

    #[test]
    fn slave_confirms_current_refreshers_cheaply() {
        let mut copy = Copy::at(3, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        // Validate the copy first: only a valid slave answers state
        // requests directly.
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Update {
                    version: 4,
                    epoch: 7,
                    state: 5u64.to_be_bytes().to_vec(),
                },
            );
        });
        assert!(slave.is_valid());
        // Already-current, same lineage: a free confirmation.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(2),
                GrpBody::Refresh {
                    req: 1,
                    have_version: 4,
                    epoch: 7,
                },
            );
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(
                Peer::Conn(2),
                GrpBody::Delta {
                    from_version: 4,
                    to_version: 4,
                    epoch: 7,
                    payload,
                }
            )] if payload.is_empty()
        ));
        // Behind (or cross-lineage): slaves keep no history, so full
        // state.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(2),
                GrpBody::Refresh {
                    req: 2,
                    have_version: 3,
                    epoch: 7,
                },
            );
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(Peer::Conn(2), GrpBody::State { version: 4, .. })]
        ));
    }

    /// The stale-serving leak the per-object/invalidate sweep cells
    /// exposed: an *invalidated* slave answering `GetState` from its
    /// outdated copy hands a cache a state the requester cannot judge.
    /// The slave must revalidate first and answer with the fresh state.
    #[test]
    fn invalidated_slave_defers_state_requests_until_revalidated() {
        let mut copy = Copy::at(4, 7);
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Update {
                    version: 4,
                    epoch: 7,
                    state: 5u64.to_be_bytes().to_vec(),
                },
            );
        });
        // A newer write invalidates the copy.
        copy.drive(|c| {
            slave.on_grp(c, Peer::Conn(1), GrpBody::Invalidate { version: 5 });
        });
        assert!(!slave.is_valid());

        // A cache asks for the state: no stale answer, a master fetch.
        let fx = copy.drive(|c| {
            slave.on_grp(c, Peer::Conn(2), GrpBody::GetState { req: 9 });
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(Peer::Addr(ep), GrpBody::Refresh { have_version: 4, epoch: 7, .. })]
                    if *ep == master_ep()
            ),
            "expected only a revalidation fetch, got {:?}",
            fx.sends
        );

        // The fetch lands: the queued requester gets the *fresh* state.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::State {
                    req: 1,
                    version: 5,
                    epoch: 7,
                    state: 6u64.to_be_bytes().to_vec(),
                },
            );
        });
        assert!(slave.is_valid());
        assert!(
            fx.sends.iter().any(|(peer, body)| matches!(
                (peer, body),
                (
                    Peer::Conn(2),
                    GrpBody::State {
                        req: 9,
                        version: 5,
                        ..
                    }
                )
            )),
            "queued state request not answered fresh: {:?}",
            fx.sends
        );

        // Master unreachable with a queued request: progress beats
        // freshness — the requester gets the best copy plus its
        // version to judge.
        copy.drive(|c| {
            slave.on_grp(c, Peer::Conn(1), GrpBody::Invalidate { version: 6 });
        });
        copy.drive(|c| {
            slave.on_grp(c, Peer::Conn(2), GrpBody::GetState { req: 10 });
        });
        let fx = copy.drive(|c| {
            slave.on_peer_gone(c, master_ep());
        });
        assert!(
            fx.sends.iter().any(|(peer, body)| matches!(
                (peer, body),
                (
                    Peer::Conn(2),
                    GrpBody::State {
                        req: 10,
                        version: 5,
                        ..
                    }
                )
            )),
            "partition fallback missing: {:?}",
            fx.sends
        );
    }

    #[test]
    fn master_multicasts_one_body_per_write() {
        let mut copy = Copy::new();
        let mut master = MasterReplica::new(protocol_id::MASTER_SLAVE, PropagationMode::PushDelta);
        copy.drive(|c| master.on_install(c));
        assert_ne!(copy.epoch, 0, "install mints a lineage");
        // Two slaves join.
        let s1 = Endpoint::new(HostId(1), 700);
        let s2 = Endpoint::new(HostId(2), 700);
        for s in [s1, s2] {
            copy.drive(|c| {
                master.on_grp(
                    c,
                    Peer::Conn(1),
                    GrpBody::Hello {
                        grp: s,
                        have_version: 0,
                        epoch: 0,
                    },
                );
            });
        }
        let fx = copy.drive(|c| {
            master.start_invocation(c, 1, Invocation::new(MethodId(1), vec![5]));
        });
        assert_eq!(copy.version, 1);
        // One multicast carrying the delta to both slaves; no per-slave
        // sends.
        assert!(fx.sends.is_empty());
        assert_eq!(fx.multicasts.len(), 1);
        let (peers, body) = &fx.multicasts[0];
        assert_eq!(peers.len(), 2);
        assert_eq!(
            *body,
            GrpBody::Delta {
                from_version: 0,
                to_version: 1,
                epoch: copy.epoch,
                payload: vec![5],
            }
        );
    }

    #[test]
    fn master_answers_refresh_from_history() {
        let mut copy = Copy::new();
        let mut master = MasterReplica::new(protocol_id::MASTER_SLAVE, PropagationMode::PushDelta);
        copy.drive(|c| master.on_install(c));
        for arg in [5u8, 6] {
            copy.drive(|c| {
                master.start_invocation(c, 1, Invocation::new(MethodId(1), vec![arg]));
            });
        }
        let lineage = copy.epoch;
        // A requester at version 1 gets the missing delta...
        let fx = copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(7),
                GrpBody::Refresh {
                    req: 3,
                    have_version: 1,
                    epoch: lineage,
                },
            );
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(
                    Peer::Conn(7),
                    GrpBody::Delta {
                        from_version: 1,
                        to_version: 2,
                        ..
                    }
                )]
            ),
            "{:?}",
            fx.sends
        );
        // ...a current requester gets a bare confirmation...
        let fx = copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(7),
                GrpBody::Refresh {
                    req: 4,
                    have_version: 2,
                    epoch: lineage,
                },
            );
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(
                Peer::Conn(7),
                GrpBody::Delta {
                    from_version: 2,
                    to_version: 2,
                    payload,
                    ..
                }
            )] if payload.is_empty()
        ));
        // ...and a requester from another lineage always gets full
        // state, even at a "matching" version number.
        let fx = copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(7),
                GrpBody::Refresh {
                    req: 5,
                    have_version: 2,
                    epoch: lineage ^ 2,
                },
            );
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(Peer::Conn(7), GrpBody::State { version: 2, .. })]
        ));
    }

    #[test]
    fn cache_refresh_uses_version_and_delta() {
        let mut copy = Copy::new();
        let server = master_ep();
        let mut cache = CacheProxy::new(server, SimDuration::from_secs(10));
        // Cold: first read triggers a full GetState.
        let fx = copy.drive(|c| {
            cache.start_invocation(c, 1, Invocation::new(MethodId(0), vec![]));
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(Peer::Addr(_), GrpBody::GetState { .. })]
        ));
        let fx = copy.drive(|c| {
            cache.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::State {
                    req: 1,
                    version: 4,
                    epoch: 21,
                    state: 9u64.to_be_bytes().to_vec(),
                },
            );
        });
        assert_eq!(fx.completions.len(), 1);
        assert_eq!(copy.version, 4);
        assert_eq!(copy.epoch, 21);
        // Simulate TTL expiry; the next read refreshes by version.
        cache.expires = None;
        let fx = copy.drive(|c| {
            cache.start_invocation(c, 2, Invocation::new(MethodId(0), vec![]));
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(
                    Peer::Addr(_),
                    GrpBody::Refresh {
                        have_version: 4,
                        epoch: 21,
                        ..
                    }
                )]
            ),
            "{:?}",
            fx.sends
        );
        // A confirmation delta renews the TTL and serves the waiter
        // without any state transfer.
        let fx = copy.drive(|c| {
            cache.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 4,
                    to_version: 4,
                    epoch: 21,
                    payload: vec![],
                },
            );
        });
        assert_eq!(fx.completions.len(), 1);
        assert!(cache.expires.is_some());
        assert_eq!(copy.version, 4);

        // A confirmation from a different lineage is NOT trusted: the
        // cache refetches in full instead.
        cache.expires = None;
        copy.drive(|c| {
            cache.start_invocation(c, 3, Invocation::new(MethodId(0), vec![]));
        });
        let fx = copy.drive(|c| {
            cache.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 4,
                    to_version: 4,
                    epoch: 22,
                    payload: vec![],
                },
            );
        });
        assert!(matches!(
            fx.sends.as_slice(),
            [(Peer::Addr(_), GrpBody::GetState { .. })]
        ));
    }

    /// A chunk-capable test class: the whole state is one blob held as
    /// retained chunks in the shared store.
    struct ChunkBlob {
        store: crate::chunks::ChunkStoreRef,
        refs: Vec<ChunkRef>,
    }

    impl ChunkBlob {
        fn blob(&self) -> Vec<u8> {
            crate::chunks::assemble(&self.store, &self.refs).unwrap_or_default()
        }

        fn set_blob(&mut self, data: &[u8]) {
            let old = std::mem::replace(
                &mut self.refs,
                crate::chunks::store_chunks(&self.store, data),
            );
            crate::chunks::release_chunks(&self.store, &old);
        }
    }

    impl SemanticsObject for ChunkBlob {
        fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
            match inv.method {
                MethodId(0) => Ok(self.blob()),
                MethodId(1) => {
                    self.set_blob(&inv.args);
                    Ok(Vec::new())
                }
                m => Err(SemError::NoSuchMethod(m)),
            }
        }
        fn get_state(&self) -> Vec<u8> {
            self.blob()
        }
        fn set_state(&mut self, state: &[u8]) -> Result<(), SemError> {
            self.set_blob(state);
            Ok(())
        }
        fn state_digest(&self) -> u64 {
            self.refs
                .iter()
                .map(|r| short_id(&r.id))
                .fold(0, u64::wrapping_add)
        }
        fn save_chunked(&self) -> Option<(Vec<u8>, Vec<ChunkRef>)> {
            Some((Vec::new(), self.refs.clone()))
        }
        fn restore_chunked(
            &mut self,
            _skeleton: &[u8],
            manifest: &[ChunkRef],
        ) -> Result<(), SemError> {
            let mut s = self.store.borrow_mut();
            for r in manifest {
                if !s.retain(&r.id) {
                    // Roll back the partial retain: the manifest
                    // referenced a chunk the store never received.
                    for r2 in manifest {
                        if std::ptr::eq(r2, r) {
                            break;
                        }
                        s.release(&r2.id);
                    }
                    return Err(SemError::BadState);
                }
            }
            let old = std::mem::replace(&mut self.refs, manifest.to_vec());
            for r in &old {
                s.release(&r.id);
            }
            Ok(())
        }
    }

    /// A Copy whose semantics object shares the harness chunk store.
    fn chunked_copy() -> Copy {
        let store = crate::chunks::new_store();
        let sem = ChunkBlob {
            store: store.clone(),
            refs: Vec::new(),
        };
        let mut c = Copy::with_sem(Box::new(sem));
        c.store = store;
        c
    }

    /// A blob that splits into exactly three chunks with distinct
    /// contents.
    fn three_chunk_blob() -> Vec<u8> {
        let mut data = Vec::new();
        for seed in 0u8..3 {
            data.extend(
                (0..crate::chunks::CHUNK_SIZE)
                    .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed)),
            );
        }
        data
    }

    #[test]
    fn push_chunks_master_announces_manifest_not_bytes() {
        let mut copy = chunked_copy();
        let mut master = MasterReplica::new(protocol_id::MASTER_SLAVE, PropagationMode::PushChunks);
        copy.drive(|c| master.on_install(c));
        let s1 = Endpoint::new(HostId(1), 700);
        copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Hello {
                    grp: s1,
                    have_version: 0,
                    epoch: 0,
                },
            );
        });
        let blob = three_chunk_blob();
        let fx = copy.drive(|c| {
            master.start_invocation(c, 1, Invocation::new(MethodId(1), blob.clone()));
        });
        assert_eq!(copy.version, 1);
        assert_eq!(fx.multicasts.len(), 1);
        let (peers, body) = &fx.multicasts[0];
        assert_eq!(peers.len(), 1);
        let GrpBody::ChunkAnnounce {
            version,
            epoch,
            chunks,
            ..
        } = body
        else {
            panic!("expected a chunk announce, got {body:?}");
        };
        assert_eq!(*version, 1);
        assert_eq!(*epoch, copy.epoch);
        assert_eq!(chunks.len(), 3);
        assert!(chunks
            .iter()
            .all(|&(_, len)| len as usize == crate::chunks::CHUNK_SIZE));
        // The announcement is a manifest, not the payload: a fraction
        // of the blob's size.
        let encoded = crate::grp::GrpMsg {
            oid: 1,
            body: body.clone(),
        }
        .encode();
        assert!(encoded.len() < blob.len() / 8);
    }

    #[test]
    fn slave_chunked_install_fetches_only_missing_chunks() {
        let blob = three_chunk_blob();
        let mut source = crate::chunks::ChunkStore::new();
        let refs: Vec<ChunkRef> = crate::chunks::split(&blob)
            .into_iter()
            .map(|part| source.insert(part))
            .collect();
        let announce: Vec<(u64, u32)> = refs.iter().map(|r| (short_id(&r.id), r.len)).collect();

        let mut copy = chunked_copy();
        // Chunks 0 and 2 are already resident (say, from a previous
        // version of a sibling package) as unretained cache entries.
        for i in [0usize, 2] {
            copy.store
                .borrow_mut()
                .insert(source.get(&refs[i].id).unwrap());
        }
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkAnnounce {
                    version: 1,
                    epoch: 7,
                    skeleton: Vec::new(),
                    chunks: announce.clone(),
                },
            );
        });
        // Only the one missing chunk is requested, and a fallback timer
        // is armed.
        let req = match fx.sends.as_slice() {
            [(
                Peer::Addr(ep),
                GrpBody::ChunkRequest {
                    req,
                    version: 1,
                    indexes,
                },
            )] if *ep == master_ep() && indexes.as_slice() == [1] => *req,
            other => panic!("expected a chunk request for index 1, got {other:?}"),
        };
        assert_eq!(fx.timers.len(), 1);
        assert!(!slave.is_valid());

        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkData {
                    req,
                    version: 1,
                    chunks: vec![(1, source.get(&refs[1].id).unwrap().to_vec())],
                },
            );
        });
        assert!(slave.is_valid());
        assert_eq!(copy.version, 1);
        assert_eq!(copy.epoch, 7);
        assert_eq!(copy.sem.get_state(), blob);
        assert!(fx.dirty_eager, "a chunked install is a full install");
        let stats = copy.store.borrow().stats();
        assert_eq!(stats.announce_hits, 2);
        assert_eq!(stats.announce_misses, 1);
        assert_eq!(stats.fetched, 1);
    }

    #[test]
    fn slave_chunked_install_is_immediate_when_all_chunks_resident() {
        let blob = three_chunk_blob();
        let mut copy = chunked_copy();
        let announce: Vec<(u64, u32)> = crate::chunks::split(&blob)
            .into_iter()
            .map(|part| {
                let r = copy.store.borrow_mut().insert(part);
                (short_id(&r.id), r.len)
            })
            .collect();
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkAnnounce {
                    version: 1,
                    epoch: 7,
                    skeleton: Vec::new(),
                    chunks: announce,
                },
            );
        });
        // Everything was resident: no request, no bytes transferred —
        // the cross-version dedup fast path.
        assert!(fx.sends.is_empty(), "unexpected sends: {:?}", fx.sends);
        assert!(slave.is_valid());
        assert_eq!(copy.version, 1);
        assert_eq!(copy.sem.get_state(), blob);
        assert_eq!(copy.store.borrow().stats().bytes_fetched, 0);
    }

    #[test]
    fn chunk_fetch_timeout_falls_back_to_plain_fetch() {
        let blob = three_chunk_blob();
        let mut source = crate::chunks::ChunkStore::new();
        let announce: Vec<(u64, u32)> = crate::chunks::split(&blob)
            .into_iter()
            .map(|part| {
                let r = source.insert(part);
                (short_id(&r.id), r.len)
            })
            .collect();
        let mut copy = chunked_copy();
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkAnnounce {
                    version: 1,
                    epoch: 7,
                    skeleton: Vec::new(),
                    chunks: announce,
                },
            );
        });
        let req = match fx.sends.as_slice() {
            [(_, GrpBody::ChunkRequest { req, .. })] => *req,
            other => panic!("expected a chunk request, got {other:?}"),
        };
        // The reply never arrives; the fallback timer fires.
        let fx = copy.drive(|c| slave.on_timer(c, req));
        assert!(
            matches!(fx.sends.as_slice(), [(_, GrpBody::GetState { .. })]),
            "expected a full-state fallback, got {:?}",
            fx.sends
        );
        // A late ChunkData for the abandoned request is ignored.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkData {
                    req,
                    version: 1,
                    chunks: vec![(0, vec![0; crate::chunks::CHUNK_SIZE])],
                },
            );
        });
        assert!(fx.sends.is_empty());
        assert_eq!(copy.version, 0);
    }

    #[test]
    fn slave_answers_refresh_from_applied_delta_history() {
        let mut copy = Copy::new();
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Update {
                    version: 3,
                    epoch: 7,
                    state: 5u64.to_be_bytes().to_vec(),
                },
            );
        });
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 3,
                    to_version: 4,
                    epoch: 7,
                    payload: vec![7],
                },
            );
        });
        // A sibling one version behind gets the logged delta, not the
        // full state.
        let fx = copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(2),
                GrpBody::Refresh {
                    req: 5,
                    have_version: 3,
                    epoch: 7,
                },
            );
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(
                    Peer::Conn(2),
                    GrpBody::Delta {
                        from_version: 3,
                        to_version: 4,
                        epoch: 7,
                        payload,
                    }
                )] if payload.as_slice() == [7]
            ),
            "expected a history-backed delta, got {:?}",
            fx.sends
        );
    }

    #[test]
    fn slave_history_survives_persist_restore() {
        let mut copy = Copy::new();
        let mut slave = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Update {
                    version: 3,
                    epoch: 7,
                    state: 5u64.to_be_bytes().to_vec(),
                },
            );
        });
        copy.drive(|c| {
            slave.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::Delta {
                    from_version: 3,
                    to_version: 4,
                    epoch: 7,
                    payload: vec![7],
                },
            );
        });
        let extra = slave.persist_extra();
        assert!(!extra.is_empty());

        // A restarted slave (fresh protocol instance, restored copy)
        // answers a Refresh from the restored log.
        let mut copy2 = Copy::at(4, 7);
        copy2.sem.set_state(&12u64.to_be_bytes()).unwrap();
        let mut slave2 = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        slave2.restore_extra(&extra);
        copy2.drive(|c| {
            slave2.on_grp(
                c,
                Peer::Conn(1),
                GrpBody::ChunkAnnounce {
                    version: 4,
                    epoch: 7,
                    skeleton: Vec::new(),
                    chunks: Vec::new(),
                },
            );
        });
        let fx = copy2.drive(|c| {
            slave2.on_grp(
                c,
                Peer::Conn(2),
                GrpBody::Refresh {
                    req: 9,
                    have_version: 3,
                    epoch: 7,
                },
            );
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(
                    Peer::Conn(2),
                    GrpBody::Delta {
                        from_version: 3,
                        to_version: 4,
                        ..
                    }
                )]
            ),
            "expected a delta answer after restore, got {:?}",
            fx.sends
        );
        // Garbage degrades to a blank history, not an error.
        let mut slave3 = SlaveReplica::new(protocol_id::MASTER_SLAVE, master_ep());
        slave3.restore_extra(b"\xFF\xFF\xFF\xFFgarbage");
        assert!(slave3.persist_extra() == history_extra(&DeltaHistory::default()));
    }

    #[test]
    fn stale_chunk_request_gets_fresh_announce() {
        let mut copy = chunked_copy();
        let mut master = MasterReplica::new(protocol_id::MASTER_SLAVE, PropagationMode::PushChunks);
        copy.drive(|c| master.on_install(c));
        copy.drive(|c| {
            master.start_invocation(c, 1, Invocation::new(MethodId(1), three_chunk_blob()));
        });
        assert_eq!(copy.version, 1);
        // A request against an announcement that version 1 obsoleted.
        let fx = copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(3),
                GrpBody::ChunkRequest {
                    req: 8,
                    version: 9,
                    indexes: vec![0],
                },
            );
        });
        assert!(
            matches!(
                fx.sends.as_slice(),
                [(Peer::Conn(3), GrpBody::ChunkAnnounce { version: 1, .. })]
            ),
            "expected a fresh announce, got {:?}",
            fx.sends
        );
        // A current request gets exactly the asked-for chunks.
        let fx = copy.drive(|c| {
            master.on_grp(
                c,
                Peer::Conn(3),
                GrpBody::ChunkRequest {
                    req: 9,
                    version: 1,
                    indexes: vec![2, 0],
                },
            );
        });
        match fx.sends.as_slice() {
            [(
                Peer::Conn(3),
                GrpBody::ChunkData {
                    req: 9,
                    version: 1,
                    chunks,
                },
            )] => {
                assert_eq!(chunks.len(), 2);
                assert_eq!(chunks[0].0, 2);
                assert_eq!(chunks[1].0, 0);
                assert!(chunks
                    .iter()
                    .all(|(_, d)| d.len() == crate::chunks::CHUNK_SIZE));
            }
            other => panic!("expected chunk data, got {other:?}"),
        }
    }
}
