//! The moderator tool (paper §4, §6.1).
//!
//! "The creation of a new package DSO starts with the definition, by the
//! moderator, of the package's replication scenario. ... The moderator
//! tool starts by sending a 'create first replica' command to one
//! (randomly chosen) GOS in the scenario. ... The other GOSs are then
//! sent 'bind to DSO ⟨OID⟩, create replica' commands. ... The final step
//! in creating a package DSO is registering a name for it in the Globe
//! Name Service."
//!
//! [`ModeratorTool`] executes exactly that pipeline as an event-driven
//! state machine, plus package-content updates and removal (name
//! removal and replica deletion). Object access — the content fill
//! after replica creation, and post-publish writes — rides the tool's
//! [`GlobeClient`] session: each content write is one client op, the
//! session owns the bind, and the tool only matches
//! [`OpDone`] completions.
//!
//! The pipeline is class-generic: [`ModOp::Publish`] is package sugar
//! over [`ModOp::PublishObject`], which creates a DSO of *any*
//! registered interface and fills it with typed invocations built
//! through the interface's [`MethodDef`](globe_rts::MethodDef)s — the
//! per-object scenario freedom of the paper applied to arbitrary
//! classes (see the catalog DSO).

use std::collections::BTreeMap;

use globe_crypto::gtls::TlsConfig;
use globe_gls::ObjectId;
use globe_gns::{NaClient, NaEvent};
use globe_net::{impl_service_any, ConnEvent, ConnId, Endpoint, Service, ServiceCtx};
use globe_rts::{
    protocol_id, GlobeClient, GlobeRuntime, GosCmd, GosResp, ImplId, Invocation, OpDone,
    PropagationMode, RoleSpec, RtConn,
};

use crate::package::{AddFile, Meta, PackageInterface, PACKAGE_IMPL};

/// A replication scenario: how and where a package is replicated
/// (paper §3.1: "a specification of how (using what replication
/// protocol) and where (which machines should host replicas)").
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The replication protocol (see [`protocol_id`]).
    pub protocol: u16,
    /// How masters propagate writes (master/slave and active protocols).
    pub mode: PropagationMode,
    /// Control endpoints of the object servers hosting replicas; the
    /// first becomes the master (or single server).
    pub replicas: Vec<Endpoint>,
}

impl Scenario {
    /// Single-server scenario on one object server.
    pub fn single(gos: Endpoint) -> Scenario {
        Scenario {
            protocol: protocol_id::CLIENT_SERVER,
            mode: PropagationMode::PushState,
            replicas: vec![gos],
        }
    }

    /// Master/slave scenario: first endpoint is the master.
    pub fn master_slave(replicas: Vec<Endpoint>, mode: PropagationMode) -> Scenario {
        assert!(!replicas.is_empty(), "scenario needs at least one replica");
        Scenario {
            protocol: protocol_id::MASTER_SLAVE,
            mode,
            replicas,
        }
    }

    /// Cache-TTL scenario: one server, clients install caching proxies.
    pub fn cached(gos: Endpoint) -> Scenario {
        Scenario {
            protocol: protocol_id::CACHE_TTL,
            mode: PropagationMode::PushState,
            replicas: vec![gos],
        }
    }

    /// Replicated cache scenario: master/slave replicas (first endpoint
    /// is the master) *and* client-side cache proxies — caches fill from
    /// their nearest replica instead of crossing the world.
    pub fn cached_replicated(replicas: Vec<Endpoint>, mode: PropagationMode) -> Scenario {
        assert!(!replicas.is_empty(), "scenario needs at least one replica");
        Scenario {
            protocol: protocol_id::CACHE_TTL,
            mode,
            replicas,
        }
    }

    /// The role of the scenario's first replica — what the moderator
    /// tool's "create first replica" command carries, and the hinge
    /// through which a scenario's [`PropagationMode`] reaches the
    /// spawned replication protocol.
    pub fn first_role(&self) -> RoleSpec {
        if self.replicas.len() == 1
            && matches!(
                self.protocol,
                protocol_id::CLIENT_SERVER | protocol_id::CACHE_TTL
            )
        {
            RoleSpec::Standalone
        } else {
            RoleSpec::Master { mode: self.mode }
        }
    }
}

/// One high-level moderator operation.
#[derive(Clone, Debug)]
pub enum ModOp {
    /// Create a package DSO, fill it, and register its name.
    Publish {
        /// The package's Globe object name, e.g. `/apps/graphics/gimp`.
        name: String,
        /// Human-readable description (stored via `setMeta`).
        description: String,
        /// Initial files.
        files: Vec<(String, Vec<u8>)>,
        /// Where and how to replicate.
        scenario: Scenario,
    },
    /// Create a DSO of an arbitrary registered class, fill it with
    /// typed invocations, and register its name — the class-generic
    /// publish pipeline (e.g. catalogs, see
    /// [`crate::catalog::catalog_publish_op`]).
    PublishObject {
        /// The object's Globe name.
        name: String,
        /// The class to instantiate at each replica.
        impl_id: ImplId,
        /// Where and how to replicate.
        scenario: Scenario,
        /// Initial content: invocations built through the interface's
        /// typed method definitions, executed after the first bind.
        fill: Vec<Invocation>,
    },
    /// Add (or replace) one file in an existing package.
    AddFile {
        /// The package's object id (from a prior publish).
        oid: ObjectId,
        /// File name.
        file: String,
        /// File contents.
        data: Vec<u8>,
    },
    /// Remove a package: unregister the name and delete all replicas.
    Remove {
        /// The package's Globe object name.
        name: String,
        /// The package's object id.
        oid: ObjectId,
        /// The object servers hosting its replicas.
        replicas: Vec<Endpoint>,
    },
}

impl ModOp {
    /// Name, class and scenario of a publish-like operation.
    fn publish_parts(&self) -> Option<(&str, ImplId, &Scenario)> {
        match self {
            ModOp::Publish { name, scenario, .. } => Some((name, PACKAGE_IMPL, scenario)),
            ModOp::PublishObject {
                name,
                impl_id,
                scenario,
                ..
            } => Some((name, *impl_id, scenario)),
            _ => None,
        }
    }
}

/// Completion events from the moderator tool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModEvent {
    /// A publish finished; carries the new object id on success.
    PublishDone {
        /// The package name.
        name: String,
        /// New object id, or failure reason.
        result: Result<ObjectId, String>,
    },
    /// A non-publish operation finished.
    OpDone {
        /// Success or failure reason.
        result: Result<(), String>,
    },
}

#[derive(Debug)]
enum Stage {
    /// Waiting for the first replica's `Ok {oid}`.
    CreateFirst,
    /// Waiting for `remaining` additional replicas.
    CreateRest { remaining: usize },
    /// Waiting for `remaining` content ops (meta + files), pipelined
    /// through the client session.
    Fill { remaining: usize },
    /// Waiting for the Naming Authority.
    RegisterName,
    /// AddFile: waiting for the single content-update op.
    UpdateWrite,
    /// Remove: waiting for the name removal, then replica deletions.
    RemoveName,
    /// Remove: waiting for `remaining` replica deletions.
    RemoveReplicas { remaining: usize },
}

struct Active {
    op: ModOp,
    stage: Stage,
    oid: Option<ObjectId>,
}

/// The moderator tool service.
pub struct ModeratorTool {
    /// The embedded client session (binds and content writes).
    pub client: GlobeClient,
    na: NaClient,
    queue: Vec<ModOp>,
    active: Option<Active>,
    /// Control connections to object servers, pooled by endpoint.
    gos_conns: BTreeMap<Endpoint, ConnId>,
    next_req: u64,
    events: Vec<ModEvent>,
    /// Completed operations, readable by drivers and tests.
    pub results: Vec<ModEvent>,
}

impl ModeratorTool {
    /// Creates a moderator tool talking to the Naming Authority at
    /// `na_endpoint` with moderator TLS credentials `na_tls`.
    pub fn new(
        runtime: GlobeRuntime,
        na_endpoint: Endpoint,
        na_tls: TlsConfig,
        ops: Vec<ModOp>,
    ) -> ModeratorTool {
        ModeratorTool {
            client: GlobeClient::new(runtime, 0x0410),
            na: NaClient::new(na_endpoint, na_tls),
            queue: ops,
            active: None,
            gos_conns: BTreeMap::new(),
            next_req: 1,
            events: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Queues another operation (drivers may feed the tool over time).
    pub fn enqueue(&mut self, op: ModOp) {
        self.queue.push(op);
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<ModEvent> {
        std::mem::take(&mut self.events)
    }

    fn finish(&mut self, ev: ModEvent) {
        self.events.push(ev.clone());
        self.results.push(ev);
        self.active = None;
    }

    fn gos_send(&mut self, ctx: &mut ServiceCtx<'_>, gos: Endpoint, cmd: GosCmd) {
        let conn = match self.gos_conns.get(&gos) {
            Some(&c) => c,
            None => {
                let c = self.client.open_app_conn(ctx, gos);
                self.gos_conns.insert(gos, c);
                c
            }
        };
        self.client.send_app(ctx, conn, &cmd.encode());
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.active.is_some() || self.queue.is_empty() {
            return;
        }
        let op = self.queue.remove(0);
        match &op {
            ModOp::Publish { .. } | ModOp::PublishObject { .. } => {
                // Step 1: "create first replica" (paper §6.1).
                let (_, impl_id, scenario) = op.publish_parts().expect("publish-like op");
                let first = scenario.replicas[0];
                let role = scenario.first_role();
                let req = self.next_req;
                self.next_req += 1;
                let cmd = GosCmd::CreateObject {
                    req,
                    impl_id: impl_id.0,
                    protocol: scenario.protocol,
                    role,
                };
                self.active = Some(Active {
                    op,
                    stage: Stage::CreateFirst,
                    oid: None,
                });
                self.gos_send(ctx, first, cmd);
            }
            ModOp::AddFile { oid, file, data } => {
                // One typed client op: the session binds, class-checks
                // and marshals the write.
                let args = AddFile {
                    name: file.clone(),
                    data: data.clone(),
                };
                let oid = *oid;
                self.active = Some(Active {
                    op,
                    stage: Stage::UpdateWrite,
                    oid: Some(oid),
                });
                self.client
                    .op::<PackageInterface>(ctx, oid)
                    .invoke(&PackageInterface::ADD_FILE, &args);
            }
            ModOp::Remove { name, oid, .. } => {
                let name = name.clone();
                let oid = *oid;
                self.active = Some(Active {
                    op,
                    stage: Stage::RemoveName,
                    oid: Some(oid),
                });
                self.na.remove(ctx, &name, 1);
            }
        }
        self.drain(ctx);
    }

    fn fail(&mut self, msg: String) {
        let Some(active) = self.active.take() else {
            return;
        };
        let ev = match active.op {
            ModOp::Publish { name, .. } | ModOp::PublishObject { name, .. } => {
                ModEvent::PublishDone {
                    name,
                    result: Err(msg),
                }
            }
            _ => ModEvent::OpDone { result: Err(msg) },
        };
        self.events.push(ev.clone());
        self.results.push(ev);
    }

    fn handle_gos_resp(&mut self, ctx: &mut ServiceCtx<'_>, resp: GosResp) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        let (_req, oid_result) = match resp {
            GosResp::Ok { req, oid } => (req, Ok(ObjectId(oid))),
            GosResp::Err { req, msg } => (req, Err(msg)),
        };
        match (&mut active.stage, oid_result) {
            (Stage::CreateFirst, Ok(oid)) => {
                active.oid = Some(oid);
                let Some((_, impl_id, scenario)) = active.op.publish_parts() else {
                    return;
                };
                let rest = &scenario.replicas[1..];
                if rest.is_empty() {
                    self.start_fill(ctx);
                } else {
                    // Step 2: "bind to DSO ⟨OID⟩, create replica" at the
                    // remaining servers.
                    active.stage = Stage::CreateRest {
                        remaining: rest.len(),
                    };
                    let master = scenario.replicas[0];
                    let protocol = scenario.protocol;
                    let cmds: Vec<(Endpoint, GosCmd)> = rest
                        .iter()
                        .map(|&gos| {
                            let req = self.next_req;
                            self.next_req += 1;
                            (
                                gos,
                                GosCmd::CreateReplica {
                                    req,
                                    oid: oid.0,
                                    impl_id: impl_id.0,
                                    protocol,
                                    role: RoleSpec::Slave { master },
                                },
                            )
                        })
                        .collect();
                    for (gos, cmd) in cmds {
                        self.gos_send(ctx, gos, cmd);
                    }
                }
            }
            (Stage::CreateRest { remaining }, Ok(_)) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.start_fill(ctx);
                }
            }
            (Stage::RemoveReplicas { remaining }, Ok(_)) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.finish(ModEvent::OpDone { result: Ok(()) });
                }
            }
            (_, Err(msg)) => self.fail(format!("object server refused: {msg}")),
            _ => {}
        }
    }

    /// Uploads the publish-like op's content: every fill invocation
    /// becomes one client op, pipelined behind the session's single
    /// bind of the fresh object.
    fn start_fill(&mut self, ctx: &mut ServiceCtx<'_>) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        let oid = active.oid.expect("fill follows creation");
        let impl_id = active
            .op
            .publish_parts()
            .map(|(_, impl_id, _)| impl_id)
            .expect("publish-like op");
        let invs = Self::fill_invocations(&active.op);
        active.stage = Stage::Fill {
            remaining: invs.len(),
        };
        if invs.is_empty() {
            // Nothing to upload (e.g. an empty catalog): proceed
            // straight to name registration.
            self.fill_done(ctx);
            return;
        }
        for inv in invs {
            self.client.submit(ctx, oid, Some(impl_id), inv);
        }
    }

    fn fill_invocations(op: &ModOp) -> Vec<Invocation> {
        match op {
            // Package sugar: content writes marshalled through the typed
            // package interface.
            ModOp::Publish {
                description, files, ..
            } => {
                let mut invs = vec![PackageInterface::SET_META.invocation(&Meta {
                    description: description.clone(),
                })];
                for (fname, data) in files {
                    invs.push(PackageInterface::ADD_FILE.invocation(&AddFile {
                        name: fname.clone(),
                        data: data.clone(),
                    }));
                }
                invs
            }
            // Generic objects carry their typed fill directly.
            ModOp::PublishObject { fill, .. } => fill.clone(),
            _ => Vec::new(),
        }
    }

    fn handle_op_done(&mut self, ctx: &mut ServiceCtx<'_>, done: OpDone) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        match (&mut active.stage, done.result) {
            (Stage::Fill { remaining }, Ok(_)) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.fill_done(ctx);
                }
            }
            (Stage::Fill { .. }, Err(e)) => self.fail(format!("content write failed: {e}")),
            (Stage::UpdateWrite, Ok(_)) => self.finish(ModEvent::OpDone { result: Ok(()) }),
            (Stage::UpdateWrite, Err(e)) => self.fail(format!("write failed: {e}")),
            _ => {}
        }
    }

    fn fill_done(&mut self, ctx: &mut ServiceCtx<'_>) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        let oid = active.oid.expect("oid set");
        let Some((name, _, _)) = active.op.publish_parts() else {
            return;
        };
        // Final step: register the name (paper §6.1).
        let name = name.to_owned();
        active.stage = Stage::RegisterName;
        self.na.add(ctx, &name, oid, 1);
    }

    fn handle_na_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: NaEvent) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        match (&mut active.stage, ev) {
            (Stage::RegisterName, NaEvent::Done { result, .. }) => match result {
                Ok(()) => {
                    let oid = active.oid.expect("oid set");
                    let Some((name, _, _)) = active.op.publish_parts() else {
                        return;
                    };
                    let name = name.to_owned();
                    self.finish(ModEvent::PublishDone {
                        name,
                        result: Ok(oid),
                    });
                }
                Err(e) => self.fail(format!("name registration failed: {e}")),
            },
            (Stage::RemoveName, NaEvent::Done { result, .. }) => match result {
                Ok(()) => {
                    let ModOp::Remove { oid, replicas, .. } = &active.op else {
                        return;
                    };
                    let oid = oid.0;
                    let replicas = replicas.clone();
                    if replicas.is_empty() {
                        self.finish(ModEvent::OpDone { result: Ok(()) });
                        return;
                    }
                    active.stage = Stage::RemoveReplicas {
                        remaining: replicas.len(),
                    };
                    let cmds: Vec<(Endpoint, GosCmd)> = replicas
                        .iter()
                        .map(|&gos| {
                            let req = self.next_req;
                            self.next_req += 1;
                            (gos, GosCmd::DeleteReplica { req, oid })
                        })
                        .collect();
                    for (gos, cmd) in cmds {
                        self.gos_send(ctx, gos, cmd);
                    }
                }
                Err(e) => self.fail(format!("name removal failed: {e}")),
            },
            (_, NaEvent::ConnectionFailed(r)) => self.fail(format!("naming authority: {r}")),
            _ => {}
        }
    }

    fn pump(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.drain(ctx);
        self.kick(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        loop {
            let op_events = self.client.take_events();
            let na_events = self.na.take_events();
            if op_events.is_empty() && na_events.is_empty() {
                break;
            }
            for done in op_events {
                self.handle_op_done(ctx, done);
            }
            for ev in na_events {
                self.handle_na_event(ctx, ev);
            }
        }
        if self.active.is_none() {
            self.kick(ctx);
        }
    }
}

impl Service for ModeratorTool {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.client.handle_datagram(ctx, from, &payload) {
            self.pump(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.client.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed => self.pump(ctx),
            RtConn::AppData { frames, .. } => {
                for f in frames {
                    if let Ok(resp) = GosResp::decode(&f) {
                        self.handle_gos_resp(ctx, resp);
                    }
                }
                self.pump(ctx);
            }
            RtConn::NotMine(ev) => {
                if self.na.handle_conn_event(ctx, conn, &ev) {
                    self.pump(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.client.handle_timer(ctx, token) {
            self.pump(ctx);
        }
    }

    impl_service_any!();
}
