//! The embeddable GLS client used by the Globe runtime, object servers
//! and moderator tools.
//!
//! A [`GlsClient`] lives *inside* another service (the paper's run-time
//! system calls the GLS during `bind`, §3.4). The owning service routes
//! datagrams and timers to it and drains completion events after each
//! handler:
//!
//! ```text
//! fn on_datagram(..) {
//!     if self.gls.handle_datagram(ctx, from, &payload) { self.drive(ctx); return; }
//!     ...
//! }
//! ```
//!
//! Because the GLS runs over unreliable datagrams, the client retries
//! each operation a configurable number of times before reporting
//! [`GlsError::Timeout`].

use std::collections::BTreeMap;
use std::sync::Arc;

pub use globe_net::{ns_token, owns_token};
use globe_net::{token_id, Endpoint, HostId, ServiceCtx, TimerId};
use globe_sim::{SimDuration, SimTime};

use crate::proto::{AckOp, GlsMsg, Status};
use crate::tree::{DomainId, GlsDeployment};
use crate::types::{ContactAddress, GlsError, Level, ObjectId};

/// Completion events surfaced by [`GlsClient::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlsEvent {
    /// A lookup finished.
    LookupDone {
        /// Caller-chosen correlation token.
        token: u64,
        /// Contact addresses, or why none were returned.
        result: Result<Vec<ContactAddress>, GlsError>,
        /// Directory nodes the request visited.
        hops: u32,
        /// End-to-end latency of the operation.
        latency: SimDuration,
    },
    /// An insert finished.
    InsertDone {
        /// Caller-chosen correlation token.
        token: u64,
        /// Success or timeout.
        result: Result<(), GlsError>,
    },
    /// A delete finished.
    DeleteDone {
        /// Caller-chosen correlation token.
        token: u64,
        /// Success or timeout.
        result: Result<(), GlsError>,
    },
}

#[derive(Debug)]
enum Op {
    Lookup,
    Insert,
    Delete,
}

#[derive(Debug)]
struct Pending {
    op: Op,
    user_token: u64,
    payload: Vec<u8>,
    leaf: Endpoint,
    attempts: u32,
    started: SimTime,
    timer: TimerId,
}

/// Client-side access to the Globe Location Service.
pub struct GlsClient {
    deploy: Arc<GlsDeployment>,
    my_host: HostId,
    ns: u16,
    timeout: SimDuration,
    max_attempts: u32,
    next_req: u64,
    pending: BTreeMap<u64, Pending>,
    events: Vec<GlsEvent>,
}

impl GlsClient {
    /// Creates a client for a service running on `my_host`, using timer
    /// namespace `ns` (see [`ns_token`]).
    pub fn new(deploy: Arc<GlsDeployment>, my_host: HostId, ns: u16) -> GlsClient {
        GlsClient {
            deploy,
            my_host,
            ns,
            timeout: SimDuration::from_millis(2_500),
            max_attempts: 4,
            next_req: 1,
            pending: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Overrides the per-attempt timeout (default 2.5 s).
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the attempt budget (default 4).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_attempts = n;
        self
    }

    /// The deployment this client resolves against.
    pub fn deployment(&self) -> &Arc<GlsDeployment> {
        &self.deploy
    }

    /// Number of in-flight operations.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn start(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        op: Op,
        user_token: u64,
        oid: ObjectId,
        msg_builder: impl Fn(u64, Endpoint) -> GlsMsg,
    ) {
        let leaf_domain = self.deploy.leaf_domain(ctx.topo(), self.my_host);
        self.start_at(ctx, op, user_token, oid, leaf_domain, msg_builder);
    }

    fn start_at(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        op: Op,
        user_token: u64,
        oid: ObjectId,
        entry_domain: DomainId,
        msg_builder: impl Fn(u64, Endpoint) -> GlsMsg,
    ) {
        let req = self.next_req;
        self.next_req += 1;
        let leaf = self.deploy.route(entry_domain, oid);
        let origin = ctx.me();
        let payload = msg_builder(req, origin).encode();
        ctx.send_datagram(leaf, payload.clone());
        let timer = ctx.set_timer(self.timeout, ns_token(self.ns, req));
        self.pending.insert(
            req,
            Pending {
                op,
                user_token,
                payload,
                leaf,
                attempts: 1,
                started: ctx.now(),
                timer,
            },
        );
    }

    /// Starts a lookup for `oid`; completion arrives as
    /// [`GlsEvent::LookupDone`] with `token`.
    pub fn lookup(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        self.start(ctx, Op::Lookup, token, oid, |req, origin| {
            GlsMsg::LookupUp {
                req,
                oid,
                origin,
                hops: 0,
            }
        });
    }

    /// Starts a lookup that enters the tree at the *root* instead of
    /// this host's leaf domain. A leaf lookup resolves at the nearest
    /// registered replica and names nothing else; entering at the root
    /// makes the node's random pointer descent (paper §3.5) sample any
    /// registered replica uniformly at random. Runtimes use this to
    /// widen a thin failover candidate set without any new message
    /// type or registration scheme, paying the paper's worst-case hop
    /// count only on these exploratory refreshes.
    pub fn lookup_above(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        let entry = self.deploy.root();
        self.start_at(ctx, Op::Lookup, token, oid, entry, |req, origin| {
            GlsMsg::LookupUp {
                req,
                oid,
                origin,
                hops: 0,
            }
        });
    }

    /// Registers `addr` for `oid` at `store_level` (normally
    /// [`Level::Site`]).
    pub fn insert(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        oid: ObjectId,
        addr: ContactAddress,
        store_level: Level,
        token: u64,
    ) {
        self.start(ctx, Op::Insert, token, oid, |req, origin| GlsMsg::Insert {
            req,
            oid,
            addr,
            origin,
            store_level,
            hops: 0,
        });
    }

    /// Allocates a fresh object id and registers `addr` for it; the
    /// insert completion carries `token`.
    ///
    /// The paper has the GLS allocate identifiers during registration
    /// (§6.1); here the allocation happens in the GLS client library so
    /// the id can be routed to the right subnode, which is equivalent
    /// because identifiers are location-independent random bit strings.
    pub fn register_new(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        addr: ContactAddress,
        store_level: Level,
        token: u64,
    ) -> ObjectId {
        let oid = ObjectId::generate(ctx.rng());
        self.insert(ctx, oid, addr, store_level, token);
        oid
    }

    /// Deregisters `addr` for `oid`.
    pub fn delete(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        oid: ObjectId,
        addr: ContactAddress,
        store_level: Level,
        token: u64,
    ) {
        self.start(ctx, Op::Delete, token, oid, |req, origin| GlsMsg::Delete {
            req,
            oid,
            addr,
            origin,
            store_level,
            hops: 0,
        });
    }

    /// Routes an inbound datagram. Returns `true` if it was a GLS reply
    /// belonging to this client (consumed), `false` otherwise.
    pub fn handle_datagram(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        _from: Endpoint,
        payload: &[u8],
    ) -> bool {
        let Ok(msg) = GlsMsg::decode(payload) else {
            return false;
        };
        match msg {
            GlsMsg::LookupResp {
                req,
                status,
                addrs,
                hops,
            } => {
                let Some(p) = self.pending.remove(&req) else {
                    return true; // late duplicate of a completed request
                };
                ctx.cancel_timer(p.timer);
                let latency = ctx.now().saturating_sub(p.started);
                ctx.metrics().record("gls.lookup.hops", hops as u64);
                ctx.metrics()
                    .record("gls.lookup.latency_us", latency.as_micros());
                if status == Status::Inconsistent && p.attempts < self.max_attempts {
                    // A stale forwarding pointer (e.g. an expired lease
                    // being lazily cleaned): retry — the path shrinks on
                    // each attempt until a live replica is reachable.
                    let mut p = p;
                    p.attempts += 1;
                    ctx.metrics().inc("gls.client.inconsistent_retries", 1);
                    ctx.send_datagram(p.leaf, p.payload.clone());
                    p.timer = ctx.set_timer(self.timeout, ns_token(self.ns, req));
                    self.pending.insert(req, p);
                    return true;
                }
                let result = match status {
                    Status::Ok => Ok(addrs),
                    Status::NotFound => Err(GlsError::NotFound),
                    Status::Inconsistent => Err(GlsError::Inconsistent),
                };
                self.events.push(GlsEvent::LookupDone {
                    token: p.user_token,
                    result,
                    hops,
                    latency,
                });
                true
            }
            GlsMsg::Ack { req, op, hops } => {
                let Some(p) = self.pending.remove(&req) else {
                    return true;
                };
                ctx.cancel_timer(p.timer);
                ctx.metrics().record(
                    match op {
                        AckOp::Insert => "gls.insert.hops",
                        AckOp::Delete => "gls.delete.hops",
                    },
                    hops as u64,
                );
                let ev = match op {
                    AckOp::Insert => GlsEvent::InsertDone {
                        token: p.user_token,
                        result: Ok(()),
                    },
                    AckOp::Delete => GlsEvent::DeleteDone {
                        token: p.user_token,
                        result: Ok(()),
                    },
                };
                self.events.push(ev);
                true
            }
            _ => false, // a request datagram; not ours to handle
        }
    }

    /// Routes a timer. Returns `true` if the token belonged to this
    /// client (consumed).
    pub fn handle_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) -> bool {
        if !owns_token(self.ns, token) {
            return false;
        }
        let req = token_id(token);
        let Some(p) = self.pending.get_mut(&req) else {
            return true; // already completed
        };
        if p.attempts >= self.max_attempts {
            let p = self.pending.remove(&req).expect("checked above");
            ctx.metrics().inc("gls.client.timeouts", 1);
            let ev = match p.op {
                Op::Lookup => GlsEvent::LookupDone {
                    token: p.user_token,
                    result: Err(GlsError::Timeout),
                    hops: 0,
                    latency: ctx.now().saturating_sub(p.started),
                },
                Op::Insert => GlsEvent::InsertDone {
                    token: p.user_token,
                    result: Err(GlsError::Timeout),
                },
                Op::Delete => GlsEvent::DeleteDone {
                    token: p.user_token,
                    result: Err(GlsError::Timeout),
                },
            };
            self.events.push(ev);
        } else {
            p.attempts += 1;
            ctx.metrics().inc("gls.client.retries", 1);
            let payload = p.payload.clone();
            let leaf = p.leaf;
            ctx.send_datagram(leaf, payload);
            p.timer = ctx.set_timer(self.timeout, ns_token(self.ns, req));
        }
        true
    }

    /// Drains completion events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<GlsEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_namespace_round_trip() {
        let t = ns_token(7, 123);
        assert!(owns_token(7, t));
        assert!(!owns_token(8, t));
        assert_eq!(t & 0xFFFF_FFFF_FFFF, 123);
    }

    #[test]
    fn token_namespace_masks_large_ids() {
        // Ids are masked to 48 bits; namespaces survive regardless.
        let t = ns_token(1, u64::MAX);
        assert!(owns_token(1, t));
        assert_eq!(t & 0xFFFF_FFFF_FFFF, 0xFFFF_FFFF_FFFF);
    }
}
