//! DNS wire protocol: queries, responses, dynamic updates (RFC 2136)
//! and TSIG authentication (the BIND8 feature the paper relies on,
//! §6.3).
//!
//! Runs over datagrams like real DNS; clients and resolvers retry on
//! loss. Every decode path is total — the GDN must survive bogus
//! protocol messages (paper §6.3).

use globe_crypto::hmac::{hmac_sha256, verify_tag};
use globe_net::{WireError, WireReader, WireWriter};

use crate::name::DnsName;
use crate::records::{RecordType, ResourceRecord};

/// Response codes (subset of RFC 1035 / 2136).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rcode {
    /// Success.
    Ok,
    /// The queried name does not exist.
    NxDomain,
    /// The server refuses (not authoritative / policy).
    Refused,
    /// Internal failure.
    ServFail,
    /// Dynamic update rejected: TSIG verification failed.
    NotAuth,
}

impl Rcode {
    fn tag(self) -> u8 {
        match self {
            Rcode::Ok => 0,
            Rcode::NxDomain => 3,
            Rcode::Refused => 5,
            Rcode::ServFail => 2,
            Rcode::NotAuth => 9,
        }
    }

    fn from_tag(t: u8) -> Result<Rcode, WireError> {
        Ok(match t {
            0 => Rcode::Ok,
            3 => Rcode::NxDomain,
            5 => Rcode::Refused,
            2 => Rcode::ServFail,
            9 => Rcode::NotAuth,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// One operation inside a dynamic update (RFC 2136 subset).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UpdateOp {
    /// Add a record.
    Add(ResourceRecord),
    /// Delete every record of `rtype` at the name.
    DeleteRrset(DnsName, RecordType),
}

impl UpdateOp {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            UpdateOp::Add(rr) => {
                w.put_u8(1);
                rr.encode(w);
            }
            UpdateOp::DeleteRrset(name, rtype) => {
                w.put_u8(2);
                w.put_str(&name.to_string());
                w.put_u8(rtype.tag());
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<UpdateOp, WireError> {
        Ok(match r.u8()? {
            1 => UpdateOp::Add(ResourceRecord::decode(r)?),
            2 => UpdateOp::DeleteRrset(
                DnsName::parse(r.str()?).map_err(|_| WireError::BadTag(0))?,
                RecordType::from_tag(r.u8()?)?,
            ),
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// All DNS datagram payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DnsMsg {
    /// A question.
    Query {
        /// Correlation id, echoed in the response.
        qid: u64,
        /// Queried name.
        name: DnsName,
        /// Queried type.
        rtype: RecordType,
        /// `true` when sent to a recursive resolver; authoritative
        /// servers ignore it and answer iteratively.
        recursion_desired: bool,
    },
    /// An answer, referral or error.
    Response {
        /// Echoes the query's id.
        qid: u64,
        /// Outcome.
        rcode: Rcode,
        /// Answer records (empty on referral / error / no-data).
        answers: Vec<ResourceRecord>,
        /// Referral NS records (authority section).
        authority: Vec<ResourceRecord>,
        /// Glue A records for the authority servers.
        additional: Vec<ResourceRecord>,
        /// Whether the responder is authoritative for the name.
        authoritative: bool,
        /// TTL to use when caching a negative answer.
        negative_ttl: u32,
    },
    /// A TSIG-signed dynamic update (moderator-driven name changes and
    /// primary→secondary replication).
    Update {
        /// Correlation id.
        qid: u64,
        /// Zone being updated.
        zone: DnsName,
        /// Operations, applied in order.
        ops: Vec<UpdateOp>,
        /// Name of the TSIG key used.
        key_name: String,
        /// HMAC-SHA256 over the update body under the named key.
        mac: [u8; 32],
    },
    /// Acknowledgement of an update.
    UpdateResp {
        /// Echoes the update's id.
        qid: u64,
        /// Outcome.
        rcode: Rcode,
    },
}

const T_QUERY: u8 = 1;
const T_RESPONSE: u8 = 2;
const T_UPDATE: u8 = 3;
const T_UPDATE_RESP: u8 = 4;

fn put_rrs(w: &mut WireWriter, rrs: &[ResourceRecord]) {
    w.put_u32(rrs.len() as u32);
    for rr in rrs {
        rr.encode(w);
    }
}

fn get_rrs(r: &mut WireReader<'_>) -> Result<Vec<ResourceRecord>, WireError> {
    let n = r.u32()?;
    if n > 4096 {
        return Err(WireError::TooLarge);
    }
    let mut rrs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        rrs.push(ResourceRecord::decode(r)?);
    }
    Ok(rrs)
}

/// Computes the TSIG MAC over an update's body.
pub fn tsig_mac(secret: &[u8], zone: &DnsName, ops: &[UpdateOp], key_name: &str) -> [u8; 32] {
    let mut w = WireWriter::new();
    w.put_str("gdn-tsig-v1");
    w.put_str(&zone.to_string());
    w.put_u32(ops.len() as u32);
    for op in ops {
        op.encode(&mut w);
    }
    w.put_str(key_name);
    hmac_sha256(secret, &w.finish())
}

/// Verifies an update's TSIG MAC.
pub fn tsig_verify(
    secret: &[u8],
    zone: &DnsName,
    ops: &[UpdateOp],
    key_name: &str,
    mac: &[u8; 32],
) -> bool {
    verify_tag(&tsig_mac(secret, zone, ops, key_name), mac)
}

impl DnsMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            DnsMsg::Query {
                qid,
                name,
                rtype,
                recursion_desired,
            } => {
                w.put_u8(T_QUERY);
                w.put_u64(*qid);
                w.put_str(&name.to_string());
                w.put_u8(rtype.tag());
                w.put_bool(*recursion_desired);
            }
            DnsMsg::Response {
                qid,
                rcode,
                answers,
                authority,
                additional,
                authoritative,
                negative_ttl,
            } => {
                w.put_u8(T_RESPONSE);
                w.put_u64(*qid);
                w.put_u8(rcode.tag());
                put_rrs(&mut w, answers);
                put_rrs(&mut w, authority);
                put_rrs(&mut w, additional);
                w.put_bool(*authoritative);
                w.put_u32(*negative_ttl);
            }
            DnsMsg::Update {
                qid,
                zone,
                ops,
                key_name,
                mac,
            } => {
                w.put_u8(T_UPDATE);
                w.put_u64(*qid);
                w.put_str(&zone.to_string());
                w.put_u32(ops.len() as u32);
                for op in ops {
                    op.encode(&mut w);
                }
                w.put_str(key_name);
                w.put_raw(mac);
            }
            DnsMsg::UpdateResp { qid, rcode } => {
                w.put_u8(T_UPDATE_RESP);
                w.put_u64(*qid);
                w.put_u8(rcode.tag());
            }
        }
        w.finish()
    }

    /// Deserializes a message.
    pub fn decode(buf: &[u8]) -> Result<DnsMsg, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.u8()? {
            T_QUERY => DnsMsg::Query {
                qid: r.u64()?,
                name: DnsName::parse(r.str()?).map_err(|_| WireError::BadTag(0))?,
                rtype: RecordType::from_tag(r.u8()?)?,
                recursion_desired: r.bool()?,
            },
            T_RESPONSE => DnsMsg::Response {
                qid: r.u64()?,
                rcode: Rcode::from_tag(r.u8()?)?,
                answers: get_rrs(&mut r)?,
                authority: get_rrs(&mut r)?,
                additional: get_rrs(&mut r)?,
                authoritative: r.bool()?,
                negative_ttl: r.u32()?,
            },
            T_UPDATE => {
                let qid = r.u64()?;
                let zone = DnsName::parse(r.str()?).map_err(|_| WireError::BadTag(0))?;
                let n = r.u32()?;
                if n > 65_536 {
                    return Err(WireError::TooLarge);
                }
                let mut ops = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ops.push(UpdateOp::decode(&mut r)?);
                }
                let key_name = r.str()?.to_owned();
                let mut mac = [0u8; 32];
                mac.copy_from_slice(r.raw(32)?);
                DnsMsg::Update {
                    qid,
                    zone,
                    ops,
                    key_name,
                    mac,
                }
            }
            T_UPDATE_RESP => DnsMsg::UpdateResp {
                qid: r.u64()?,
                rcode: Rcode::from_tag(r.u8()?)?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::RData;
    use globe_net::HostId;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn query_response_round_trip() {
        let q = DnsMsg::Query {
            qid: 7,
            name: name("gimp.apps.gdn.glb"),
            rtype: RecordType::Txt,
            recursion_desired: true,
        };
        assert_eq!(DnsMsg::decode(&q.encode()).unwrap(), q);

        let resp = DnsMsg::Response {
            qid: 7,
            rcode: Rcode::Ok,
            answers: vec![ResourceRecord::new(
                name("gimp.apps.gdn.glb"),
                300,
                RData::Txt("oid=ff".into()),
            )],
            authority: vec![ResourceRecord::new(
                name("gdn.glb"),
                300,
                RData::Ns(name("ns1.gdn.glb")),
            )],
            additional: vec![ResourceRecord::new(
                name("ns1.gdn.glb"),
                300,
                RData::A(HostId(3)),
            )],
            authoritative: true,
            negative_ttl: 60,
        };
        assert_eq!(DnsMsg::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn update_round_trip_and_tsig() {
        let zone = name("gdn.glb");
        let ops = vec![
            UpdateOp::Add(ResourceRecord::new(
                name("x.gdn.glb"),
                300,
                RData::Txt("oid=1".into()),
            )),
            UpdateOp::DeleteRrset(name("y.gdn.glb"), RecordType::Txt),
        ];
        let mac = tsig_mac(b"secret", &zone, &ops, "na-key");
        let msg = DnsMsg::Update {
            qid: 9,
            zone: zone.clone(),
            ops: ops.clone(),
            key_name: "na-key".into(),
            mac,
        };
        assert_eq!(DnsMsg::decode(&msg.encode()).unwrap(), msg);
        assert!(tsig_verify(b"secret", &zone, &ops, "na-key", &mac));
        assert!(!tsig_verify(b"wrong", &zone, &ops, "na-key", &mac));
        // Tampered ops fail verification.
        let mut tampered = ops.clone();
        tampered.pop();
        assert!(!tsig_verify(b"secret", &zone, &tampered, "na-key", &mac));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(DnsMsg::decode(&[]).is_err());
        assert!(DnsMsg::decode(&[0x7F]).is_err());
        let mut buf = DnsMsg::UpdateResp {
            qid: 1,
            rcode: Rcode::Ok,
        }
        .encode();
        buf.push(1);
        assert_eq!(DnsMsg::decode(&buf), Err(WireError::TrailingBytes));
    }

    #[test]
    fn rcode_tags_round_trip() {
        for rc in [
            Rcode::Ok,
            Rcode::NxDomain,
            Rcode::Refused,
            Rcode::ServFail,
            Rcode::NotAuth,
        ] {
            assert_eq!(Rcode::from_tag(rc.tag()).unwrap(), rc);
        }
        assert!(Rcode::from_tag(77).is_err());
    }
}
