//! Schnorr signatures and Diffie–Hellman key agreement over the
//! [`crate::group`] Schnorr group.
//!
//! **Simulation-grade security** — see the [`crate::group`] caveat: the
//! 61-bit group makes this breakable in practice. The *structure* is the
//! real Schnorr scheme with deterministic (RFC 6979-style) nonces, so all
//! protocol logic above it (certificates, gTLS authentication, TSIG key
//! distribution) is shaped exactly as it would be with real parameters.

use globe_sim::Rng;

use crate::group::{digest_to_scalar, mul_mod, pow_mod, G, P, Q};
use crate::sha256::Sha256;

/// A Schnorr secret key: a scalar `x` in `[1, Q)`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

/// A Schnorr public key: `y = G^x mod P`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PublicKey(pub u64);

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Challenge scalar.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material, even in simulation.
        write!(f, "SecretKey(..)")
    }
}

/// Generates a key pair from the given random stream.
pub fn keygen(rng: &mut Rng) -> (SecretKey, PublicKey) {
    let x = rng.gen_range(1..Q);
    let y = pow_mod(G, x, P);
    (SecretKey(x), PublicKey(y))
}

/// Generates a key pair deterministically from a seed (for fixed test
/// identities and reproducible deployments).
pub fn keygen_from_seed(seed: u64) -> (SecretKey, PublicKey) {
    let mut rng = Rng::new(seed ^ 0x5349_474e_4b45_5953);
    keygen(&mut rng)
}

fn challenge(r: u64, message: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"globe-schnorr-v1");
    h.update(&r.to_be_bytes());
    h.update(message);
    digest_to_scalar(&h.finish())
}

/// Signs `message` with `sk`.
///
/// The nonce is derived deterministically from the key and message
/// (RFC 6979 style), so signing never consumes randomness and identical
/// inputs produce identical signatures — important for replayable
/// simulations.
pub fn sign(sk: &SecretKey, message: &[u8]) -> Signature {
    // k = H(x || message) reduced to a nonzero scalar.
    let mut h = Sha256::new();
    h.update(b"globe-schnorr-nonce");
    h.update(&sk.0.to_be_bytes());
    h.update(message);
    let k = digest_to_scalar(&h.finish());
    let r = pow_mod(G, k, P);
    let e = challenge(r, message);
    // s = k - x*e mod Q.
    let xe = mul_mod(sk.0, e, Q);
    let s = (k + Q - xe) % Q;
    Signature { e, s }
}

/// Verifies a signature over `message` by `pk`.
pub fn verify(pk: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    if sig.e == 0 || sig.e >= Q || sig.s >= Q {
        return false;
    }
    if pk.0 == 0 || pk.0 >= P || pow_mod(pk.0, Q, P) != 1 {
        // Public key must be a member of the order-Q subgroup.
        return false;
    }
    // r' = G^s * y^e mod P; valid iff H(r' || m) == e.
    let r = mul_mod(pow_mod(G, sig.s, P), pow_mod(pk.0, sig.e, P), P);
    challenge(r, message) == sig.e
}

/// An ephemeral Diffie–Hellman secret for gTLS key agreement.
#[derive(Clone, Copy)]
pub struct DhSecret(u64);

/// A Diffie–Hellman public share `G^a mod P`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DhPublic(pub u64);

/// Generates an ephemeral DH key pair.
pub fn dh_keygen(rng: &mut Rng) -> (DhSecret, DhPublic) {
    let a = rng.gen_range(1..Q);
    (DhSecret(a), DhPublic(pow_mod(G, a, P)))
}

/// Computes the shared secret from our secret and the peer's share.
///
/// Returns `None` if the peer's share is not a valid group element
/// (small-subgroup / invalid-element rejection).
pub fn dh_shared(secret: &DhSecret, peer: &DhPublic) -> Option<u64> {
    if peer.0 <= 1 || peer.0 >= P || pow_mod(peer.0, Q, P) != 1 {
        return None;
    }
    Some(pow_mod(peer.0, secret.0, P))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let (sk, pk) = keygen_from_seed(1);
        let sig = sign(&sk, b"hello world");
        assert!(verify(&pk, b"hello world", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let (sk, pk) = keygen_from_seed(2);
        let sig = sign(&sk, b"message A");
        assert!(!verify(&pk, b"message B", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let (sk, _) = keygen_from_seed(3);
        let (_, other_pk) = keygen_from_seed(4);
        let sig = sign(&sk, b"msg");
        assert!(!verify(&other_pk, b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let (sk, pk) = keygen_from_seed(5);
        let sig = sign(&sk, b"msg");
        let bad_e = Signature {
            e: sig.e ^ 1,
            s: sig.s,
        };
        let bad_s = Signature {
            e: sig.e,
            s: (sig.s + 1) % Q,
        };
        assert!(!verify(&pk, b"msg", &bad_e));
        assert!(!verify(&pk, b"msg", &bad_s));
    }

    #[test]
    fn verify_rejects_out_of_range_values() {
        let (sk, pk) = keygen_from_seed(6);
        let sig = sign(&sk, b"msg");
        assert!(!verify(&pk, b"msg", &Signature { e: 0, s: sig.s }));
        assert!(!verify(&pk, b"msg", &Signature { e: Q, s: sig.s }));
        assert!(!verify(&pk, b"msg", &Signature { e: sig.e, s: Q }));
        // Invalid public key (not in subgroup / out of range).
        assert!(!verify(&PublicKey(0), b"msg", &sig));
        assert!(!verify(&PublicKey(P), b"msg", &sig));
    }

    #[test]
    fn signing_is_deterministic() {
        let (sk, _) = keygen_from_seed(7);
        assert_eq!(sign(&sk, b"x"), sign(&sk, b"x"));
        assert_ne!(sign(&sk, b"x"), sign(&sk, b"y"));
    }

    #[test]
    fn keygen_from_seed_is_stable() {
        let (a_sk, a_pk) = keygen_from_seed(42);
        let (b_sk, b_pk) = keygen_from_seed(42);
        assert_eq!(a_pk, b_pk);
        assert_eq!(sign(&a_sk, b"m"), sign(&b_sk, b"m"));
        let (_, c_pk) = keygen_from_seed(43);
        assert_ne!(a_pk, c_pk);
    }

    #[test]
    fn dh_agreement() {
        let mut r1 = Rng::new(10);
        let mut r2 = Rng::new(20);
        let (a_sec, a_pub) = dh_keygen(&mut r1);
        let (b_sec, b_pub) = dh_keygen(&mut r2);
        let s_ab = dh_shared(&a_sec, &b_pub).unwrap();
        let s_ba = dh_shared(&b_sec, &a_pub).unwrap();
        assert_eq!(s_ab, s_ba);
    }

    #[test]
    fn dh_rejects_invalid_share() {
        let mut r = Rng::new(11);
        let (sec, _) = dh_keygen(&mut r);
        assert!(dh_shared(&sec, &DhPublic(0)).is_none());
        assert!(dh_shared(&sec, &DhPublic(1)).is_none());
        assert!(dh_shared(&sec, &DhPublic(P)).is_none());
        // 2 generates the full group (order 2Q), not the prime-order
        // subgroup, so it must be rejected too.
        assert!(dh_shared(&sec, &DhPublic(2)).is_none());
    }

    #[test]
    fn secret_key_debug_redacts() {
        let (sk, _) = keygen_from_seed(1);
        assert_eq!(format!("{sk:?}"), "SecretKey(..)");
    }

    #[test]
    fn distinct_rng_keys_differ() {
        let mut rng = Rng::new(123);
        let (_, pk1) = keygen(&mut rng);
        let (_, pk2) = keygen(&mut rng);
        assert_ne!(pk1, pk2);
    }
}
