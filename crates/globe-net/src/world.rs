//! The simulation world: hosts, services, and the deterministic event
//! loop that moves messages between them.
//!
//! Services are event-driven daemons (the classic structure of the era's
//! network servers): they react to datagrams, stream events and timers,
//! and issue commands through a [`ServiceCtx`]. Commands accumulate in an
//! outbox while a handler runs and are applied by the world afterwards —
//! the *effects pattern* — so a handler can never observe or mutate
//! in-flight network state.
//!
//! Determinism: the event queue has a stable FIFO tie-break, all service
//! and connection maps are ordered (`BTreeMap`), and each service draws
//! randomness from a stream derived from its `(host, port)` address rather
//! than from insertion order.

use std::collections::{BTreeMap, HashSet};

use globe_sim::{EventQueue, Metrics, Rng, SimDuration, SimTime, TraceLog};

use crate::service::{service_rng_stream, Effect};
use crate::topology::{HostId, NetParams, Tier, Topology};
use crate::transport::{CloseReason, ConnEvent, ConnId, Endpoint, TimerId, Transport};

pub use crate::service::{ns_token, owns_token, token_id, Service, ServiceCtx};

#[derive(Debug)]
enum NetEvent {
    Datagram {
        src: Endpoint,
        dst: Endpoint,
        payload: Vec<u8>,
    },
    Conn {
        conn: ConnId,
        dst: Endpoint,
        ev: ConnEvent,
    },
    Timer {
        dst: Endpoint,
        id: TimerId,
        token: u64,
        epoch: u32,
    },
    Crash(HostId),
    Recover(HostId),
    /// A deferred effect becoming visible after its processing delay.
    Deferred {
        src: Endpoint,
        effect: Effect,
    },
}

#[derive(Debug)]
struct ConnState {
    client: Endpoint,
    server: Endpoint,
    /// Per-direction "link busy until" time; index 0 is client→server.
    free_at: [SimTime; 2],
}

struct Slot {
    service: Option<Box<dyn Service>>,
    rng: Rng,
}

/// The simulation world: topology + services + in-flight events.
///
/// See the crate-level docs for an end-to-end example.
pub struct World {
    topo: Topology,
    params: NetParams,
    queue: EventQueue<NetEvent>,
    now: SimTime,
    services: BTreeMap<(u32, u16), Slot>,
    conns: BTreeMap<u64, ConnState>,
    /// Sender-side CPU queue tail per (connection, direction): stream
    /// sends — delayed or not — leave the sending host in FIFO order, so
    /// a cheap message can never overtake an expensive one issued before
    /// it (a single-threaded daemon processes its output sequentially).
    send_tail: BTreeMap<(u64, u8), SimTime>,
    host_up: Vec<bool>,
    host_epoch: Vec<u32>,
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    cancelled: HashSet<u64>,
    metrics: Metrics,
    trace: TraceLog,
    rng: Rng,
    next_conn: u64,
    next_timer: u64,
    started: bool,
    seed: u64,
}

impl World {
    /// Creates a world over `topo` with the given link parameters and
    /// random seed. Identical `(topo, params, seed, program)` always
    /// replays identically.
    pub fn new(topo: Topology, params: NetParams, seed: u64) -> World {
        let n = topo.num_hosts();
        World {
            topo,
            params,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            services: BTreeMap::new(),
            conns: BTreeMap::new(),
            send_tail: BTreeMap::new(),
            host_up: vec![true; n],
            host_epoch: vec![0; n],
            stable: vec![BTreeMap::new(); n],
            cancelled: HashSet::new(),
            metrics: Metrics::new(),
            trace: TraceLog::disabled(),
            rng: Rng::new(seed ^ 0x6c6f_6361_6c5f_6e65),
            next_conn: 1,
            next_timer: 1,
            started: false,
            seed,
        }
    }

    /// Installs a service at `(host, port)`.
    ///
    /// If the world has already started, `on_start` runs immediately.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint is already occupied or the host id is out of
    /// range.
    pub fn add_service<S: Service>(&mut self, host: HostId, port: u16, service: S) {
        self.add_service_boxed(host, port, Box::new(service));
    }

    /// Type-erased form of [`World::add_service`] (the [`Transport`]
    /// trait entry point).
    pub fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>) {
        assert!(
            (host.0 as usize) < self.topo.num_hosts(),
            "unknown host {host:?}"
        );
        let key = (host.0, port);
        assert!(
            !self.services.contains_key(&key),
            "endpoint h{}:{port} already in use",
            host.0
        );
        // Stream derived from the address, not insertion order, so adding
        // services in a different order cannot change anyone's samples.
        let stream = service_rng_stream(host.0, port, self.seed);
        self.services.insert(
            key,
            Slot {
                service: Some(service),
                rng: Rng::new(stream),
            },
        );
        if self.started {
            self.dispatch(Endpoint::new(host, port), |s, ctx| s.on_start(ctx));
        }
    }

    /// Starts all services (calls `on_start` in endpoint order).
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        let eps: Vec<Endpoint> = self
            .services
            .keys()
            .map(|&(h, p)| Endpoint::new(HostId(h), p))
            .collect();
        for ep in eps {
            self.dispatch(ep, |s, ctx| s.on_start(ctx));
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology this world runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for experiment drivers).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Replaces the trace log (e.g. with an enabled one for tests).
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = trace;
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Immutable, typed access to a service.
    pub fn service<S: Service>(&self, host: HostId, port: u16) -> Option<&S> {
        self.services
            .get(&(host.0, port))?
            .service
            .as_ref()?
            .as_any()
            .downcast_ref()
    }

    /// Mutable, typed access to a service. Mutating service state from
    /// outside the event loop is for test/experiment setup only.
    pub fn service_mut<S: Service>(&mut self, host: HostId, port: u16) -> Option<&mut S> {
        self.services
            .get_mut(&(host.0, port))?
            .service
            .as_mut()?
            .as_any_mut()
            .downcast_mut()
    }

    /// Whether `host` is currently up.
    pub fn host_is_up(&self, host: HostId) -> bool {
        self.host_up[host.0 as usize]
    }

    /// Crashes a host immediately: volatile state and timers are lost,
    /// open connections reset, stable storage survives.
    pub fn crash_host(&mut self, host: HostId) {
        self.crash_now(host);
    }

    /// Recovers a crashed host immediately (`on_restart` runs on all of
    /// its services).
    pub fn recover_host(&mut self, host: HostId) {
        self.recover_now(host);
    }

    /// Schedules a crash at absolute time `at`.
    pub fn schedule_crash(&mut self, host: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::Crash(host));
    }

    /// Schedules a recovery at absolute time `at`.
    pub fn schedule_recover(&mut self, host: HostId, at: SimTime) {
        self.queue.schedule(at, NetEvent::Recover(host));
    }

    /// Processes one event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.handle(ev);
        true
    }

    /// Runs until the queue is empty or virtual time would exceed `t`;
    /// the clock ends at exactly `t` if the queue drained first.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until no events remain.
    ///
    /// Programs with self-perpetuating timers never quiesce — use
    /// [`World::run_until`] for those.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn dispatch<F>(&mut self, me: Endpoint, f: F)
    where
        F: FnOnce(&mut dyn Service, &mut ServiceCtx<'_>),
    {
        let key = (me.host.0, me.port);
        // Take the service out of its slot so the ctx can borrow the rest
        // of the world without aliasing it.
        let (mut service, mut rng) = match self.services.get_mut(&key) {
            Some(slot) => match slot.service.take() {
                Some(s) => (s, slot.rng.clone()),
                None => return,
            },
            None => return,
        };
        let effects = {
            let mut ctx = ServiceCtx {
                now: self.now,
                me,
                topo: &self.topo,
                rng: &mut rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                stable: &mut self.stable[me.host.0 as usize],
                effects: Vec::new(),
                next_conn: &mut self.next_conn,
                next_timer: &mut self.next_timer,
            };
            f(service.as_mut(), &mut ctx);
            ctx.effects
        };
        if let Some(slot) = self.services.get_mut(&key) {
            slot.service = Some(service);
            slot.rng = rng;
        }
        self.apply_effects(me, effects);
    }

    fn conn_direction(&self, conn: ConnId, src: Endpoint) -> Option<(usize, Endpoint)> {
        let state = self.conns.get(&conn.0)?;
        if src == state.client {
            Some((0, state.server))
        } else if src == state.server {
            Some((1, state.client))
        } else {
            None
        }
    }

    /// Routes a stream send through the sender's per-connection CPU
    /// queue: `delay` of local processing starts when the previous
    /// output on this connection finished, so output order is FIFO.
    fn enqueue_stream_send(
        &mut self,
        src: Endpoint,
        conn: ConnId,
        msg: Vec<u8>,
        delay: SimDuration,
    ) {
        let Some((dir, _)) = self.conn_direction(conn, src) else {
            self.metrics.inc("net.send_dropped", 1);
            return;
        };
        let key = (conn.0, dir as u8);
        let tail = self.send_tail.get(&key).copied().unwrap_or(self.now);
        let ready = tail.max(self.now) + delay;
        if ready <= self.now {
            self.perform_stream_send(src, conn, msg);
        } else {
            self.send_tail.insert(key, ready);
            self.queue.schedule(
                ready,
                NetEvent::Deferred {
                    src,
                    effect: Effect::Send { conn, msg },
                },
            );
        }
    }

    fn perform_stream_send(&mut self, src: Endpoint, conn: ConnId, msg: Vec<u8>) {
        let Some((dir, dst)) = self.conn_direction(conn, src) else {
            self.metrics.inc("net.send_dropped", 1);
            return;
        };
        let tier = self.topo.tier_between(src.host, dst.host);
        let size = msg.len() as u64 + self.params.overhead;
        let start = self.conns[&conn.0].free_at[dir].max(self.now);
        let trans = self.transmission(size, tier);
        let arrival = start + trans + self.params.link(tier).latency;
        self.conns.get_mut(&conn.0).expect("checked above").free_at[dir] = start + trans;
        self.account(tier, size);
        self.queue.schedule(
            arrival,
            NetEvent::Conn {
                conn,
                dst,
                ev: ConnEvent::Msg(msg),
            },
        );
    }

    /// Closing queues behind pending deferred output on the connection,
    /// so a close can never overtake a response.
    fn enqueue_close(&mut self, src: Endpoint, conn: ConnId) {
        let Some((dir, _)) = self.conn_direction(conn, src) else {
            return;
        };
        let key = (conn.0, dir as u8);
        let tail = self.send_tail.get(&key).copied().unwrap_or(self.now);
        if tail <= self.now {
            self.perform_close(src, conn);
        } else {
            self.queue.schedule(
                tail,
                NetEvent::Deferred {
                    src,
                    effect: Effect::Close { conn },
                },
            );
        }
    }

    fn perform_close(&mut self, src: Endpoint, conn: ConnId) {
        let Some(state) = self.conns.remove(&conn.0) else {
            return;
        };
        self.send_tail.remove(&(conn.0, 0));
        self.send_tail.remove(&(conn.0, 1));
        let (dir, dst) = if src == state.client {
            (0usize, state.server)
        } else {
            (1usize, state.client)
        };
        let tier = self.topo.tier_between(src.host, dst.host);
        self.account(tier, self.params.overhead);
        let when = state.free_at[dir].max(self.now) + self.params.link(tier).latency;
        self.queue.schedule(
            when,
            NetEvent::Conn {
                conn,
                dst,
                ev: ConnEvent::Closed(CloseReason::Normal),
            },
        );
    }

    fn transmission(&self, size: u64, tier: Tier) -> SimDuration {
        let bw = self.params.link(tier).bandwidth.max(1);
        SimDuration::from_nanos(size.saturating_mul(1_000_000_000) / bw)
    }

    fn account(&mut self, tier: Tier, bytes: u64) {
        self.metrics
            .inc(&format!("net.bytes.{}", tier.name()), bytes);
        self.metrics.inc(&format!("net.msgs.{}", tier.name()), 1);
    }

    fn apply_effects(&mut self, src: Endpoint, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Datagram { dst, payload } => {
                    let tier = self.topo.tier_between(src.host, dst.host);
                    let size = payload.len() as u64 + self.params.overhead;
                    self.account(tier, size);
                    let loss = self.params.link(tier).datagram_loss;
                    if loss > 0.0 && self.rng.gen_bool(loss) {
                        self.metrics.inc("net.dgrams_lost", 1);
                        continue;
                    }
                    let delay = self.params.link(tier).latency + self.transmission(size, tier);
                    self.queue
                        .schedule(self.now + delay, NetEvent::Datagram { src, dst, payload });
                }
                Effect::Open { conn, dst } => {
                    let tier = self.topo.tier_between(src.host, dst.host);
                    let lat = self.params.link(tier).latency;
                    self.account(tier, self.params.overhead);
                    if !self.host_up[dst.host.0 as usize] {
                        // No one answers the SYN: time out.
                        self.queue.schedule(
                            self.now + self.params.connect_timeout,
                            NetEvent::Conn {
                                conn,
                                dst: src,
                                ev: ConnEvent::Closed(CloseReason::Timeout),
                            },
                        );
                        continue;
                    }
                    if !self.services.contains_key(&(dst.host.0, dst.port)) {
                        // RST: one round trip.
                        self.queue.schedule(
                            self.now + lat * 2,
                            NetEvent::Conn {
                                conn,
                                dst: src,
                                ev: ConnEvent::Closed(CloseReason::Refused),
                            },
                        );
                        continue;
                    }
                    // Data sent before the handshake completes queues
                    // behind the SYN: the client→server direction is
                    // busy until the SYN has arrived.
                    self.conns.insert(
                        conn.0,
                        ConnState {
                            client: src,
                            server: dst,
                            free_at: [self.now + lat, self.now],
                        },
                    );
                    self.queue.schedule(
                        self.now + lat,
                        NetEvent::Conn {
                            conn,
                            dst,
                            ev: ConnEvent::Incoming { from: src },
                        },
                    );
                }
                Effect::Send { conn, msg } => {
                    self.enqueue_stream_send(src, conn, msg, SimDuration::ZERO);
                }
                Effect::Close { conn } => {
                    self.enqueue_close(src, conn);
                }
                Effect::Timer { id, delay, token } => {
                    self.queue.schedule(
                        self.now + delay,
                        NetEvent::Timer {
                            dst: src,
                            id,
                            token,
                            epoch: self.host_epoch[src.host.0 as usize],
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id.0);
                }
                Effect::DeferredSend { conn, msg, delay } => {
                    self.enqueue_stream_send(src, conn, msg, delay);
                }
                Effect::DeferredDatagram {
                    dst,
                    payload,
                    delay,
                } => {
                    self.queue.schedule(
                        self.now + delay,
                        NetEvent::Deferred {
                            src,
                            effect: Effect::Datagram { dst, payload },
                        },
                    );
                }
            }
        }
    }

    fn handle(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Datagram { src, dst, payload } => {
                if !self.host_up[dst.host.0 as usize] {
                    self.metrics.inc("net.dgrams_dropped_down", 1);
                    return;
                }
                if !self.services.contains_key(&(dst.host.0, dst.port)) {
                    self.metrics.inc("net.dgrams_no_listener", 1);
                    return;
                }
                self.dispatch(dst, |s, ctx| s.on_datagram(ctx, src, payload));
            }
            NetEvent::Conn { conn, dst, ev } => {
                if !self.host_up[dst.host.0 as usize] {
                    // In-flight delivery to a dead host evaporates; the
                    // peer was (or will be) notified by crash handling.
                    return;
                }
                if let ConnEvent::Incoming { from } = ev {
                    // Client may have vanished meanwhile (crash cleanup
                    // removes the connection state).
                    if !self.conns.contains_key(&conn.0) {
                        return;
                    }
                    if !self.services.contains_key(&(dst.host.0, dst.port)) {
                        // Listener disappeared between SYN and delivery.
                        let tier = self.topo.tier_between(dst.host, from.host);
                        let lat = self.params.link(tier).latency;
                        self.conns.remove(&conn.0);
                        self.queue.schedule(
                            self.now + lat,
                            NetEvent::Conn {
                                conn,
                                dst: from,
                                ev: ConnEvent::Closed(CloseReason::Refused),
                            },
                        );
                        return;
                    }
                    // Schedule Opened to the client before the server
                    // handler runs, so Opened always precedes any reply
                    // the server sends at the same instant.
                    let tier = self.topo.tier_between(dst.host, from.host);
                    let lat = self.params.link(tier).latency;
                    self.queue.schedule(
                        self.now + lat,
                        NetEvent::Conn {
                            conn,
                            dst: from,
                            ev: ConnEvent::Opened,
                        },
                    );
                    self.dispatch(dst, move |s, ctx| {
                        s.on_conn_event(ctx, conn, ConnEvent::Incoming { from })
                    });
                    return;
                }
                if matches!(ev, ConnEvent::Closed(_)) {
                    self.conns.remove(&conn.0);
                    self.send_tail.remove(&(conn.0, 0));
                    self.send_tail.remove(&(conn.0, 1));
                }
                self.dispatch(dst, move |s, ctx| s.on_conn_event(ctx, conn, ev));
            }
            NetEvent::Timer {
                dst,
                id,
                token,
                epoch,
            } => {
                if self.cancelled.remove(&id.0) {
                    return;
                }
                if epoch != self.host_epoch[dst.host.0 as usize]
                    || !self.host_up[dst.host.0 as usize]
                {
                    return;
                }
                self.dispatch(dst, move |s, ctx| s.on_timer(ctx, token));
            }
            NetEvent::Crash(h) => self.crash_now(h),
            NetEvent::Recover(h) => self.recover_now(h),
            NetEvent::Deferred { src, effect } => {
                // The sending host may have crashed during the processing
                // delay; its output dies with it.
                if !self.host_up[src.host.0 as usize] {
                    return;
                }
                // Perform directly: re-entering the queueing path would
                // see this message's own tail entry and reschedule it
                // behind later output.
                match effect {
                    Effect::Send { conn, msg } => self.perform_stream_send(src, conn, msg),
                    Effect::Close { conn } => self.perform_close(src, conn),
                    other => self.apply_effects(src, vec![other]),
                }
            }
        }
    }

    fn crash_now(&mut self, host: HostId) {
        let idx = host.0 as usize;
        if !self.host_up[idx] {
            return;
        }
        self.host_up[idx] = false;
        self.host_epoch[idx] = self.host_epoch[idx].wrapping_add(1);
        self.metrics.inc("net.host_crashes", 1);

        // Reset every connection touching the host; notify live peers.
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.client.host == host || c.server.host == host)
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            let state = self.conns.remove(&id).expect("conn disappeared");
            self.send_tail.remove(&(id, 0));
            self.send_tail.remove(&(id, 1));
            let peer = if state.client.host == host {
                state.server
            } else {
                state.client
            };
            let tier = self.topo.tier_between(host, peer.host);
            let lat = self.params.link(tier).latency;
            self.queue.schedule(
                self.now + lat,
                NetEvent::Conn {
                    conn: ConnId(id),
                    dst: peer,
                    ev: ConnEvent::Closed(CloseReason::Reset),
                },
            );
        }

        // Tell the services; no ctx — a dead host cannot act.
        let keys: Vec<(u32, u16)> = self
            .services
            .range((host.0, 0)..=(host.0, u16::MAX))
            .map(|(&k, _)| k)
            .collect();
        let now = self.now;
        for key in keys {
            if let Some(slot) = self.services.get_mut(&key) {
                if let Some(s) = slot.service.as_mut() {
                    s.on_crash(now);
                }
            }
        }
    }

    fn recover_now(&mut self, host: HostId) {
        let idx = host.0 as usize;
        if self.host_up[idx] {
            return;
        }
        self.host_up[idx] = true;
        self.metrics.inc("net.host_recoveries", 1);
        let keys: Vec<(u32, u16)> = self
            .services
            .range((host.0, 0)..=(host.0, u16::MAX))
            .map(|(&k, _)| k)
            .collect();
        for (h, p) in keys {
            self.dispatch(Endpoint::new(HostId(h), p), |s, ctx| s.on_restart(ctx));
        }
    }
}

/// The deterministic world *is* a transport: the trait methods forward
/// to the inherent ones, so installing a deployment through
/// `&mut dyn Transport` behaves byte-for-byte like calling [`World`]
/// directly.
impl Transport for World {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn add_service_boxed(&mut self, host: HostId, port: u16, service: Box<dyn Service>) {
        World::add_service_boxed(self, host, port, service);
    }

    fn start(&mut self) {
        World::start(self);
    }

    fn run_for(&mut self, d: SimDuration) {
        World::run_for(self, d);
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_service_any;
    use crate::ports;
    use crate::topology::TopologyBuilder;

    /// Echo server over streams: replies to each message, then closes
    /// when the client closes.
    struct Echo;
    impl Service for Echo {
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
            if let ConnEvent::Msg(m) = ev {
                ctx.send(conn, m);
            }
        }
        impl_service_any!();
    }

    /// Scripted client: connects, sends, records replies and timing.
    struct Client {
        server: Endpoint,
        conn: Option<ConnId>,
        replies: Vec<Vec<u8>>,
        opened_at: Option<SimTime>,
        closed: Option<CloseReason>,
        payload: Vec<u8>,
    }
    impl Client {
        fn new(server: Endpoint, payload: Vec<u8>) -> Self {
            Client {
                server,
                conn: None,
                replies: Vec::new(),
                opened_at: None,
                closed: None,
                payload,
            }
        }
    }
    impl Service for Client {
        fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
            let c = ctx.connect(self.server);
            ctx.send(c, self.payload.clone());
            self.conn = Some(c);
        }
        fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _conn: ConnId, ev: ConnEvent) {
            match ev {
                ConnEvent::Opened => self.opened_at = Some(ctx.now()),
                ConnEvent::Msg(m) => {
                    self.replies.push(m);
                    ctx.close(self.conn.unwrap());
                }
                ConnEvent::Closed(r) => self.closed = Some(r),
                ConnEvent::Incoming { .. } => unreachable!("client never listens"),
            }
        }
        impl_service_any!();
    }

    fn world_two_sites() -> (World, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let r = b.region("eu");
        let c = b.country(r, "nl");
        let s1 = b.site(c, "vu");
        let s2 = b.site(c, "uva");
        let a = b.host(s1, "a");
        let z = b.host(s2, "z");
        (World::new(b.build(), NetParams::default(), 7), a, z)
    }

    #[test]
    fn stream_round_trip_and_close() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"hi".to_vec()),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.replies, vec![b"hi".to_vec()]);
        assert!(c.opened_at.is_some());
        // Country-tier RTT is 10ms, so the handshake completes at >= 10ms.
        assert!(c.opened_at.unwrap() >= SimTime::from_millis(10));
    }

    #[test]
    fn connect_to_missing_listener_is_refused() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Refused));
        assert!(c.replies.is_empty());
    }

    #[test]
    fn connect_to_down_host_times_out() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.crash_host(z);
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Timeout));
        assert!(w.now() >= SimTime::ZERO + NetParams::default().connect_timeout);
    }

    #[test]
    fn crash_resets_open_connections() {
        let (mut w, a, z) = world_two_sites();
        // An echo server that never replies keeps the connection open.
        struct Sink;
        impl Service for Sink {
            impl_service_any!();
        }
        w.add_service(z, ports::DRIVER, Sink);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), b"x".to_vec()),
        );
        w.start();
        w.run_for(SimDuration::from_millis(100));
        w.crash_host(z);
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.closed, Some(CloseReason::Reset));
    }

    #[test]
    fn bytes_accounted_to_correct_tier() {
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), vec![0u8; 1000]),
        );
        w.start();
        w.run_to_quiescence();
        // a and z are in different sites of one country: country tier.
        assert!(w.metrics().counter("net.bytes.country") >= 2000);
        assert_eq!(w.metrics().counter("net.bytes.world"), 0);
        assert_eq!(w.metrics().counter("net.bytes.site"), 0);
    }

    #[test]
    fn latency_scales_with_tier() {
        // Same experiment at two distances; the farther client must see a
        // strictly later reply.
        let mut b = TopologyBuilder::new();
        let eu = b.region("eu");
        let na = b.region("na");
        let nl = b.country(eu, "nl");
        let us = b.country(na, "us");
        let vu = b.site(nl, "vu");
        let mit = b.site(us, "mit");
        let server = b.host(vu, "server");
        let near = b.host(vu, "near");
        let far = b.host(mit, "far");
        let mut w = World::new(b.build(), NetParams::default(), 1);
        w.add_service(server, ports::DRIVER, Echo);
        let sep = Endpoint::new(server, ports::DRIVER);
        w.add_service(near, ports::DRIVER, Client::new(sep, b"p".to_vec()));
        w.add_service(far, ports::DRIVER, Client::new(sep, b"p".to_vec()));
        w.start();
        w.run_to_quiescence();
        let t_near = w
            .service::<Client>(near, ports::DRIVER)
            .unwrap()
            .opened_at
            .unwrap();
        let t_far = w
            .service::<Client>(far, ports::DRIVER)
            .unwrap()
            .opened_at
            .unwrap();
        assert!(
            t_far.as_nanos() > t_near.as_nanos() * 10,
            "far {t_far}, near {t_near}"
        );
    }

    #[test]
    fn datagram_loss_is_applied() {
        let (mut w_lossy, a, z) = {
            let mut b = TopologyBuilder::new();
            let r = b.region("eu");
            let c = b.country(r, "nl");
            let s1 = b.site(c, "vu");
            let s2 = b.site(c, "uva");
            let a = b.host(s1, "a");
            let z = b.host(s2, "z");
            (
                World::new(b.build(), NetParams::default().with_datagram_loss(1.0), 7),
                a,
                z,
            )
        };
        struct Burst {
            dst: Endpoint,
        }
        impl Service for Burst {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                for _ in 0..10 {
                    ctx.send_datagram(self.dst, vec![1, 2, 3]);
                }
            }
            impl_service_any!();
        }
        struct Count {
            n: u32,
        }
        impl Service for Count {
            fn on_datagram(&mut self, _ctx: &mut ServiceCtx<'_>, _f: Endpoint, _p: Vec<u8>) {
                self.n += 1;
            }
            impl_service_any!();
        }
        w_lossy.add_service(z, ports::DRIVER, Count { n: 0 });
        w_lossy.add_service(
            a,
            ports::DRIVER,
            Burst {
                dst: Endpoint::new(z, ports::DRIVER),
            },
        );
        w_lossy.start();
        w_lossy.run_to_quiescence();
        assert_eq!(w_lossy.service::<Count>(z, ports::DRIVER).unwrap().n, 0);
        assert_eq!(w_lossy.metrics().counter("net.dgrams_lost"), 10);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
            cancelled_id: Option<TimerId>,
        }
        impl Service for Timed {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let id = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                self.cancelled_id = Some(id);
            }
            fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    ctx.cancel_timer(self.cancelled_id.unwrap());
                }
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Timed {
                fired: vec![],
                cancelled_id: None,
            },
        );
        w.start();
        w.run_to_quiescence();
        assert_eq!(
            w.service::<Timed>(a, ports::DRIVER).unwrap().fired,
            vec![1, 3]
        );
    }

    #[test]
    fn crash_drops_timers_and_restart_runs() {
        struct Daemon {
            fired: u32,
            restarted: u32,
            crashed: u32,
        }
        impl Service for Daemon {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut ServiceCtx<'_>, _t: u64) {
                self.fired += 1;
            }
            fn on_crash(&mut self, _now: SimTime) {
                self.crashed += 1;
            }
            fn on_restart(&mut self, _ctx: &mut ServiceCtx<'_>) {
                self.restarted += 1;
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(
            a,
            ports::DRIVER,
            Daemon {
                fired: 0,
                restarted: 0,
                crashed: 0,
            },
        );
        w.start();
        w.run_for(SimDuration::from_secs(1));
        w.crash_host(a);
        w.recover_host(a);
        w.run_to_quiescence();
        let d = w.service::<Daemon>(a, ports::DRIVER).unwrap();
        assert_eq!(d.fired, 0, "timer must not survive the crash");
        assert_eq!(d.crashed, 1);
        assert_eq!(d.restarted, 1);
    }

    #[test]
    fn stable_storage_survives_crash() {
        struct Persist {
            loaded: Option<Vec<u8>>,
        }
        impl Service for Persist {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.stable_put("state/x", vec![42]);
            }
            fn on_restart(&mut self, ctx: &mut ServiceCtx<'_>) {
                self.loaded = ctx.stable_get("state/x").cloned();
                assert_eq!(ctx.stable_keys("state/"), vec!["state/x".to_owned()]);
            }
            impl_service_any!();
        }
        let (mut w, a, _) = world_two_sites();
        w.add_service(a, ports::DRIVER, Persist { loaded: None });
        w.start();
        w.run_for(SimDuration::from_millis(1));
        w.crash_host(a);
        w.recover_host(a);
        assert_eq!(
            w.service::<Persist>(a, ports::DRIVER).unwrap().loaded,
            Some(vec![42])
        );
    }

    #[test]
    fn large_transfer_is_bandwidth_limited() {
        // 1 MB across the country tier at 4 MB/s must take >= 250 ms.
        let (mut w, a, z) = world_two_sites();
        w.add_service(z, ports::DRIVER, Echo);
        w.add_service(
            a,
            ports::DRIVER,
            Client::new(Endpoint::new(z, ports::DRIVER), vec![0u8; 1_000_000]),
        );
        w.start();
        w.run_to_quiescence();
        let c = w.service::<Client>(a, ports::DRIVER).unwrap();
        assert_eq!(c.replies.len(), 1);
        // Request and echo each pay ~250ms serialization.
        assert!(w.now() >= SimTime::from_millis(500), "now {}", w.now());
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let (mut w, a, z) = {
                let mut b = TopologyBuilder::new();
                let r = b.region("eu");
                let c = b.country(r, "nl");
                let s1 = b.site(c, "vu");
                let s2 = b.site(c, "uva");
                let a = b.host(s1, "a");
                let z = b.host(s2, "z");
                (
                    World::new(
                        b.build(),
                        NetParams::default().with_datagram_loss(0.3),
                        seed,
                    ),
                    a,
                    z,
                )
            };
            struct Burst {
                dst: Endpoint,
            }
            impl Service for Burst {
                fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                    for i in 0..100u8 {
                        ctx.send_datagram(self.dst, vec![i]);
                    }
                }
                impl_service_any!();
            }
            struct Count {
                got: Vec<u8>,
            }
            impl Service for Count {
                fn on_datagram(&mut self, _c: &mut ServiceCtx<'_>, _f: Endpoint, p: Vec<u8>) {
                    self.got.push(p[0]);
                }
                impl_service_any!();
            }
            w.add_service(z, ports::DRIVER, Count { got: vec![] });
            w.add_service(
                a,
                ports::DRIVER,
                Burst {
                    dst: Endpoint::new(z, ports::DRIVER),
                },
            );
            w.start();
            w.run_to_quiescence();
            w.service::<Count>(z, ports::DRIVER).unwrap().got.clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6)); // loss pattern differs across seeds
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let (mut w, _, _) = world_two_sites();
        w.start();
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    #[test]
    fn deferred_send_charges_processing_delay() {
        let (mut w, a, z) = world_two_sites();
        struct SlowSender {
            dst: Endpoint,
        }
        impl Service for SlowSender {
            fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
                let c = ctx.connect(self.dst);
                ctx.send_delayed(c, b"slow".to_vec(), SimDuration::from_millis(50));
            }
            impl_service_any!();
        }
        struct Recorder {
            got_at: Option<SimTime>,
        }
        impl Service for Recorder {
            fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, _c: ConnId, ev: ConnEvent) {
                if let ConnEvent::Msg(_) = ev {
                    self.got_at = Some(ctx.now());
                }
            }
            impl_service_any!();
        }
        w.add_service(z, ports::DRIVER, Recorder { got_at: None });
        w.add_service(
            a,
            ports::DRIVER,
            SlowSender {
                dst: Endpoint::new(z, ports::DRIVER),
            },
        );
        w.start();
        w.run_to_quiescence();
        let got = w
            .service::<Recorder>(z, ports::DRIVER)
            .unwrap()
            .got_at
            .unwrap();
        // 50 ms processing + 5 ms country latency at minimum.
        assert!(got >= SimTime::from_millis(55), "got {got}");
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_endpoint_panics() {
        let (mut w, a, _) = world_two_sites();
        w.add_service(a, 1, Echo);
        w.add_service(a, 1, Echo);
    }
}
