//! Scenario sweep bench: the full policy × propagation-mode ×
//! DSO-class experiment matrix at the reduced `bench-smoke` scale.
//!
//! Every cell's world-level measurements are printed as a markdown
//! table and written to `BENCH_scenario_sweep.json`, so the whole
//! scenario space is machine-readable across revisions. The run *fails*
//! on invariant violations ([`check_sweep_invariants`]): any stale
//! read, any cell without read traffic, or delta propagation losing to
//! state propagation on the write-heavy class at 8+ slaves — CI's
//! `bench-smoke` job relies on that to gate regressions. It also fails
//! the trajectory gate ([`compare_trajectory`]) when any cell's grp
//! bytes or p99 regress >10% against the committed JSON baseline
//! (bypass with `GLOBE_SWEEP_BASELINE=skip` for intentional shifts and
//! commit the regenerated file).

use criterion::{criterion_group, criterion_main, Criterion};
use globe_bench::sweep::{mode_label, SWEEP_MODES, SWEEP_TABLE_HEADERS};
use globe_bench::{
    check_sweep_invariants, compare_trajectory, print_table, sweep_cell, sweep_json,
    sweep_table_rows, CellReport, DsoClass, SweepSpec,
};
use globe_workloads::ScenarioPolicy;

fn bench_scenario_sweep(c: &mut Criterion) {
    let spec = SweepSpec::default();
    let mut reports: Vec<CellReport> = Vec::new();
    let mut g = c.benchmark_group("scenario_sweep");
    for class in DsoClass::ALL {
        for policy in ScenarioPolicy::ALL {
            for mode in SWEEP_MODES {
                let mut last: Option<CellReport> = None;
                g.bench_function(
                    format!("{}/{}/{}", class.name(), policy.name(), mode_label(mode)),
                    |b| b.iter(|| last = Some(sweep_cell(policy, mode, class, &spec))),
                );
                reports.push(last.expect("bench ran at least once"));
            }
        }
    }
    g.finish();

    print_table(
        "scenario sweep — policy × propagation mode × DSO class",
        &SWEEP_TABLE_HEADERS,
        &sweep_table_rows(&reports),
    );

    let json = sweep_json(&reports);
    // Anchor at the workspace root regardless of cargo's bench CWD.
    let path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../BENCH_scenario_sweep.json"),
        Err(_) => "BENCH_scenario_sweep.json".to_owned(),
    };
    // The committed JSON is the previous revision's trajectory point.
    let baseline = std::fs::read_to_string(&path).ok();

    let violations = check_sweep_invariants(&reports);
    assert!(
        violations.is_empty(),
        "scenario sweep invariant violations:\n  {}",
        violations.join("\n  ")
    );

    // Trajectory gate: fail on a >10% regression in grp bytes or p99
    // for any cell vs the committed baseline. GLOBE_SWEEP_BASELINE=skip
    // bypasses it for intentional shifts (commit the regenerated JSON
    // as the new baseline afterwards). The baseline file is only
    // overwritten when the gate passes (or is skipped): a failing run
    // must not ratchet its own regressed numbers into the baseline a
    // rerun would compare against.
    if std::env::var("GLOBE_SWEEP_BASELINE").as_deref() == Ok("skip") {
        eprintln!("trajectory gate skipped (GLOBE_SWEEP_BASELINE=skip)");
    } else if let Some(baseline) = baseline {
        let regressions = compare_trajectory(&baseline, &json)
            .expect("committed sweep baseline must stay parseable");
        if !regressions.is_empty() {
            let rejected = format!("{path}.rejected");
            if let Err(e) = std::fs::write(&rejected, &json) {
                eprintln!("could not write {rejected}: {e}");
            }
            panic!(
                "scenario sweep trajectory regressions vs committed baseline \
                 (fresh matrix at {rejected}):\n  {}",
                regressions.join("\n  ")
            );
        }
        println!(
            "trajectory gate: {} cells within tolerance of the committed baseline",
            reports.len()
        );
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_scenario_sweep);
criterion_main!(benches);
