//! The Globe run-time system embedded in every GDN process.
//!
//! The runtime is what the paper's §3.4 calls "the run-time system": it
//! owns binding (`bind(oid)` → GLS lookup → nearest contact address →
//! implementation loading → local-representative installation), the
//! communication subobject (pooled, gTLS-secured stream connections
//! carrying GRP frames), dispatch of invocations into replication
//! subobjects, the write-access gate of §6.1, and replica persistence
//! for Globe Object Servers.
//!
//! It is a library embedded in a [`globe_net::Service`] (object server,
//! GDN-HTTPD, proxy, moderator tool): the owner routes datagrams,
//! connection events and timers through
//! [`GlobeRuntime::handle_datagram`] /
//! [`GlobeRuntime::handle_conn_event`] / [`GlobeRuntime::handle_timer`]
//! and drains [`RtEvent`]s after every call.
//!
//! Connections carry two kinds of records, distinguished by a one-byte
//! envelope: GRP frames (replication traffic) and *application* frames —
//! the control protocols of owners, e.g. moderator commands to an
//! object server — so one secured connection pool serves both.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use globe_crypto::cert::Role;
use globe_crypto::channel::SecureChannels;
use globe_crypto::gtls::{TlsConfig, TlsEvent};
use globe_gls::{
    ContactAddress, GlsClient, GlsDeployment, GlsError, GlsEvent, Level, ObjectId, ADDR_FLAG_WRITES,
};
use globe_net::{
    ns_token, owns_token, token_id, ConnEvent, ConnId, Endpoint, HostId, Payload, ServiceCtx,
    WireReader, WireWriter,
};
use globe_sim::optrace::{self, OpRecord, ReplicaRole};
use globe_sim::{SimDuration, SimTime, TraceLevel};

use crate::grp::{GrpBody, GrpMsg, PropagationMode, RoleSpec};
use crate::health::{Bucket, HealthLedger};
use crate::interface::{BoundObject, DsoInterface, InterfaceError};
use crate::object::{Invocation, MethodKind, SemanticsObject};
use crate::protocols::{CacheProxy, ForwardingProxy};
use crate::replication::{
    HealthEvent, InvokeError, Peer, ReplCtx, ReplEffects, ReplicationSubobject,
};
use crate::repository::{ImplId, ImplRepository};

/// Record envelope: a GRP frame follows.
const ENV_GRP: u8 = 0x47;
/// Record envelope: an owner-level application frame follows.
const ENV_APP: u8 = 0x41;

/// Why a bind failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindError {
    /// The object is not registered anywhere.
    NotFound,
    /// The location service failed (timeout / inconsistency).
    Gls(GlsError),
    /// The contact address names an implementation this host's
    /// repository does not have.
    UnknownImpl(u16),
    /// The lookup returned no usable address.
    NoAddress,
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::NotFound => write!(f, "object not registered"),
            BindError::Gls(e) => write!(f, "location service: {e}"),
            BindError::UnknownImpl(i) => write!(f, "implementation {i} not in repository"),
            BindError::NoAddress => write!(f, "no usable contact address"),
        }
    }
}

impl std::error::Error for BindError {}

/// What a successful bind yields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindInfo {
    /// The bound object.
    pub oid: ObjectId,
    /// The replication protocol of the installed representative.
    pub protocol: u16,
    /// The implementation (class) of the installed representative.
    pub impl_id: ImplId,
}

impl BindInfo {
    /// Produces the typed handle of the redesigned bind flow, checking
    /// that the installed representative's class matches interface `I`.
    pub fn typed<I: DsoInterface>(&self) -> Result<BoundObject<I>, InterfaceError> {
        if self.impl_id != I::IMPL {
            return Err(InterfaceError::ClassMismatch {
                expected: I::IMPL,
                found: self.impl_id,
            });
        }
        Ok(BoundObject::new(self.oid, self.protocol))
    }
}

/// A bind submission: which object to bind and the caller's correlation
/// token, completed by [`RtEvent::BindDone`] whose [`BindInfo`] turns
/// into a typed [`BoundObject`] via [`BindInfo::typed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BindRequest {
    /// The object to bind to.
    pub oid: ObjectId,
    /// Caller's correlation token, echoed in the completion event.
    pub token: u64,
}

impl BindRequest {
    /// Creates a bind request.
    pub fn new(oid: ObjectId, token: u64) -> BindRequest {
        BindRequest { oid, token }
    }
}

/// Completion events drained via [`GlobeRuntime::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtEvent {
    /// A [`GlobeRuntime::bind`] finished.
    BindDone {
        /// Caller's correlation token.
        token: u64,
        /// The bound object or the failure.
        result: Result<BindInfo, BindError>,
    },
    /// A [`GlobeRuntime::invoke`] finished.
    InvokeDone {
        /// Caller's correlation token.
        token: u64,
        /// Marshalled result or the failure.
        result: Result<Vec<u8>, InvokeError>,
        /// The remote replica that served (or failed) the invocation,
        /// when it was forwarded; `None` for locally served calls. The
        /// client layer reports this — with its health bucket — in
        /// [`OpDone`](crate::client::OpDone).
        replica: Option<Endpoint>,
    },
    /// A [`GlobeRuntime::register`] finished.
    Registered {
        /// Caller's correlation token.
        token: u64,
        /// GLS outcome.
        result: Result<(), GlsError>,
    },
    /// A [`GlobeRuntime::deregister`] finished.
    Deregistered {
        /// Caller's correlation token.
        token: u64,
        /// GLS outcome.
        result: Result<(), GlsError>,
    },
}

/// Result of routing a connection event through the runtime.
#[derive(Debug)]
pub enum RtConn {
    /// The event did not belong to a runtime connection; here it is
    /// back.
    NotMine(ConnEvent),
    /// Handled internally.
    Consumed,
    /// The connection carried owner-level application frames (decrypted
    /// and ready to parse). The peer's authenticated role, if any, is
    /// attached.
    AppData {
        /// Decrypted application frames, in order.
        frames: Vec<Vec<u8>>,
        /// The authenticated peer role (None for anonymous peers).
        peer_role: Option<Role>,
    },
}

/// Runtime configuration.
pub struct RuntimeConfig {
    /// The port this runtime's local representatives are contactable on
    /// (its GRP listener, usually the owner service's own port).
    pub grp_port: u16,
    /// TLS configuration for incoming connections.
    pub tls_server: TlsConfig,
    /// TLS configuration for outgoing connections.
    pub tls_client: TlsConfig,
    /// Accept incoming connections (object servers yes; pure clients
    /// such as HTTPDs and moderator tools no).
    pub accept_incoming: bool,
    /// TTL used by cache-proxy representatives installed at bind time.
    pub cache_ttl: SimDuration,
    /// Roles allowed to perform state-modifying invocations
    /// (paper §6.1: moderators, and GDN hosts acting in protocols).
    pub writer_roles: Vec<Role>,
    /// Accept state-modifying traffic from anonymous peers — the
    /// paper's June-2000 first version, which "will not actually
    /// implement any security measures". Only sensible with
    /// [`Mode::Null`](globe_crypto::gtls::Mode) channels.
    pub open_writes: bool,
    /// Persist replicas to stable storage (object servers).
    pub persist: bool,
}

impl RuntimeConfig {
    /// Standard writer set: moderators, administrators and GDN hosts.
    pub fn default_writer_roles() -> Vec<Role> {
        vec![Role::Moderator, Role::Administrator, Role::Host]
    }
}

struct LocalRep {
    impl_id: ImplId,
    sem: Option<Box<dyn SemanticsObject>>,
    repl: Box<dyn ReplicationSubobject>,
    version: u64,
    /// Version lineage of the copy (see [`ReplCtx::copy_epoch`]);
    /// persisted with the blob and preserved across proxy re-binds.
    epoch: u64,
    /// State possibly changed since the last persistence flush.
    needs_persist: bool,
    /// The change must checkpoint at the next flush (writes, installs);
    /// delta-fed changes may defer up to [`DELTA_CHECKPOINT_STRIDE`]
    /// versions.
    persist_eager: bool,
    /// Version of the last persisted blob.
    persisted_version: u64,
    /// `state_digest` of the last persisted blob.
    persisted_digest: Option<u64>,
    /// The pending deferral was already counted in
    /// `rts.persist.deferred` (flushes rescan deferred entries).
    deferred_counted: bool,
}

impl LocalRep {
    fn new(
        impl_id: ImplId,
        sem: Option<Box<dyn SemanticsObject>>,
        repl: Box<dyn ReplicationSubobject>,
        version: u64,
    ) -> LocalRep {
        LocalRep {
            impl_id,
            sem,
            repl,
            version,
            epoch: 0,
            needs_persist: false,
            persist_eager: false,
            persisted_version: 0,
            persisted_digest: None,
            deferred_counted: false,
        }
    }
}

/// A delta-fed replica checkpoints to stable storage at most this many
/// versions behind its in-memory state: its copy is always re-derivable
/// from the master (it re-announces on restart and deltas make catch-up
/// cheap), so eager durability buys little and costs a `stable_put`
/// per write.
const DELTA_CHECKPOINT_STRIDE: u64 = 8;

/// Frames queued on a connection awaiting secure-channel establishment
/// beyond this cap are dropped (counted as `rts.backlog_dropped`) — a
/// peer that never completes its handshake must not grow an unbounded
/// buffer.
const MAX_CONN_BACKLOG: usize = 64;

struct ConnInfo {
    peer: Option<Endpoint>,
    established: bool,
    /// Plaintext frames awaiting channel establishment; `Payload` so a
    /// multicast frame backlogged on several connections stays shared.
    backlog: Vec<Payload>,
}

struct LoadWait {
    token: u64,
    oid: u128,
    choice: BindChoice,
}

#[derive(Clone, Debug)]
struct BindChoice {
    impl_id: u16,
    protocol: u16,
    /// Read replicas, nearest first.
    reads: Vec<Endpoint>,
    write: Endpoint,
}

/// Most contact addresses the runtime remembers per object for
/// candidate-set enrichment (see `GlobeRuntime::known_eps`).
const KNOWN_EPS_CAP: usize = 6;

const K_BIND: u64 = 1 << 40;
const K_REG: u64 = 2 << 40;
const K_DEREG: u64 = 3 << 40;
const K_ENRICH: u64 = 4 << 40;
const K_MASK: u64 = 0xFF << 40;

/// The Globe run-time system (see module docs).
pub struct GlobeRuntime {
    cfg: RuntimeConfig,
    repo: Arc<ImplRepository>,
    gls: GlsClient,
    secure: SecureChannels,
    my_host: HostId,
    ns: u16,
    out_conns: BTreeMap<Endpoint, u64>,
    conn_info: BTreeMap<u64, ConnInfo>,
    lrs: BTreeMap<u128, LocalRep>,
    /// Objects whose replicas have unflushed dirty state.
    dirty: BTreeSet<u128>,
    /// Which objects have messaged which peer endpoints — the interest
    /// index consulted on peer loss so only affected representatives
    /// get `on_peer_gone` (previously an O(objects) sweep).
    peer_interest: BTreeMap<Endpoint, BTreeSet<u128>>,
    binds: BTreeMap<u64, (u64, u128)>,
    /// In-flight background enrichment lookups (idx → object), fired
    /// when a bind installs a proxy with fewer than two candidates.
    enriches: BTreeMap<u64, u128>,
    next_bind: u64,
    regs: BTreeMap<u64, u64>,
    next_reg: u64,
    deregs: BTreeMap<u64, u64>,
    next_dereg: u64,
    load_waits: BTreeMap<u64, LoadWait>,
    next_load: u64,
    loaded: BTreeSet<u16>,
    repl_timers: BTreeMap<u64, (u128, u64)>,
    next_repl_timer: u64,
    /// Dispensed to [`ReplCtx`] epoch minting, one per dispatch.
    next_epoch_nonce: u64,
    /// The host-wide content-addressed chunk store, shared by every
    /// replica on this runtime: chunks common to several package
    /// versions (or several packages) are stored and transferred once.
    chunk_store: crate::chunks::ChunkStoreRef,
    /// Per-replica health observations, fed by every forwarded-attempt
    /// outcome; consulted when ranking bind candidates and rotating
    /// within a bound candidate set.
    health: HealthLedger,
    /// Every contact address a GLS lookup has returned for an object,
    /// capped per object. A locality lookup names only the nearest
    /// replica(s), so a first kill would leave nothing to rotate or
    /// hedge to; folding remembered addresses into the ranked set at
    /// bind time gives the candidate set a horizon wider than one
    /// lookup, and the health ledger keeps dead entries from holding
    /// traffic.
    known_eps: BTreeMap<u128, Vec<ContactAddress>>,
    events: Vec<RtEvent>,
}

impl GlobeRuntime {
    /// Creates a runtime for a service on `my_host`, using timer
    /// namespaces `ns`, `ns+1` and `ns+2`.
    pub fn new(
        cfg: RuntimeConfig,
        repo: Arc<ImplRepository>,
        gls_deploy: Arc<GlsDeployment>,
        my_host: HostId,
        ns: u16,
    ) -> GlobeRuntime {
        GlobeRuntime {
            gls: GlsClient::new(gls_deploy, my_host, ns),
            cfg,
            repo,
            secure: SecureChannels::new(),
            my_host,
            ns,
            out_conns: BTreeMap::new(),
            conn_info: BTreeMap::new(),
            lrs: BTreeMap::new(),
            dirty: BTreeSet::new(),
            peer_interest: BTreeMap::new(),
            binds: BTreeMap::new(),
            enriches: BTreeMap::new(),
            next_bind: 1,
            regs: BTreeMap::new(),
            next_reg: 1,
            deregs: BTreeMap::new(),
            next_dereg: 1,
            load_waits: BTreeMap::new(),
            next_load: 1,
            loaded: BTreeSet::new(),
            repl_timers: BTreeMap::new(),
            next_repl_timer: 1,
            next_epoch_nonce: 1,
            chunk_store: crate::chunks::new_store(),
            health: HealthLedger::new(),
            known_eps: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The per-replica health ledger (read-only; the runtime feeds it
    /// from attempt outcomes).
    pub fn health(&self) -> &HealthLedger {
        &self.health
    }

    /// The host-wide chunk store (tests / experiments inspect its
    /// residency and dedup counters).
    pub fn chunk_store(&self) -> &crate::chunks::ChunkStoreRef {
        &self.chunk_store
    }

    /// Whether this runtime accepts anonymous state-modifying traffic
    /// (the paper's unsecured first version).
    pub fn open_writes(&self) -> bool {
        self.cfg.open_writes
    }

    /// The GLS address-lease TTL of this deployment, if enabled.
    pub fn gls_address_ttl(&self) -> Option<SimDuration> {
        self.gls.deployment().address_ttl()
    }

    /// This runtime's GRP endpoint (what its replicas advertise).
    pub fn grp_endpoint(&self) -> Endpoint {
        Endpoint::new(self.my_host, self.cfg.grp_port)
    }

    /// Whether a local representative for `oid` is installed.
    pub fn is_bound(&self, oid: ObjectId) -> bool {
        self.lrs.contains_key(&oid.0)
    }

    /// The object ids of all installed local representatives.
    pub fn bound_objects(&self) -> Vec<ObjectId> {
        self.lrs.keys().map(|&k| ObjectId(k)).collect()
    }

    /// The implementation (class) of the installed local representative
    /// for `oid`, if any — what the client layer's bind-time class check
    /// compares against an interface's `IMPL`.
    pub fn bound_impl(&self, oid: ObjectId) -> Option<ImplId> {
        self.lrs.get(&oid.0).map(|lr| lr.impl_id)
    }

    /// The state version of a local replica (tests / experiments).
    pub fn replica_version(&self, oid: ObjectId) -> Option<u64> {
        self.lrs.get(&oid.0).map(|lr| lr.version)
    }

    /// The role the local representative's replication subobject is
    /// actually playing (tests / experiments): the way to observe that
    /// a scenario's propagation mode survived the control protocol and
    /// reached the spawned [`MasterReplica`](crate::MasterReplica).
    pub fn replica_role(&self, oid: ObjectId) -> Option<RoleSpec> {
        self.lrs.get(&oid.0).map(|lr| lr.repl.descriptor())
    }

    /// Submits a bind (paper §3.4); completes with
    /// [`RtEvent::BindDone`], whose [`BindInfo`] yields a typed
    /// [`BoundObject`] handle via [`BindInfo::typed`].
    pub fn submit_bind(&mut self, ctx: &mut ServiceCtx<'_>, req: BindRequest) {
        self.bind(ctx, req.oid, req.token);
    }

    /// The typed handle for an already-installed local representative,
    /// checked against interface `I` (the post-bind counterpart of
    /// [`BindInfo::typed`]).
    pub fn bound<I: DsoInterface>(&self, oid: ObjectId) -> Result<BoundObject<I>, InterfaceError> {
        let Some(lr) = self.lrs.get(&oid.0) else {
            return Err(InterfaceError::NotBound);
        };
        if lr.impl_id != I::IMPL {
            return Err(InterfaceError::ClassMismatch {
                expected: I::IMPL,
                found: lr.impl_id,
            });
        }
        Ok(BoundObject::new(oid, lr.repl.proto()))
    }

    /// Starts binding to `oid` (paper §3.4); completes with
    /// [`RtEvent::BindDone`] carrying `token`.
    pub fn bind(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        if let Some(lr) = self.lrs.get(&oid.0) {
            let info = BindInfo {
                oid,
                protocol: lr.repl.proto(),
                impl_id: lr.impl_id,
            };
            self.events.push(RtEvent::BindDone {
                token,
                result: Ok(info),
            });
            return;
        }
        let idx = self.next_bind;
        self.next_bind += 1;
        self.binds.insert(idx, (token, oid.0));
        self.gls.lookup(ctx, oid, K_BIND | idx);
        ctx.metrics().inc("rts.binds", 1);
    }

    /// Re-resolves `oid` against the GLS even though a local
    /// representative is installed — access points do this periodically
    /// to pick up newly created replicas, and on failover when the
    /// bound replica stops answering.
    ///
    /// Unlike unbind-then-bind, the installed representative keeps
    /// serving while the lookup is in flight, and when the fresh
    /// targets arrive the replacement *preserves the cached semantics
    /// state and version* (same class, proxy-grade representatives
    /// only). A warm TTL cache therefore survives the swap and its next
    /// refresh is a version-aware [`GrpBody::Refresh`] answered with a
    /// delta, not a full state transfer.
    pub fn rebind(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        if let Some(lr) = self.lrs.get(&oid.0) {
            if lr.repl.is_replica() {
                // Replica-grade representatives are authoritative; they
                // have nothing to re-resolve.
                let info = BindInfo {
                    oid,
                    protocol: lr.repl.proto(),
                    impl_id: lr.impl_id,
                };
                self.events.push(RtEvent::BindDone {
                    token,
                    result: Ok(info),
                });
                return;
            }
        }
        let idx = self.next_bind;
        self.next_bind += 1;
        self.binds.insert(idx, (token, oid.0));
        // A proxy with fewer than two candidates has nothing to rotate
        // or hedge to when its replica dies, so the refresh explores:
        // the lookup enters the GLS one level above the leaf, where
        // the random pointer descent samples a sibling subtree's
        // replica instead of re-answering with the nearest one.
        let thin = self
            .lrs
            .get(&oid.0)
            .map(|lr| lr.repl.targets().len() < 2)
            .unwrap_or(false);
        if thin {
            self.gls.lookup_above(ctx, oid, K_BIND | idx);
            ctx.metrics().inc("rts.health.explore_lookups", 1);
        } else {
            self.gls.lookup(ctx, oid, K_BIND | idx);
        }
        ctx.metrics().inc("rts.rebinds", 1);
    }

    /// The bound representative's candidate set: every remote endpoint
    /// it can direct invocations at, each with its current health
    /// bucket. Empty for unbound objects and for replica-grade
    /// representatives (which serve locally).
    pub fn candidate_set(&self, oid: ObjectId, now: SimTime) -> Vec<(Endpoint, Bucket)> {
        self.lrs
            .get(&oid.0)
            .map(|lr| {
                lr.repl
                    .targets()
                    .into_iter()
                    .map(|t| (t, self.health.bucket(t, now)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The candidate currently serving the bound representative's
    /// reads, if it forwards at all.
    pub fn current_candidate(&self, oid: ObjectId) -> Option<Endpoint> {
        self.lrs.get(&oid.0).and_then(|lr| lr.repl.current_target())
    }

    /// Rotates the bound representative's read target to the
    /// healthiest *other* candidate (health bucket, then observed
    /// latency, then distance) without any GLS traffic — the
    /// candidate-set counterpart of blind re-resolve. Returns the new
    /// target, or `None` when there is nothing to rotate to.
    pub fn rotate_candidate(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        oid: ObjectId,
    ) -> Option<Endpoint> {
        let now = ctx.now();
        let best = {
            let lr = self.lrs.get(&oid.0)?;
            let targets = lr.repl.targets();
            if targets.len() < 2 {
                return None;
            }
            let cur = lr.repl.current_target();
            targets
                .into_iter()
                .filter(|t| Some(*t) != cur)
                .min_by_key(|t| {
                    (
                        self.health.rank_key(*t, now),
                        ctx.topo().distance(self.my_host, t.host),
                        t.host.0,
                        t.port,
                    )
                })?
        };
        let lr = self.lrs.get_mut(&oid.0)?;
        if lr.repl.retarget(best) {
            ctx.metrics().inc("rts.health.rotations", 1);
            Some(best)
        } else {
            None
        }
    }

    /// Points the bound representative's reads at `ep` (the
    /// [`OpBuilder::prefer`](crate::client::OpBuilder::prefer) plumbing).
    /// Returns `false` when `ep` is not among its candidates.
    pub fn prefer_candidate(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        oid: ObjectId,
        ep: Endpoint,
    ) -> bool {
        let Some(lr) = self.lrs.get_mut(&oid.0) else {
            return false;
        };
        if lr.repl.retarget(ep) {
            ctx.metrics().inc("rts.health.prefers", 1);
            true
        } else {
            false
        }
    }

    /// Removes the local representative for `oid` (no GLS traffic; pair
    /// with [`GlobeRuntime::deregister`] for registered replicas).
    pub fn unbind(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId) {
        self.lrs.remove(&oid.0);
        self.dirty.remove(&oid.0);
        self.known_eps.remove(&oid.0);
        self.enriches.retain(|_, o| *o != oid.0);
        for interested in self.peer_interest.values_mut() {
            interested.remove(&oid.0);
        }
        if self.cfg.persist {
            ctx.stable_delete(&replica_key(oid.0));
        }
    }

    /// Invokes a marshalled method on the bound object; completes with
    /// [`RtEvent::InvokeDone`] carrying `token`.
    pub fn invoke(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, inv: Invocation, token: u64) {
        if !self.lrs.contains_key(&oid.0) {
            self.events.push(RtEvent::InvokeDone {
                token,
                result: Err(InvokeError::NotBound),
                replica: None,
            });
            return;
        }
        ctx.metrics().inc("rts.invocations", 1);
        self.with_lr(ctx, oid.0, |repl, c| repl.start_invocation(c, token, inv));
        self.flush_persistence(ctx);
    }

    /// Creates a replica-grade local representative (object servers call
    /// this on moderator commands; paper §6.1's "create first replica" /
    /// "bind to DSO, create replica" flow).
    pub fn create_replica(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        oid: ObjectId,
        impl_id: ImplId,
        protocol: u16,
        role: RoleSpec,
    ) -> Result<(), BindError> {
        let mut sem = self
            .repo
            .instantiate(impl_id)
            .ok_or(BindError::UnknownImpl(impl_id.0))?;
        sem.attach_chunk_store(&self.chunk_store);
        let repl = crate::protocols::spawn_replication(protocol, role);
        self.loaded.insert(impl_id.0);
        // A re-created replica must not inherit its predecessor's timers
        // (see finish_bind).
        self.repl_timers.retain(|_, (o, _)| *o != oid.0);
        self.lrs
            .insert(oid.0, LocalRep::new(impl_id, Some(sem), repl, 0));
        ctx.metrics().inc("rts.replicas_created", 1);
        self.with_lr(ctx, oid.0, |repl, c| repl.on_install(c));
        self.flush_persistence(ctx);
        Ok(())
    }

    /// Registers the local replica's contact address in the GLS;
    /// completes with [`RtEvent::Registered`] carrying `token`.
    pub fn register(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        let Some(addr) = self.contact_address(oid) else {
            self.events.push(RtEvent::Registered {
                token,
                result: Err(GlsError::NotFound),
            });
            return;
        };
        let idx = self.next_reg;
        self.next_reg += 1;
        self.regs.insert(idx, token);
        self.gls.insert(ctx, oid, addr, Level::Site, K_REG | idx);
    }

    /// Removes the local replica's contact address from the GLS;
    /// completes with [`RtEvent::Deregistered`] carrying `token`.
    pub fn deregister(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        let Some(addr) = self.contact_address(oid) else {
            self.events.push(RtEvent::Deregistered {
                token,
                result: Err(GlsError::NotFound),
            });
            return;
        };
        let idx = self.next_dereg;
        self.next_dereg += 1;
        self.deregs.insert(idx, token);
        self.gls.delete(ctx, oid, addr, Level::Site, K_DEREG | idx);
    }

    /// The contact address the local replica of `oid` advertises.
    pub fn contact_address(&self, oid: ObjectId) -> Option<ContactAddress> {
        let lr = self.lrs.get(&oid.0)?;
        let flags = if lr.repl.accepts_writes() {
            ADDR_FLAG_WRITES
        } else {
            0
        };
        Some(
            ContactAddress::new(self.grp_endpoint(), lr.repl.proto(), flags)
                .with_impl(lr.impl_id.0),
        )
    }

    /// Opens (or reuses) a secured application connection to a peer
    /// service that also speaks the runtime's record envelope (e.g. a
    /// moderator tool dialing an object server's control interface).
    pub fn open_app_conn(&mut self, ctx: &mut ServiceCtx<'_>, peer: Endpoint) -> ConnId {
        ConnId(self.conn_to(ctx, peer))
    }

    /// Sends an application frame on a runtime connection (queued until
    /// the secure channel is established).
    pub fn send_app(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, frame: &[u8]) {
        let mut enveloped = Vec::with_capacity(frame.len() + 1);
        enveloped.push(ENV_APP);
        enveloped.extend_from_slice(frame);
        self.send_on_conn(ctx, conn.0, enveloped.into());
    }

    /// The authenticated role of a connection's peer, if any.
    pub fn peer_role(&self, conn: ConnId) -> Option<Role> {
        self.secure.peer(conn.0).map(|c| c.role)
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<RtEvent> {
        std::mem::take(&mut self.events)
    }

    /// Routes an inbound datagram (GLS replies). Returns `true` if
    /// consumed.
    pub fn handle_datagram(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Endpoint,
        payload: &[u8],
    ) -> bool {
        if self.gls.handle_datagram(ctx, from, payload) {
            self.drive_gls(ctx);
            self.flush_persistence(ctx);
            true
        } else {
            false
        }
    }

    /// Routes a timer. Returns `true` if consumed.
    pub fn handle_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) -> bool {
        if self.gls.handle_timer(ctx, token) {
            self.drive_gls(ctx);
            return true;
        }
        if owns_token(self.ns + 1, token) {
            let idx = token_id(token);
            if let Some(wait) = self.load_waits.remove(&idx) {
                self.loaded.insert(wait.choice.impl_id);
                self.finish_bind(ctx, wait.token, wait.oid, wait.choice);
            }
            return true;
        }
        if owns_token(self.ns + 2, token) {
            let idx = token_id(token);
            if let Some((oid, sub)) = self.repl_timers.remove(&idx) {
                self.with_lr(ctx, oid, |repl, c| repl.on_timer(c, sub));
                self.flush_persistence(ctx);
            }
            return true;
        }
        false
    }

    /// Routes a stream-connection event; see [`RtConn`].
    pub fn handle_conn_event(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        conn: ConnId,
        ev: ConnEvent,
    ) -> RtConn {
        match ev {
            ConnEvent::Incoming { .. } => {
                if !self.cfg.accept_incoming {
                    return RtConn::NotMine(ev);
                }
                self.secure.accept(conn.0, self.cfg.tls_server.clone());
                self.conn_info.insert(
                    conn.0,
                    ConnInfo {
                        peer: None,
                        established: false,
                        backlog: Vec::new(),
                    },
                );
                RtConn::Consumed
            }
            ConnEvent::Opened => {
                if self.conn_info.contains_key(&conn.0) {
                    RtConn::Consumed
                } else {
                    RtConn::NotMine(ConnEvent::Opened)
                }
            }
            ConnEvent::Msg(data) => {
                if !self.conn_info.contains_key(&conn.0) {
                    return RtConn::NotMine(ConnEvent::Msg(data));
                }
                let out = match self.secure.on_message(conn.0, &data, ctx.rng()) {
                    Ok((mut out, cost)) => {
                        // Replies are per-connection ciphertext; move them
                        // into the send path instead of cloning.
                        for reply in out.replies.drain(..) {
                            ctx.send_delayed(conn, reply, cost);
                        }
                        out
                    }
                    Err(_) => {
                        ctx.metrics().inc("rts.tls_errors", 1);
                        ctx.close(conn);
                        self.drop_conn(ctx, conn.0);
                        return RtConn::Consumed;
                    }
                };
                let mut app_frames = Vec::new();
                for ev in out.events {
                    match ev {
                        TlsEvent::Established { .. } => {
                            if let Some(info) = self.conn_info.get_mut(&conn.0) {
                                info.established = true;
                                let backlog = std::mem::take(&mut info.backlog);
                                for frame in backlog {
                                    self.send_on_conn(ctx, conn.0, frame);
                                }
                            }
                        }
                        TlsEvent::Data(plaintext) => match plaintext.split_first() {
                            Some((&ENV_GRP, frame)) => self.on_grp_frame(ctx, conn, frame),
                            Some((&ENV_APP, frame)) => app_frames.push(frame.to_vec()),
                            _ => ctx.metrics().inc("rts.malformed_frames", 1),
                        },
                    }
                }
                self.flush_persistence(ctx);
                if app_frames.is_empty() {
                    RtConn::Consumed
                } else {
                    RtConn::AppData {
                        frames: app_frames,
                        peer_role: self.peer_role(conn),
                    }
                }
            }
            ConnEvent::Closed(reason) => {
                if !self.conn_info.contains_key(&conn.0) {
                    return RtConn::NotMine(ConnEvent::Closed(reason));
                }
                self.drop_conn(ctx, conn.0);
                self.flush_persistence(ctx);
                RtConn::Consumed
            }
        }
    }

    /// Resets all volatile state after a host crash. Replicas are gone;
    /// object servers restore them in `on_restart` via
    /// [`GlobeRuntime::restore_replicas`].
    pub fn on_crash(&mut self) {
        self.secure = SecureChannels::new();
        self.out_conns.clear();
        self.conn_info.clear();
        self.lrs.clear();
        self.dirty.clear();
        self.peer_interest.clear();
        self.binds.clear();
        self.regs.clear();
        self.deregs.clear();
        self.load_waits.clear();
        self.loaded.clear();
        self.repl_timers.clear();
        self.known_eps.clear();
        self.enriches.clear();
        // The chunk store is in-memory state: a crash loses it along
        // with the replicas that held references into it.
        self.chunk_store = crate::chunks::new_store();
        self.events.clear();
    }

    /// Reconstructs persisted replicas from stable storage (paper §4:
    /// object servers "allow replicas to save their state during a
    /// reboot and reconstruct themselves afterwards").
    ///
    /// Returns the recovered object ids.
    pub fn restore_replicas(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<ObjectId> {
        let mut restored = Vec::new();
        for key in ctx.stable_keys("gos/obj/") {
            let hex = &key["gos/obj/".len()..];
            let Ok(oid) = u128::from_str_radix(hex, 16) else {
                continue;
            };
            let Some(blob) = ctx.stable_get(&key).cloned() else {
                continue;
            };
            if self.restore_one(ctx, oid, &blob).is_some() {
                restored.push(ObjectId(oid));
            }
        }
        ctx.metrics()
            .inc("rts.replicas_restored", restored.len() as u64);
        self.flush_persistence(ctx);
        restored
    }

    fn restore_one(&mut self, ctx: &mut ServiceCtx<'_>, oid: u128, blob: &[u8]) -> Option<()> {
        let mut r = WireReader::new(blob);
        let impl_id = ImplId(r.u16().ok()?);
        let protocol = r.u16().ok()?;
        let role = RoleSpec::decode(&mut r).ok()?;
        let version = r.u64().ok()?;
        let epoch = r.u64().ok()?;
        let state = r.bytes().ok()?.to_vec();
        // Protocol side-state (e.g. a delta history) rides after the
        // semantics state; blobs from before it existed simply end
        // here, so its absence is not an error.
        let extra = r.bytes().ok().map(<[u8]>::to_vec);
        let mut sem = self.repo.instantiate(impl_id)?;
        sem.attach_chunk_store(&self.chunk_store);
        sem.set_state(&state).ok()?;
        let mut repl = crate::protocols::spawn_replication(protocol, role);
        if let Some(extra) = extra {
            repl.restore_extra(&extra);
        }
        self.loaded.insert(impl_id.0);
        let mut lr = LocalRep::new(impl_id, Some(sem), repl, version);
        lr.epoch = epoch;
        // What we just decoded *is* the persisted blob: seed the
        // digest gate so an unchanged replica is not re-written.
        lr.persisted_version = version;
        lr.persisted_digest = lr.sem.as_ref().map(|s| s.state_digest());
        self.lrs.insert(oid, lr);
        // Slaves re-announce so the master refreshes them; masters just
        // resume (slaves will refetch on demand).
        self.with_lr(ctx, oid, |repl, c| repl.on_install(c));
        Some(())
    }

    fn drive_gls(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.gls.take_events() {
            match ev {
                GlsEvent::LookupDone { token, result, .. } if token & K_MASK == K_BIND => {
                    let idx = token & !K_MASK;
                    let Some((user, oid)) = self.binds.remove(&idx) else {
                        continue;
                    };
                    match result {
                        Ok(addrs) => self.choose_and_load(ctx, user, oid, addrs),
                        Err(GlsError::NotFound) => self.events.push(RtEvent::BindDone {
                            token: user,
                            result: Err(BindError::NotFound),
                        }),
                        Err(e) => self.events.push(RtEvent::BindDone {
                            token: user,
                            result: Err(BindError::Gls(e)),
                        }),
                    }
                }
                GlsEvent::InsertDone { token, result } if token & K_MASK == K_REG => {
                    let idx = token & !K_MASK;
                    if let Some(user) = self.regs.remove(&idx) {
                        self.events.push(RtEvent::Registered {
                            token: user,
                            result,
                        });
                    }
                }
                GlsEvent::LookupDone { token, result, .. } if token & K_MASK == K_ENRICH => {
                    let idx = token & !K_MASK;
                    let Some(oid) = self.enriches.remove(&idx) else {
                        continue;
                    };
                    // Best-effort: a failed exploration changes nothing.
                    let Ok(addrs) = result else { continue };
                    let now = ctx.now();
                    self.remember_addrs(oid, &addrs, now);
                    if let Some(lr) = self.lrs.get_mut(&oid) {
                        if !lr.repl.is_replica() {
                            let proto = lr.repl.proto();
                            let eps: Vec<Endpoint> = addrs
                                .iter()
                                .filter(|a| a.protocol == proto)
                                .map(|a| a.endpoint)
                                .collect();
                            let widened = lr.repl.widen_targets(&eps);
                            if widened > 0 {
                                ctx.metrics().inc("rts.health.widened", widened as u64);
                            }
                        }
                    }
                }
                GlsEvent::DeleteDone { token, result } if token & K_MASK == K_DEREG => {
                    let idx = token & !K_MASK;
                    if let Some(user) = self.deregs.remove(&idx) {
                        self.events.push(RtEvent::Deregistered {
                            token: user,
                            result,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Folds freshly returned contact addresses into the per-object
    /// candidate-set memory and returns the merged set. Fresh addresses
    /// overwrite their remembered slot; when the set overflows
    /// [`KNOWN_EPS_CAP`], remembered-only entries are evicted first,
    /// coldest first.
    fn remember_addrs(
        &mut self,
        oid: u128,
        addrs: &[ContactAddress],
        now: SimTime,
    ) -> Vec<ContactAddress> {
        let mut known = self.known_eps.remove(&oid).unwrap_or_default();
        for a in addrs {
            match known.iter_mut().find(|k| k.endpoint == a.endpoint) {
                Some(slot) => *slot = *a,
                None => known.push(*a),
            }
        }
        if known.len() > KNOWN_EPS_CAP {
            known.sort_by_key(|k| {
                (
                    addrs.iter().all(|a| a.endpoint != k.endpoint),
                    self.health.bucket(k.endpoint, now),
                )
            });
            known.truncate(KNOWN_EPS_CAP);
        }
        let merged = known.clone();
        self.known_eps.insert(oid, known);
        merged
    }

    /// Fires a background exploratory lookup for `oid`: a bind just
    /// installed a proxy with fewer than two candidates, which leaves
    /// the retry path nothing to rotate to and the hedger nothing to
    /// hedge at when that lone replica dies. The lookup enters the GLS
    /// at the root so the random pointer descent can surface a replica
    /// the locality lookup (nearest-first) never names; the result
    /// widens the installed proxy in place. At most one in flight per
    /// object, and never re-fired by its own completion — an object
    /// with a single replica settles after one wasted lookup.
    fn start_enrich(&mut self, ctx: &mut ServiceCtx<'_>, oid: u128) {
        if self.enriches.values().any(|&o| o == oid) {
            return;
        }
        let idx = self.next_bind;
        self.next_bind += 1;
        self.enriches.insert(idx, oid);
        self.gls.lookup_above(ctx, ObjectId(oid), K_ENRICH | idx);
        ctx.metrics().inc("rts.health.explore_lookups", 1);
    }

    /// Picks the nearest replica for reads and the nearest
    /// write-capable replica for writes (paper §3.4: "the returned
    /// contact addresses will identify the nearest replica"), then
    /// loads the implementation if this host has not yet.
    fn choose_and_load(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        token: u64,
        oid: u128,
        addrs: Vec<ContactAddress>,
    ) {
        if addrs.is_empty() {
            self.events.push(RtEvent::BindDone {
                token,
                result: Err(BindError::NoAddress),
            });
            return;
        }
        // Health-aware ranking: hot replicas before warm before cold,
        // nearest-first within a bucket. A freshly returned GLS address
        // we have never talked to ranks hot — the ledger only demotes
        // endpoints it has observed failing.
        let now = ctx.now();
        // Candidate-set memory: fold in every address earlier lookups
        // returned for this object. Fresh addresses overwrite their
        // remembered slot; when the set overflows, remembered-only
        // entries go first, coldest first.
        let remembered = self.remember_addrs(oid, &addrs, now);
        let key = |a: &ContactAddress| {
            (
                self.health.bucket(a.endpoint, now),
                ctx.topo().distance(self.my_host, a.endpoint.host),
                a.endpoint.host.0,
                a.endpoint.port,
            )
        };
        let mut sorted = remembered;
        sorted.sort_by_key(|a| key(a));
        // Sticky rebind: when a proxy-grade representative is already
        // installed and the replica it currently talks to is *strictly
        // healthier* than the best fresh address, keep it. A locality
        // lookup can only name nearby replicas — if the nearest one is
        // sitting cold in the ledger, re-binding it would walk straight
        // back into the failures we just escaped. Equal buckets defer
        // to the fresh list (nearest-first), so a recovered replica is
        // re-adopted once its score decays back to hot.
        if let Some(lr) = self.lrs.get(&oid) {
            if !lr.repl.is_replica() {
                if let Some(cur) = lr.repl.current_target() {
                    if self.health.bucket(cur, now) < self.health.bucket(sorted[0].endpoint, now) {
                        ctx.metrics().inc("rts.health.sticky_binds", 1);
                        self.events.push(RtEvent::BindDone {
                            token,
                            result: Ok(BindInfo {
                                oid: ObjectId(oid),
                                protocol: lr.repl.proto(),
                                impl_id: lr.impl_id,
                            }),
                        });
                        return;
                    }
                }
            }
        }
        let read = sorted[0];
        // Writes go only to an address the *fresh* lookup named: a
        // remembered master may have been demoted or re-placed since.
        let write = addrs
            .iter()
            .filter(|a| a.accepts_writes())
            .min_by_key(|a| key(a))
            .copied()
            .unwrap_or(read);
        let choice = BindChoice {
            impl_id: read.impl_hint,
            protocol: read.protocol,
            reads: sorted
                .iter()
                .filter(|a| a.protocol == read.protocol)
                .map(|a| a.endpoint)
                .collect(),
            write: write.endpoint,
        };
        if !self.repo.contains(ImplId(choice.impl_id)) {
            self.events.push(RtEvent::BindDone {
                token,
                result: Err(BindError::UnknownImpl(choice.impl_id)),
            });
            return;
        }
        if self.loaded.contains(&choice.impl_id) {
            self.finish_bind(ctx, token, oid, choice);
        } else {
            // Simulated remote class loading (paper §3.4).
            let idx = self.next_load;
            self.next_load += 1;
            self.load_waits.insert(idx, LoadWait { token, oid, choice });
            let delay = self.repo.load_delay();
            ctx.set_timer(delay, ns_token(self.ns + 1, idx));
            ctx.metrics().inc("rts.impl_loads", 1);
        }
    }

    fn finish_bind(&mut self, ctx: &mut ServiceCtx<'_>, token: u64, oid: u128, choice: BindChoice) {
        use crate::grp::protocol_id;
        // Timers belong to the representative instance about to be
        // replaced: a replacement's protocol state restarts its
        // sub-token counters, so a stale timer firing into the fresh
        // instance would hit an unrelated in-flight request.
        self.repl_timers.retain(|_, (o, _)| *o != oid);
        let impl_id = ImplId(choice.impl_id);
        let (sem, repl): (
            Option<Box<dyn SemanticsObject>>,
            Box<dyn ReplicationSubobject>,
        ) = if choice.protocol == protocol_id::CACHE_TTL {
            let Some(mut sem) = self.repo.instantiate(impl_id) else {
                self.events.push(RtEvent::BindDone {
                    token,
                    result: Err(BindError::UnknownImpl(choice.impl_id)),
                });
                return;
            };
            sem.attach_chunk_store(&self.chunk_store);
            (
                Some(sem),
                Box::new(CacheProxy::new(choice.reads[0], self.cfg.cache_ttl)),
            )
        } else {
            (
                None,
                Box::new(ForwardingProxy::new(
                    choice.protocol,
                    choice.reads.clone(),
                    choice.write,
                )),
            )
        };
        let mut lr = LocalRep::new(impl_id, sem, repl, 0);
        // A rebind replaces an installed proxy-grade representative:
        // keep its warm semantics state so caches refresh by delta
        // instead of refetching everything. Version and epoch describe
        // the held state, so they travel only with it — a replacement
        // that cannot carry the state (protocol changed to a state-less
        // proxy) must not claim the old version.
        if let Some(prior) = self.lrs.remove(&oid) {
            if prior.impl_id == impl_id
                && !prior.repl.is_replica()
                && lr.sem.is_some()
                && prior.sem.is_some()
            {
                lr.sem = prior.sem;
                lr.version = prior.version;
                lr.epoch = prior.epoch;
            }
        }
        self.lrs.insert(oid, lr);
        self.with_lr(ctx, oid, |repl, c| repl.on_install(c));
        // A one-candidate proxy cannot rotate or hedge when its replica
        // dies: explore for siblings now, before the failure, not after.
        let thin = self
            .lrs
            .get(&oid)
            .map(|lr| !lr.repl.is_replica() && lr.repl.targets().len() == 1)
            .unwrap_or(false);
        if thin {
            self.start_enrich(ctx, oid);
        }
        self.events.push(RtEvent::BindDone {
            token,
            result: Ok(BindInfo {
                oid: ObjectId(oid),
                protocol: choice.protocol,
                impl_id,
            }),
        });
    }

    fn on_grp_frame(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, frame: &[u8]) {
        let Ok(msg) = GrpMsg::decode(frame) else {
            ctx.metrics().inc("rts.malformed_frames", 1);
            return;
        };
        let role = self.peer_role(conn);
        // Access control (paper §6.1): replicas accept state-modifying
        // traffic only from authorized senders.
        let is_writer = self.cfg.open_writes
            || role
                .map(|r| self.cfg.writer_roles.contains(&r))
                .unwrap_or(false);
        match &msg.body {
            GrpBody::Invoke { req, inv } => {
                let Some(lr) = self.lrs.get(&msg.oid) else {
                    let reply = GrpMsg {
                        oid: msg.oid,
                        body: GrpBody::InvokeResult {
                            req: *req,
                            ok: false,
                            data: b"no such object here".to_vec(),
                        },
                    };
                    self.send_grp_on_conn(ctx, conn.0, &reply);
                    return;
                };
                let kind = self
                    .repo
                    .kind_of(lr.impl_id, inv.method)
                    .unwrap_or(MethodKind::Write);
                if kind == MethodKind::Write && !is_writer {
                    ctx.metrics().inc("rts.writes_denied", 1);
                    let reply = GrpMsg {
                        oid: msg.oid,
                        body: GrpBody::InvokeResult {
                            req: *req,
                            ok: false,
                            data: b"write access denied".to_vec(),
                        },
                    };
                    self.send_grp_on_conn(ctx, conn.0, &reply);
                    return;
                }
            }
            body if body.is_state_modifying() && !is_writer => {
                ctx.metrics().inc("rts.updates_denied", 1);
                return;
            }
            _ => {}
        }
        let oid = msg.oid;
        let body = msg.body;
        let peer = Peer::Conn(conn.0);
        self.with_lr(ctx, oid, |repl, c| repl.on_grp(c, peer, body));
    }

    fn with_lr<F>(&mut self, ctx: &mut ServiceCtx<'_>, oid: u128, f: F)
    where
        F: FnOnce(&mut Box<dyn ReplicationSubobject>, &mut ReplCtx<'_>),
    {
        let Some(mut lr) = self.lrs.remove(&oid) else {
            return;
        };
        let repo = Arc::clone(&self.repo);
        let impl_id = lr.impl_id;
        let kind_fn = move |m| repo.kind_of(impl_id, m).unwrap_or(MethodKind::Write);
        let oracle_key = oracle_key(oid);
        let oracle_version = ctx.metrics().counter(&oracle_key);
        let entry_version = lr.version;
        self.next_epoch_nonce += 1;
        let epoch_nonce = self.next_epoch_nonce;
        let effects = {
            let mut rctx = ReplCtx {
                oid,
                my_grp: Endpoint::new(self.my_host, self.cfg.grp_port),
                now: ctx.now(),
                sem: lr.sem.as_mut(),
                version: &mut lr.version,
                epoch: &mut lr.epoch,
                epoch_nonce,
                kind_of: &kind_fn,
                oracle_version,
                chunks: self.chunk_store.clone(),
                effects: ReplEffects::default(),
            };
            f(&mut lr.repl, &mut rctx);
            rctx.effects
        };
        // Op-trace observability for the consistency auditor: one serve
        // record per dispatch that answered reads (they all observed the
        // same local version), one commit record per version bump at a
        // write-accepting representative. Free when tracing is off.
        if ctx.trace_enabled(TraceLevel::Info) {
            let role = observed_role(lr.repl.as_ref());
            let (host, port) = (self.my_host.0, self.cfg.grp_port);
            if effects.fresh_reads + effects.stale_reads > 0 {
                let rec = OpRecord::Serve {
                    oid,
                    host,
                    port,
                    role,
                    version: lr.version,
                    epoch: lr.epoch,
                    oracle: oracle_version,
                    fresh: effects.fresh_reads,
                    stale: effects.stale_reads,
                };
                ctx.trace_info(optrace::COMPONENT, rec.render());
            }
            if lr.repl.accepts_writes() && lr.version > entry_version {
                let rec = OpRecord::Commit {
                    oid,
                    host,
                    port,
                    role,
                    version: lr.version,
                    epoch: lr.epoch,
                };
                ctx.trace_info(optrace::COMPONENT, rec.render());
            }
        }
        // Oracle maintenance: every version bump at a write-accepting
        // replica advances the measurement oracle.
        if lr.repl.accepts_writes() {
            let cur = ctx.metrics().counter(&oracle_key);
            if lr.version > cur {
                ctx.metrics().inc(&oracle_key, lr.version - cur);
            }
        }
        // Persistence is *scheduled*, not performed: the flush at the
        // end of the current runtime dispatch digest-gates and batches
        // the actual `stable_put` (see `flush_persistence`).
        if self.cfg.persist && lr.repl.is_replica() && effects.dirty {
            lr.needs_persist = true;
            if effects.dirty_eager {
                lr.persist_eager = true;
            }
            self.dirty.insert(oid);
        }
        self.lrs.insert(oid, lr);
        self.apply_repl_effects(ctx, oid, effects);
    }

    /// End-of-dispatch persistence: writes each dirty replica to stable
    /// storage at most once per runtime entry point, skipping replicas
    /// whose cheap state digest shows nothing actually changed (local
    /// reads mark effects dirty conservatively) and deferring
    /// delta-fed replicas up to [`DELTA_CHECKPOINT_STRIDE`] versions.
    fn flush_persistence(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.drain_chunk_stats(ctx);
        if !self.cfg.persist || self.dirty.is_empty() {
            return;
        }
        let oids: Vec<u128> = self.dirty.iter().copied().collect();
        for oid in oids {
            let Some(lr) = self.lrs.get_mut(&oid) else {
                self.dirty.remove(&oid);
                continue;
            };
            if !lr.needs_persist {
                self.dirty.remove(&oid);
                continue;
            }
            let due =
                lr.persist_eager || lr.version >= lr.persisted_version + DELTA_CHECKPOINT_STRIDE;
            if !due && lr.version != lr.persisted_version {
                // Delta-fed progress awaiting its stride boundary: drop
                // out of the scan set so unrelated dispatches stop
                // rescanning it — `needs_persist` stays set and the next
                // dirty effect on this object re-enqueues it (the digest
                // need not be computed: a version change implies a state
                // change).
                if !lr.deferred_counted {
                    lr.deferred_counted = true;
                    ctx.metrics().inc("rts.persist.deferred", 1);
                }
                self.dirty.remove(&oid);
                continue;
            }
            let digest = lr.sem.as_ref().map(|s| s.state_digest()).unwrap_or(0);
            if lr.persisted_digest == Some(digest) && lr.persisted_version == lr.version {
                // Conservative dirtiness (a read) with no actual change.
                ctx.metrics().inc("rts.persist.digest_skips", 1);
            } else {
                // Due for a checkpoint — or dirty-at-the-same-version
                // with a changed digest (a mutation without a version
                // bump, e.g. a failed write that partially applied):
                // persist eagerly, correctness over deferral.
                let blob = encode_replica(lr);
                ctx.stable_put(&replica_key(oid), blob);
                ctx.metrics().inc("rts.persist.stable_puts", 1);
                lr.persisted_digest = Some(digest);
                lr.persisted_version = lr.version;
            }
            lr.needs_persist = false;
            lr.persist_eager = false;
            lr.deferred_counted = false;
            self.dirty.remove(&oid);
        }
    }

    /// Publishes the chunk store's activity since the last drain as
    /// runtime metrics (cheap no-op when nothing happened).
    fn drain_chunk_stats(&mut self, ctx: &mut ServiceCtx<'_>) {
        let d = self.chunk_store.borrow_mut().drain_stats();
        if d == crate::chunks::ChunkStats::default() {
            return;
        }
        let pairs = [
            ("rts.chunks.stored", d.stored),
            ("rts.chunks.bytes_stored", d.bytes_stored),
            ("rts.chunks.dedup_hits", d.dedup_hits),
            ("rts.chunks.bytes_deduped", d.bytes_deduped),
            ("rts.chunks.fetched", d.fetched),
            ("rts.chunks.bytes_fetched", d.bytes_fetched),
            ("rts.chunks.announce_hits", d.announce_hits),
            ("rts.chunks.announce_misses", d.announce_misses),
            ("rts.chunks.released", d.released),
        ];
        for (key, v) in pairs {
            if v > 0 {
                ctx.metrics().inc(key, v);
            }
        }
    }

    fn apply_repl_effects(&mut self, ctx: &mut ServiceCtx<'_>, oid: u128, effects: ReplEffects) {
        if effects.stale_reads > 0 {
            ctx.metrics().inc("rts.reads.stale", effects.stale_reads);
        }
        if effects.fresh_reads > 0 {
            ctx.metrics().inc("rts.reads.fresh", effects.fresh_reads);
        }
        if effects.cache_hits > 0 {
            ctx.metrics().inc("rts.cache.hits", effects.cache_hits);
        }
        if effects.cache_misses > 0 {
            ctx.metrics().inc("rts.cache.misses", effects.cache_misses);
        }
        if effects.deltas_applied > 0 {
            ctx.metrics()
                .inc("rts.grp.deltas_applied", effects.deltas_applied);
        }
        for (peer, body) in effects.sends {
            let msg = GrpMsg { oid, body };
            match peer {
                Peer::Conn(c) => self.send_grp_on_conn(ctx, c, &msg),
                Peer::Addr(ep) => {
                    self.note_interest(oid, ep);
                    let c = self.conn_to(ctx, ep);
                    self.send_grp_on_conn(ctx, c, &msg);
                }
            }
        }
        for (peers, body) in effects.multicasts {
            // One frame encode for the whole fan-out; only the
            // per-connection sealing differs per peer.
            let msg = GrpMsg { oid, body };
            let mut w = WireWriter::new();
            w.put_u8(ENV_GRP);
            w.put_raw(&msg.encode());
            // Encode once, share across the fan-out: `Payload` clones
            // are refcount bumps, not byte copies.
            let frame = Payload::from(w.finish());
            ctx.metrics().inc("rts.grp.encodes", 1);
            ctx.metrics()
                .inc("rts.grp.bytes_encoded", frame.len() as u64);
            for peer in peers {
                match peer {
                    Peer::Conn(c) => self.send_on_conn(ctx, c, frame.clone()),
                    Peer::Addr(ep) => {
                        self.note_interest(oid, ep);
                        let c = self.conn_to(ctx, ep);
                        self.send_on_conn(ctx, c, frame.clone());
                    }
                }
            }
        }
        for (delay, sub) in effects.timers {
            let idx = self.next_repl_timer;
            self.next_repl_timer += 1;
            self.repl_timers.insert(idx, (oid, sub));
            ctx.set_timer(delay, ns_token(self.ns + 2, idx));
        }
        for (replica, event) in effects.health {
            match event {
                HealthEvent::Success(latency) => {
                    self.health.record_success(replica, latency, ctx.now());
                    ctx.metrics().inc("rts.health.successes", 1);
                }
                HealthEvent::Failure(reason) => {
                    self.health.record_failure(replica, reason, ctx.now());
                    ctx.metrics().inc("rts.health.failures", 1);
                    // Publish host-level sickness for the adaptive
                    // controller: one tick per failure observed while
                    // the endpoint classifies cold.
                    if self.health.bucket(replica, ctx.now()) == Bucket::Cold {
                        ctx.metrics()
                            .inc(&format!("health.cold.h{}", replica.host.0), 1);
                    }
                }
            }
        }
        for (token, result, replica) in effects.completions {
            self.events.push(RtEvent::InvokeDone {
                token,
                result,
                replica,
            });
        }
    }

    /// Records that `oid`'s representative talks to `peer`, for the
    /// peer-loss interest index.
    fn note_interest(&mut self, oid: u128, peer: Endpoint) {
        self.peer_interest.entry(peer).or_default().insert(oid);
    }

    fn send_grp_on_conn(&mut self, ctx: &mut ServiceCtx<'_>, conn: u64, msg: &GrpMsg) {
        let mut w = WireWriter::new();
        w.put_u8(ENV_GRP);
        w.put_raw(&msg.encode());
        let frame = Payload::from(w.finish());
        ctx.metrics().inc("rts.grp.encodes", 1);
        ctx.metrics()
            .inc("rts.grp.bytes_encoded", frame.len() as u64);
        self.send_on_conn(ctx, conn, frame);
    }

    fn send_on_conn(&mut self, ctx: &mut ServiceCtx<'_>, conn: u64, frame: Payload) {
        let Some(info) = self.conn_info.get_mut(&conn) else {
            ctx.metrics().inc("rts.send_dropped", 1);
            return;
        };
        if !info.established {
            if info.backlog.len() >= MAX_CONN_BACKLOG {
                ctx.metrics().inc("rts.backlog_dropped", 1);
                return;
            }
            info.backlog.push(frame);
            return;
        }
        match self.secure.seal(conn, &frame) {
            Ok((rec, cost)) => ctx.send_delayed(ConnId(conn), rec, cost),
            Err(_) => ctx.metrics().inc("rts.send_dropped", 1),
        }
    }

    fn conn_to(&mut self, ctx: &mut ServiceCtx<'_>, peer: Endpoint) -> u64 {
        if let Some(&c) = self.out_conns.get(&peer) {
            return c;
        }
        let conn = ctx.connect(peer);
        match self
            .secure
            .open_client(conn.0, self.cfg.tls_client.clone(), ctx.rng())
        {
            Ok((hello, cost)) => ctx.send_delayed(conn, hello, cost),
            Err(_) => ctx.metrics().inc("rts.tls_errors", 1),
        }
        self.conn_info.insert(
            conn.0,
            ConnInfo {
                peer: Some(peer),
                established: false,
                backlog: Vec::new(),
            },
        );
        self.out_conns.insert(peer, conn.0);
        conn.0
    }

    fn drop_conn(&mut self, ctx: &mut ServiceCtx<'_>, conn: u64) {
        self.secure.remove(conn);
        let Some(info) = self.conn_info.remove(&conn) else {
            return;
        };
        if let Some(peer) = info.peer {
            self.out_conns.remove(&peer);
            // Tell only the representatives that ever talked to this
            // peer (the interest index), not every object on the host.
            let interested = self.peer_interest.remove(&peer).unwrap_or_default();
            for oid in interested {
                self.with_lr(ctx, oid, |repl, c| repl.on_peer_gone(c, peer));
            }
        }
    }
}

fn replica_key(oid: u128) -> String {
    format!("gos/obj/{oid:032x}")
}

fn oracle_key(oid: u128) -> String {
    format!("oracle.{oid:032x}")
}

/// The op-trace role of a representative, derived from its protocol
/// descriptor (the auditor applies different freshness rules to caches
/// than to consistent replicas).
fn observed_role(repl: &dyn ReplicationSubobject) -> ReplicaRole {
    match repl.descriptor() {
        RoleSpec::Master { .. } => ReplicaRole::Master,
        RoleSpec::Slave { .. } => ReplicaRole::Slave,
        RoleSpec::Standalone => {
            if repl.proto() == crate::grp::protocol_id::CACHE_TTL {
                ReplicaRole::Cache
            } else if repl.accepts_writes() {
                ReplicaRole::Standalone
            } else {
                ReplicaRole::Proxy
            }
        }
    }
}

fn encode_replica(lr: &LocalRep) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(lr.impl_id.0);
    w.put_u16(lr.repl.proto());
    lr.repl.descriptor().encode(&mut w);
    w.put_u64(lr.version);
    w.put_u64(lr.epoch);
    w.put_bytes(&lr.sem.as_ref().map(|s| s.get_state()).unwrap_or_default());
    w.put_bytes(&lr.repl.persist_extra());
    w.finish()
}

/// Convenience: the default propagation mode for a protocol id.
pub fn default_mode_for(protocol: u16) -> PropagationMode {
    use crate::grp::protocol_id;
    match protocol {
        protocol_id::ACTIVE => PropagationMode::ApplyOps,
        _ => PropagationMode::PushState,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_error_display() {
        assert!(BindError::NotFound.to_string().contains("not registered"));
        assert!(BindError::UnknownImpl(7).to_string().contains('7'));
        assert!(BindError::Gls(GlsError::Timeout)
            .to_string()
            .contains("respond"));
        assert!(BindError::NoAddress.to_string().contains("address"));
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(replica_key(0xAB).len(), "gos/obj/".len() + 32);
        assert!(oracle_key(1).starts_with("oracle."));
    }

    #[test]
    fn default_modes() {
        use crate::grp::protocol_id;
        assert_eq!(
            default_mode_for(protocol_id::ACTIVE),
            PropagationMode::ApplyOps
        );
        assert_eq!(
            default_mode_for(protocol_id::MASTER_SLAVE),
            PropagationMode::PushState
        );
    }
}
