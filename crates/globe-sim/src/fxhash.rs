//! A fast, deterministic, dependency-free hasher for simulation hot
//! paths (the `FxHasher` algorithm long used by rustc).
//!
//! The default `SipHasher` is keyed randomly per process, which is both
//! slower than needed for small keys and a source of iteration-order
//! nondeterminism. `FxHasher` is unkeyed: the same keys inserted in the
//! same order always produce the same table, which keeps hash maps
//! usable inside the deterministic engine for *point lookups*.
//! Iteration order over an `FxHashMap` still depends on insertion
//! history and capacity, so anything ordered that feeds schedules or
//! reports must iterate a sorted structure instead (see
//! [`crate::Metrics`], which sorts by name at report time).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildFxHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildFxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc hash function: a multiply-and-rotate mix per word.
/// Not cryptographic and trivially biasable by an adversary — only for
/// internal keys (connection ids, endpoints, interned names), never for
/// untrusted input.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(b));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut b = [0u8; 8];
            b[..rest.len()].copy_from_slice(rest);
            // Mix the tail length in so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(b) ^ (rest.len() as u64) << 56);
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s; `Default + Clone` so it slots into any
/// `HashMap` signature.
#[derive(Clone, Debug, Default)]
pub struct BuildFxHasher;

impl BuildHasher for BuildFxHasher {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(b"net.bytes.region"), hash_of(b"net.bytes.region"));
        assert_ne!(hash_of(b"net.bytes.region"), hash_of(b"net.bytes.world"));
    }

    #[test]
    fn tail_lengths_are_distinguished() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("c"), None);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
