//! The GNS Naming Authority and its client.
//!
//! The paper (§6.1): "the GNS Naming Authority ... is the daemon that
//! sends DNS UPDATE messages to the name servers responsible for the GDN
//! Zone, in response to add and remove requests from clients", and "a
//! GDN Naming Authority should accept only updates from moderator tools
//! operated by official GDN moderators."
//!
//! Enforcement here is exactly that: requests arrive over two-way
//! authenticated gTLS channels, the peer certificate's role must be
//! moderator or administrator, and accepted operations are *batched*
//! (paper §5: "the number of updates to our zone can be kept low by
//! batching them") into TSIG-signed DNS UPDATEs sent to the GDN Zone's
//! primary server.

use std::collections::BTreeMap;

use globe_crypto::cert::Role;
use globe_crypto::channel::SecureChannels;
use globe_crypto::gtls::{TlsConfig, TlsEvent};
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ns_token, owns_token, token_id, CloseReason, ConnEvent, ConnId, Endpoint,
    Service, ServiceCtx, WireError, WireReader, WireWriter,
};
use globe_sim::{SimDuration, SimTime};

use crate::name::{DnsName, GlobeName};
use crate::proto::{tsig_mac, DnsMsg, Rcode, UpdateOp};
use crate::records::{RData, RecordType, ResourceRecord};

/// Timer namespace for batch flushes.
const NA_FLUSH_NS: u16 = 0x4E41;
/// Timer namespace for update retries.
const NA_RETRY_NS: u16 = 0x4E42;
/// Flush timer id.
const FLUSH_TOKEN_ID: u64 = 1;

/// Encodes an object id as the TXT payload of a GNS record (paper §5:
/// "a TXT DNS Resource Record that contains the encoded object
/// identifier").
pub fn oid_to_txt(oid: ObjectId) -> String {
    format!("oid={:032x}", oid.0)
}

/// Parses a GNS TXT payload back into an object id.
pub fn txt_to_oid(txt: &str) -> Option<ObjectId> {
    let hex = txt.strip_prefix("oid=")?;
    if hex.len() != 32 {
        return None;
    }
    u128::from_str_radix(hex, 16).ok().map(ObjectId)
}

/// Requests a moderator tool sends to the Naming Authority.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NaRequest {
    /// Bind `name` to `oid` in the GDN Zone (replacing any previous
    /// binding).
    Add {
        /// Request id, echoed in the response.
        req: u64,
        /// The Globe object name, e.g. `/apps/graphics/gimp`.
        name: String,
        /// The object identifier to bind.
        oid: ObjectId,
    },
    /// Remove `name` from the GDN Zone.
    Remove {
        /// Request id, echoed in the response.
        req: u64,
        /// The Globe object name to unbind.
        name: String,
    },
}

/// The Naming Authority's answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaResponse {
    /// Echoes the request id.
    pub req: u64,
    /// `None` on success, or a human-readable refusal reason.
    pub error: Option<String>,
}

const T_ADD: u8 = 1;
const T_REMOVE: u8 = 2;
const T_RESP: u8 = 3;

impl NaRequest {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            NaRequest::Add { req, name, oid } => {
                w.put_u8(T_ADD);
                w.put_u64(*req);
                w.put_str(name);
                w.put_u128(oid.0);
            }
            NaRequest::Remove { req, name } => {
                w.put_u8(T_REMOVE);
                w.put_u64(*req);
                w.put_str(name);
            }
        }
        w.finish()
    }

    /// Deserializes a request.
    pub fn decode(buf: &[u8]) -> Result<NaRequest, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.u8()? {
            T_ADD => NaRequest::Add {
                req: r.u64()?,
                name: r.str()?.to_owned(),
                oid: ObjectId(r.u128()?),
            },
            T_REMOVE => NaRequest::Remove {
                req: r.u64()?,
                name: r.str()?.to_owned(),
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

impl NaResponse {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u8(T_RESP);
        w.put_u64(self.req);
        match &self.error {
            None => w.put_bool(false),
            Some(e) => {
                w.put_bool(true);
                w.put_str(e);
            }
        }
        w.finish()
    }

    /// Deserializes a response.
    pub fn decode(buf: &[u8]) -> Result<NaResponse, WireError> {
        let mut r = WireReader::new(buf);
        if r.u8()? != T_RESP {
            return Err(WireError::BadTag(T_RESP));
        }
        let req = r.u64()?;
        let error = if r.bool()? {
            Some(r.str()?.to_owned())
        } else {
            None
        };
        r.expect_end()?;
        Ok(NaResponse { req, error })
    }
}

/// Counters for the Naming Authority.
#[derive(Clone, Copy, Debug, Default)]
pub struct AuthorityStats {
    /// Requests accepted and queued.
    pub accepted: u64,
    /// Requests denied (role or name validation).
    pub denied: u64,
    /// UPDATE batches sent to the primary.
    pub batches: u64,
    /// Individual operations flushed.
    pub ops_flushed: u64,
}

/// The GNS Naming Authority daemon.
pub struct NamingAuthority {
    tls: TlsConfig,
    chans: SecureChannels,
    zone: DnsName,
    primary: Endpoint,
    tsig_key_name: String,
    tsig_secret: Vec<u8>,
    record_ttl: u32,
    batch_interval: SimDuration,
    /// Accept requests from unauthenticated peers (the paper's
    /// unsecured first version).
    open: bool,
    queue: Vec<UpdateOp>,
    next_qid: u64,
    /// In-flight UPDATEs awaiting acknowledgement: qid → (ops, attempts).
    inflight: BTreeMap<u64, (Vec<UpdateOp>, u32)>,
    /// Load counters.
    pub stats: AuthorityStats,
}

impl NamingAuthority {
    /// Creates the authority for `zone`, flushing to `primary`.
    ///
    /// `tls` must be a two-way (mutual) configuration; role enforcement
    /// happens per request against the authenticated peer certificate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tls: TlsConfig,
        zone: DnsName,
        primary: Endpoint,
        tsig_key_name: &str,
        tsig_secret: Vec<u8>,
        record_ttl: u32,
        batch_interval: SimDuration,
    ) -> NamingAuthority {
        NamingAuthority {
            tls,
            chans: SecureChannels::new(),
            zone,
            primary,
            tsig_key_name: tsig_key_name.to_owned(),
            tsig_secret,
            record_ttl,
            batch_interval,
            open: false,
            queue: Vec::new(),
            next_qid: 1,
            inflight: BTreeMap::new(),
            stats: AuthorityStats::default(),
        }
    }

    /// Disables the moderator-role check (paper's June-2000 version).
    pub fn with_open_access(mut self) -> NamingAuthority {
        self.open = true;
        self
    }

    fn send_secured(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, plaintext: &[u8]) {
        if let Ok((rec, cost)) = self.chans.seal(conn.0, plaintext) {
            ctx.send_delayed(conn, rec, cost);
        }
    }

    fn process_request(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, data: &[u8]) {
        let Ok(reqmsg) = NaRequest::decode(data) else {
            ctx.metrics().inc("gns.na.malformed", 1);
            return;
        };
        // Authorization: peer must be an official moderator (or an
        // administrator — they hand out moderator privileges and hold a
        // superset of them).
        let role = self.chans.peer(conn.0).map(|c| c.role);
        let authorized =
            self.open || matches!(role, Some(Role::Moderator) | Some(Role::Administrator));
        let (req, outcome) = match (&reqmsg, authorized) {
            (NaRequest::Add { req, .. }, false) | (NaRequest::Remove { req, .. }, false) => {
                self.stats.denied += 1;
                ctx.metrics().inc("gns.na.denied", 1);
                (*req, Some("moderator role required".to_owned()))
            }
            (NaRequest::Add { req, name, oid }, true) => match GlobeName::parse(name) {
                Ok(gname) => match gname.to_dns(&self.zone) {
                    Ok(dns) => {
                        // Replace any existing binding.
                        self.queue
                            .push(UpdateOp::DeleteRrset(dns.clone(), RecordType::Txt));
                        self.queue.push(UpdateOp::Add(ResourceRecord::new(
                            dns,
                            self.record_ttl,
                            RData::Txt(oid_to_txt(*oid)),
                        )));
                        self.stats.accepted += 1;
                        (*req, None)
                    }
                    Err(e) => (*req, Some(e.to_string())),
                },
                Err(e) => (*req, Some(e.to_string())),
            },
            (NaRequest::Remove { req, name }, true) => match GlobeName::parse(name) {
                Ok(gname) => match gname.to_dns(&self.zone) {
                    Ok(dns) => {
                        self.queue.push(UpdateOp::DeleteRrset(dns, RecordType::Txt));
                        self.stats.accepted += 1;
                        (*req, None)
                    }
                    Err(e) => (*req, Some(e.to_string())),
                },
                Err(e) => (*req, Some(e.to_string())),
            },
        };
        let resp = NaResponse {
            req,
            error: outcome,
        };
        let bytes = resp.encode();
        self.send_secured(ctx, conn, &bytes);
        // Immediate flush when batching is disabled.
        if self.batch_interval == SimDuration::ZERO {
            self.flush(ctx);
        }
    }

    fn flush(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.queue.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.queue);
        let qid = self.next_qid;
        self.next_qid += 1;
        let mac = tsig_mac(&self.tsig_secret, &self.zone, &ops, &self.tsig_key_name);
        let msg = DnsMsg::Update {
            qid,
            zone: self.zone.clone(),
            ops: ops.clone(),
            key_name: self.tsig_key_name.clone(),
            mac,
        };
        ctx.send_datagram(self.primary, msg.encode());
        ctx.set_timer(SimDuration::from_secs(3), ns_token(NA_RETRY_NS, qid));
        self.stats.batches += 1;
        self.stats.ops_flushed += ops.len() as u64;
        ctx.metrics().inc("gns.na.batches", 1);
        ctx.metrics().inc("gns.na.ops", ops.len() as u64);
        self.inflight.insert(qid, (ops, 1));
    }
}

impl Service for NamingAuthority {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.batch_interval > SimDuration::ZERO {
            ctx.set_timer(self.batch_interval, ns_token(NA_FLUSH_NS, FLUSH_TOKEN_ID));
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match ev {
            ConnEvent::Incoming { .. } => {
                self.chans.accept(conn.0, self.tls.clone());
            }
            ConnEvent::Msg(data) => {
                let out = match self.chans.on_message(conn.0, &data, ctx.rng()) {
                    Ok((out, cost)) => {
                        for reply in &out.replies {
                            ctx.send_delayed(conn, reply.clone(), cost);
                        }
                        out
                    }
                    Err(e) => {
                        ctx.metrics().inc("gns.na.tls_errors", 1);
                        ctx.trace_info("gns.na", format!("tls error on {conn}: {e}"));
                        ctx.close(conn);
                        self.chans.remove(conn.0);
                        return;
                    }
                };
                for ev in out.events {
                    if let TlsEvent::Data(plaintext) = ev {
                        self.process_request(ctx, conn, &plaintext);
                    }
                }
            }
            ConnEvent::Closed(_) => {
                self.chans.remove(conn.0);
            }
            ConnEvent::Opened => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(NA_FLUSH_NS, token) {
            self.flush(ctx);
            ctx.set_timer(self.batch_interval, ns_token(NA_FLUSH_NS, FLUSH_TOKEN_ID));
            return;
        }
        if owns_token(NA_RETRY_NS, token) {
            let qid = token_id(token);
            let Some((ops, attempts)) = self.inflight.remove(&qid) else {
                return;
            };
            if attempts >= 3 {
                ctx.metrics().inc("gns.na.update_failures", 1);
                return;
            }
            let mac = tsig_mac(&self.tsig_secret, &self.zone, &ops, &self.tsig_key_name);
            let msg = DnsMsg::Update {
                qid,
                zone: self.zone.clone(),
                ops: ops.clone(),
                key_name: self.tsig_key_name.clone(),
                mac,
            };
            ctx.send_datagram(self.primary, msg.encode());
            ctx.set_timer(SimDuration::from_secs(3), ns_token(NA_RETRY_NS, qid));
            self.inflight.insert(qid, (ops, attempts + 1));
        }
    }

    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, _from: Endpoint, payload: Vec<u8>) {
        if let Ok(DnsMsg::UpdateResp { qid, rcode }) = DnsMsg::decode(&payload) {
            if self.inflight.remove(&qid).is_some() && rcode != Rcode::Ok {
                ctx.metrics().inc("gns.na.update_rejected", 1);
            }
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.chans = SecureChannels::new();
        self.queue.clear();
        self.inflight.clear();
    }

    fn on_restart(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.batch_interval > SimDuration::ZERO {
            ctx.set_timer(self.batch_interval, ns_token(NA_FLUSH_NS, FLUSH_TOKEN_ID));
        }
    }

    impl_service_any!();
}

/// Completion events from [`NaClient::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NaEvent {
    /// A request completed.
    Done {
        /// Caller-chosen correlation token.
        token: u64,
        /// `Ok` or the refusal reason.
        result: Result<(), String>,
    },
    /// The connection to the authority failed.
    ConnectionFailed(CloseReason),
}

/// Moderator-tool side of the Naming Authority protocol.
///
/// Maintains one secured connection to the authority and correlates
/// requests with responses. Embedded in the moderator tool service.
pub struct NaClient {
    authority: Endpoint,
    tls: TlsConfig,
    conn: Option<ConnId>,
    established: bool,
    chans: SecureChannels,
    next_req: u64,
    /// Requests not yet transmitted (pre-handshake).
    backlog: Vec<NaRequest>,
    /// Sent requests awaiting responses: req → user token.
    pending: BTreeMap<u64, u64>,
    events: Vec<NaEvent>,
}

impl NaClient {
    /// Creates a client for the authority at `authority`; `tls` must
    /// carry the moderator's credentials (two-way auth).
    pub fn new(authority: Endpoint, tls: TlsConfig) -> NaClient {
        NaClient {
            authority,
            tls,
            conn: None,
            established: false,
            chans: SecureChannels::new(),
            next_req: 1,
            backlog: Vec::new(),
            pending: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    fn ensure_connected(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.conn.is_some() {
            return;
        }
        let conn = ctx.connect(self.authority);
        let (hello, cost) = self
            .chans
            .open_client(conn.0, self.tls.clone(), ctx.rng())
            .expect("client config is valid");
        ctx.send_delayed(conn, hello, cost);
        self.conn = Some(conn);
    }

    fn transmit(&mut self, ctx: &mut ServiceCtx<'_>, req: &NaRequest) {
        let conn = self.conn.expect("transmit after connect");
        let bytes = req.encode();
        if let Ok((rec, cost)) = self.chans.seal(conn.0, &bytes) {
            ctx.send_delayed(conn, rec, cost);
        }
    }

    /// Requests `name → oid`; completes with `token`.
    pub fn add(&mut self, ctx: &mut ServiceCtx<'_>, name: &str, oid: ObjectId, token: u64) {
        self.ensure_connected(ctx);
        let req = NaRequest::Add {
            req: self.next_req,
            name: name.to_owned(),
            oid,
        };
        self.pending.insert(self.next_req, token);
        self.next_req += 1;
        if self.established {
            self.transmit(ctx, &req);
        } else {
            self.backlog.push(req);
        }
    }

    /// Requests removal of `name`; completes with `token`.
    pub fn remove(&mut self, ctx: &mut ServiceCtx<'_>, name: &str, token: u64) {
        self.ensure_connected(ctx);
        let req = NaRequest::Remove {
            req: self.next_req,
            name: name.to_owned(),
        };
        self.pending.insert(self.next_req, token);
        self.next_req += 1;
        if self.established {
            self.transmit(ctx, &req);
        } else {
            self.backlog.push(req);
        }
    }

    /// Routes a connection event; `true` if it belonged to this client.
    pub fn handle_conn_event(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        conn: ConnId,
        ev: &ConnEvent,
    ) -> bool {
        if self.conn != Some(conn) {
            return false;
        }
        match ev {
            ConnEvent::Opened => {}
            ConnEvent::Msg(data) => match self.chans.on_message(conn.0, data, ctx.rng()) {
                Ok((out, cost)) => {
                    for reply in &out.replies {
                        ctx.send_delayed(conn, reply.clone(), cost);
                    }
                    for ev in out.events {
                        match ev {
                            TlsEvent::Established { .. } => {
                                self.established = true;
                                let backlog = std::mem::take(&mut self.backlog);
                                for req in &backlog {
                                    self.transmit(ctx, req);
                                }
                            }
                            TlsEvent::Data(plaintext) => {
                                if let Ok(resp) = NaResponse::decode(&plaintext) {
                                    if let Some(token) = self.pending.remove(&resp.req) {
                                        self.events.push(NaEvent::Done {
                                            token,
                                            result: match resp.error {
                                                None => Ok(()),
                                                Some(e) => Err(e),
                                            },
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    ctx.close(conn);
                }
            },
            ConnEvent::Closed(reason) => {
                self.chans.remove(conn.0);
                self.conn = None;
                self.established = false;
                if !self.pending.is_empty() {
                    self.events.push(NaEvent::ConnectionFailed(*reason));
                    // Fail all outstanding requests.
                    for (_, token) in std::mem::take(&mut self.pending) {
                        self.events.push(NaEvent::Done {
                            token,
                            result: Err(format!("connection lost: {reason}")),
                        });
                    }
                    self.backlog.clear();
                }
            }
            ConnEvent::Incoming { .. } => return false,
        }
        true
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<NaEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_txt_round_trip() {
        let oid = ObjectId(0xDEAD_BEEF_0000_0001);
        let txt = oid_to_txt(oid);
        assert!(txt.starts_with("oid="));
        assert_eq!(txt_to_oid(&txt).unwrap(), oid);
        assert!(txt_to_oid("junk").is_none());
        assert!(txt_to_oid("oid=zz").is_none());
        assert!(txt_to_oid("oid=ff").is_none()); // wrong length
    }

    #[test]
    fn request_response_round_trip() {
        let reqs = vec![
            NaRequest::Add {
                req: 1,
                name: "/apps/gimp".into(),
                oid: ObjectId(7),
            },
            NaRequest::Remove {
                req: 2,
                name: "/apps/gimp".into(),
            },
        ];
        for r in reqs {
            assert_eq!(NaRequest::decode(&r.encode()).unwrap(), r);
        }
        for resp in [
            NaResponse {
                req: 1,
                error: None,
            },
            NaResponse {
                req: 2,
                error: Some("denied".into()),
            },
        ] {
            assert_eq!(NaResponse::decode(&resp.encode()).unwrap(), resp);
        }
        assert!(NaRequest::decode(&[9]).is_err());
        assert!(NaResponse::decode(&[1, 2, 3]).is_err());
    }
}
