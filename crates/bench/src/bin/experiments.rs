//! The experiment runner: regenerates every figure/claim of the paper
//! (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! experiments                 # run everything
//! experiments e3 e5           # run selected experiments
//! ```

use std::sync::Arc;

use gdn_core::{Browser, GdnHttpd, GdnOptions, ModOp, Scenario};
use globe_bench::{
    driver_hosts, gdn_world, gls_world, moderator_runtime, ms, print_table, publish_catalog,
    stale_fraction, wan_bytes, GlsDriver, GlsOp, InvokeGen,
};
use globe_crypto::gtls::Mode;
use globe_gls::{ContactAddress, DirectoryNode, GlsConfig, ObjectId};
use globe_gns::{GnsConfig, Resolver};
use globe_net::{ports, Endpoint, HostId, Topology};
use globe_rts::{protocol_id, PropagationMode};
use globe_sim::{SimDuration, SimTime};
use globe_workloads::{
    window_stats, AdaptiveController, CatalogSpec, HttpLoadGen, ManagedObject, ScenarioPolicy,
    UpdateGen,
};

const SEED: u64 = 20_000_626;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a.starts_with(name));
    println!("# GDN experiment runner (seed {SEED})");
    if want("e1") {
        e1_gls_locality();
    }
    if want("e2") {
        e2_gls_partition();
    }
    if want("e3") {
        e3_per_object_replication();
    }
    if want("e4") {
        e4_protocol_tradeoff();
    }
    if want("e5") {
        e5_tls_overhead();
    }
    if want("e6") {
        e6_gns_caching();
    }
    if want("e7") {
        e7_flash_crowd();
    }
    if want("e8") {
        e8_availability();
    }
    if want("e9") {
        e9_binding_cost();
    }
    if want("e10") {
        e10_scale();
    }
    println!("\ndone.");
}

fn grp_addr(host: HostId) -> ContactAddress {
    ContactAddress::new(Endpoint::new(host, ports::GRP), 1, 1)
}

/// E1 — paper §3.5: "the cost of a look up increases proportional to
/// the distance between client and nearest representative".
fn e1_gls_locality() {
    let (mut world, deploy) = gls_world(Topology::grid(2, 2, 2, 3), GlsConfig::default(), SEED);
    let oid = ObjectId(0xE1);
    world.add_service(
        HostId(2),
        ports::DRIVER,
        GlsDriver::new(
            Arc::clone(&deploy),
            HostId(2),
            vec![GlsOp::Insert(oid, grp_addr(HostId(0)))],
        ),
    );
    world.start();
    world.run_for(SimDuration::from_secs(5));

    // Clients at increasing tree distance from the replica at host 0.
    let clients = [
        ("same site", HostId(1)),
        ("same country", HostId(3)),
        ("same region", HostId(6)),
        ("other region", HostId(12)),
    ];
    for (_, h) in clients {
        world.add_service(
            h,
            ports::DRIVER,
            GlsDriver::new(Arc::clone(&deploy), h, vec![GlsOp::Lookup(oid)]),
        );
    }
    world.run_to_quiescence();
    let rows: Vec<Vec<String>> = clients
        .iter()
        .map(|&(label, h)| {
            let d = world
                .service::<GlsDriver>(h, ports::DRIVER)
                .expect("driver");
            let (hops, lat) = d.lookups[0];
            vec![
                label.to_owned(),
                world.topology().distance(h, HostId(0)).to_string(),
                hops.to_string(),
                ms(lat),
            ]
        })
        .collect();
    print_table(
        "E1 — GLS lookup cost vs distance to nearest replica",
        &[
            "client location",
            "tree distance",
            "directory hops",
            "latency (ms)",
        ],
        &rows,
    );
}

/// E2 — paper §3.5: root-node partitioning into subnodes spreads load.
fn e2_gls_partition() {
    let mut rows = Vec::new();
    for k in [1u32, 2, 4, 8] {
        let cfg = GlsConfig::default().with_root_subnodes(k);
        let (mut world, deploy) = gls_world(Topology::grid(2, 2, 2, 3), cfg, SEED + k as u64);
        // 128 objects registered in region 0; 512 lookups from region 1
        // (all must climb to the root).
        let inserts: Vec<GlsOp> = (0..128u128)
            .map(|i| GlsOp::Insert(ObjectId(0x2000 + i * 7919), grp_addr(HostId(0))))
            .collect();
        world.add_service(
            HostId(1),
            ports::DRIVER,
            GlsDriver::new(Arc::clone(&deploy), HostId(1), inserts),
        );
        world.start();
        world.run_for(SimDuration::from_secs(120));
        let lookups: Vec<GlsOp> = (0..512u128)
            .map(|i| GlsOp::Lookup(ObjectId(0x2000 + (i % 128) * 7919)))
            .collect();
        world.add_service(
            HostId(13),
            ports::DRIVER,
            GlsDriver::new(Arc::clone(&deploy), HostId(13), lookups),
        );
        world.run_to_quiescence();
        let loads: Vec<u64> = deploy
            .subnodes(deploy.root())
            .iter()
            .map(|ep| {
                world
                    .service::<DirectoryNode>(ep.host, ep.port)
                    .expect("root subnode")
                    .stats
                    .total()
            })
            .collect();
        let max = *loads.iter().max().expect("nonempty");
        let total: u64 = loads.iter().sum();
        let mean = total as f64 / loads.len() as f64;
        rows.push(vec![
            k.to_string(),
            total.to_string(),
            max.to_string(),
            format!("{mean:.0}"),
            format!("{:.2}", max as f64 / mean),
        ]);
    }
    print_table(
        "E2 — root directory-node partitioning (hash over object ids)",
        &[
            "subnodes",
            "total root requests",
            "max per subnode",
            "mean per subnode",
            "max/mean",
        ],
        &rows,
    );
}

/// E3 — paper §3.1 + [Pierre et al. 1999]: per-object scenarios beat
/// every uniform scenario on wide-area traffic AND response time.
fn e3_per_object_replication() {
    let mut results: Vec<(ScenarioPolicy, Vec<String>)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = ScenarioPolicy::ALL
            .iter()
            .map(|&policy| {
                s.spawn(move || {
                    let row = run_policy(policy);
                    (policy, row)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("policy run"));
        }
    });
    results.sort_by_key(|(p, _)| ScenarioPolicy::ALL.iter().position(|x| x == p));
    let rows: Vec<Vec<String>> = results.into_iter().map(|(_, row)| row).collect();
    print_table(
        "E3 — uniform vs per-object replication scenarios (40 packages, Zipf load, mixed update rates)",
        &["policy", "WAN MB", "mean (ms)", "median (ms)", "p99 (ms)", "stale reads", "requests"],
        &rows,
    );
}

fn run_policy(policy: ScenarioPolicy) -> Vec<String> {
    let topo = Topology::grid(2, 2, 2, 3);
    let (mut world, gdn) = gdn_world(topo, GdnOptions::default(), SEED ^ policy as u64);
    let spec = CatalogSpec {
        num_packages: 40,
        hot_update_rate: 60.0, // one update per minute on volatile packages
        ..CatalogSpec::default()
    };
    let catalog =
        globe_workloads::generate(&spec, world.topology(), &mut globe_sim::Rng::new(SEED));
    let oids = publish_catalog(
        &mut world,
        &gdn,
        &catalog,
        policy,
        PropagationMode::PushState,
        HostId(1),
    );
    let publish_done = world.now();
    let wan_setup = wan_bytes(&world);

    // Load: one generator per site at its local access point.
    let until = publish_done + SimDuration::from_secs(300);
    let names: Vec<String> = catalog.iter().map(|e| e.name.clone()).collect();
    let gens: Vec<(HostId, u16)> = driver_hosts(world.topology())
        .into_iter()
        .map(|h| {
            let httpd = gdn.httpd_for(world.topology(), h);
            world.add_service(
                h,
                ports::DRIVER + 1,
                HttpLoadGen::new(httpd, names.clone(), 0.9, 1.0, until, true),
            );
            (h, ports::DRIVER + 1)
        })
        .collect();
    // Updates: one maintainer, total rate = sum of catalog rates.
    let weights: Vec<(ObjectId, f64)> = oids
        .iter()
        .map(|&(i, oid)| (oid, catalog[i].updates_per_hour))
        .collect();
    let total_per_hour: f64 = catalog.iter().map(|e| e.updates_per_hour).sum();
    let upd_runtime = {
        let cfg_host = HostId(2);
        let tool = gdn.moderator_tool(world.topology(), cfg_host, "maint", vec![]);
        // The tool carries a runtime with moderator credentials; reuse
        // its construction path via a dedicated runtime instead.
        drop(tool);
        gdn.anonymous_runtime(cfg_host, 0x500)
    };
    // Writes must be authorized: use a moderator runtime.
    let upd_runtime = {
        drop(upd_runtime);
        moderator_runtime(&gdn, HostId(2))
    };
    world.add_service(
        HostId(2),
        ports::DRIVER + 2,
        UpdateGen::new(upd_runtime, weights, total_per_hour / 3600.0, until, 512),
    );
    world.run_until(until + SimDuration::from_secs(30));

    let mut samples = Vec::new();
    for (h, p) in gens {
        samples.extend(
            world
                .service::<HttpLoadGen>(h, p)
                .expect("load gen")
                .samples
                .clone(),
        );
    }
    let w = window_stats(&samples, publish_done, until);
    vec![
        policy.name().to_owned(),
        format!("{:.1}", (wan_bytes(&world) - wan_setup) as f64 / 1e6),
        format!("{:.1}", w.mean_ms),
        format!("{:.1}", w.median_ms),
        format!("{:.1}", w.p99_ms),
        format!("{:.3}", stale_fraction(&world)),
        w.count.to_string(),
    ]
}

/// E4 — paper §3.3/§7: protocol trade-offs across read/write mixes.
fn e4_protocol_tradeoff() {
    let mut rows = Vec::new();
    for (label, protocol, mode, replicate) in [
        (
            "client/server",
            protocol_id::CLIENT_SERVER,
            PropagationMode::PushState,
            false,
        ),
        (
            "master/slave push",
            protocol_id::MASTER_SLAVE,
            PropagationMode::PushState,
            true,
        ),
        (
            "master/slave invalidate",
            protocol_id::MASTER_SLAVE,
            PropagationMode::Invalidate,
            true,
        ),
        (
            "active",
            protocol_id::ACTIVE,
            PropagationMode::ApplyOps,
            true,
        ),
    ] {
        for write_pct in [0u32, 5, 20, 50] {
            let topo = Topology::grid(2, 1, 1, 3);
            let (mut world, gdn) = gdn_world(
                topo,
                GdnOptions::default(),
                SEED ^ (protocol as u64) << (8 + write_pct),
            );
            let gos0 = gdn.gos_endpoints[0];
            let gos1 = gdn.gos_endpoints[1];
            let scenario = if replicate {
                Scenario {
                    protocol,
                    mode,
                    replicas: vec![gos0, gos1],
                }
            } else {
                Scenario::single(gos0)
            };
            let tool = gdn.moderator_tool(
                world.topology(),
                HostId(1),
                "bench",
                vec![ModOp::Publish {
                    name: "/apps/target".into(),
                    description: "e4".into(),
                    files: vec![("pkg.tar".into(), vec![0u8; 16 * 1024])],
                    scenario,
                }],
            );
            world.add_service(HostId(1), ports::DRIVER, tool);
            world.start();
            world.run_for(SimDuration::from_secs(30));
            let oid = match world
                .service::<gdn_core::ModeratorTool>(HostId(1), ports::DRIVER)
                .expect("tool")
                .results
                .first()
            {
                Some(gdn_core::ModEvent::PublishDone {
                    result: Ok(oid), ..
                }) => *oid,
                other => panic!("publish failed: {other:?}"),
            };
            // One generator per region, invoking directly.
            let until = world.now() + SimDuration::from_secs(120);
            let gen_hosts = [HostId(2), HostId(5)];
            for h in gen_hosts {
                let rt = moderator_runtime(&gdn, h);
                world.add_service(
                    h,
                    ports::DRIVER + 1,
                    InvokeGen::new(rt, oid, write_pct as f64 / 100.0, 2.0, until),
                );
            }
            let before_wan = wan_bytes(&world);
            world.run_until(until + SimDuration::from_secs(30));
            let mut reads_ms = Vec::new();
            let mut writes_ms = Vec::new();
            let mut n = 0;
            for h in gen_hosts {
                let g = world
                    .service::<InvokeGen>(h, ports::DRIVER + 1)
                    .expect("invoke gen");
                reads_ms.push(g.mean_latency_ms(false));
                writes_ms.push(g.mean_latency_ms(true));
                n += g.done.len();
            }
            rows.push(vec![
                label.to_owned(),
                format!("{write_pct}%"),
                format!("{:.1}", reads_ms.iter().sum::<f64>() / 2.0),
                format!("{:.1}", writes_ms.iter().sum::<f64>() / 2.0),
                format!("{:.2}", (wan_bytes(&world) - before_wan) as f64 / 1e6),
                format!("{:.3}", stale_fraction(&world)),
                n.to_string(),
            ]);
        }
    }
    print_table(
        "E4 — replication-protocol trade-offs vs write fraction (2 regions, 16 KB object)",
        &[
            "protocol",
            "writes",
            "read mean (ms)",
            "write mean (ms)",
            "WAN MB",
            "stale reads",
            "ops",
        ],
        &rows,
    );
}

/// E5 — paper §6.3: TLS everywhere; "paying for something we do not
/// need: confidentiality".
fn e5_tls_overhead() {
    let mut rows = Vec::new();
    for mode in [Mode::Null, Mode::AuthOnly, Mode::AuthEncrypt] {
        let topo = Topology::grid(2, 1, 1, 3);
        let options = GdnOptions {
            tls_mode: mode,
            ..GdnOptions::default()
        };
        let (mut world, gdn) = gdn_world(topo, options, SEED ^ mode as u64);
        let gos = gdn.gos_endpoints[0];
        let tool = gdn.moderator_tool(
            world.topology(),
            HostId(1),
            "bench",
            vec![ModOp::Publish {
                name: "/apps/big".into(),
                description: "e5".into(),
                files: vec![("pkg.tar".into(), vec![0x42; 1 << 20])],
                scenario: Scenario::single(gos),
            }],
        );
        world.add_service(HostId(1), ports::DRIVER, tool);
        world.start();
        let publish_secs = loop {
            world.run_for(SimDuration::from_secs(1));
            let t = world
                .service::<gdn_core::ModeratorTool>(HostId(1), ports::DRIVER)
                .expect("tool");
            match t.results.first() {
                Some(gdn_core::ModEvent::PublishDone { result: Ok(_), .. }) => break world.now(),
                Some(other) => panic!("publish failed under {mode:?}: {other:?}"),
                None => assert!(world.now() < SimTime::from_secs(300), "publish stalled"),
            }
        };

        // Let the Naming Authority's update batch reach the zone
        // before resolving (negative answers would be cached).
        world.run_for(SimDuration::from_secs(10));
        // 10 sequential 1 MB downloads from the far region.
        let user = HostId(5);
        let httpd = gdn.httpd_for(world.topology(), user);
        let fetches: Vec<String> = (0..10)
            .map(|_| "/pkg/apps/big?file=pkg.tar".into())
            .collect();
        world.add_service(user, ports::DRIVER, Browser::new(httpd, fetches));
        world.run_for(SimDuration::from_secs(600));
        let b = world
            .service::<Browser>(user, ports::DRIVER)
            .expect("browser");
        assert!(b.done(), "downloads incomplete under {mode:?}");
        assert!(
            b.results.iter().all(|r| r.status == 200),
            "non-200 under {mode:?}: {:?}",
            b.results.iter().map(|r| r.status).collect::<Vec<_>>()
        );
        let mut lats: Vec<u64> = b.results.iter().map(|r| r.latency.as_micros()).collect();
        lats.sort_unstable();
        let median_ms = lats[lats.len() / 2] as f64 / 1000.0;
        let first_ms = b.results[0].latency.as_micros() as f64 / 1000.0;
        let tput = 1.0 / (median_ms / 1000.0); // MB/s at 1 MB per fetch
        rows.push(vec![
            mode.name().to_owned(),
            format!("{:.0}", first_ms),
            format!("{:.0}", median_ms),
            format!("{tput:.2}"),
            format!("{:.1}", publish_secs.as_micros() as f64 / 1e6),
        ]);
    }
    print_table(
        "E5 — channel security modes, 1 MB downloads across one region (10 fetches)",
        &[
            "mode",
            "first fetch (ms)",
            "median fetch (ms)",
            "throughput (MB/s)",
            "publish (s)",
        ],
        &rows,
    );
}

/// E6 — paper §5: DNS-based GNS scales through caching and batching.
fn e6_gns_caching() {
    use gdn_core::ModEvent;
    let mut rows = Vec::new();
    for ttl in [1u32, 60, 3600] {
        let topo = Topology::grid(2, 2, 2, 3);
        let options = GdnOptions {
            gns: GnsConfig {
                record_ttl: ttl,
                batch_interval: SimDuration::from_secs(5),
                ..GnsConfig::default()
            },
            ..GdnOptions::default()
        };
        let (mut world, gdn) = gdn_world(topo, options, SEED ^ ttl as u64);
        // Publish 10 names.
        let ops: Vec<ModOp> = (0..10)
            .map(|i| ModOp::Publish {
                name: format!("/apps/e6pkg{i}"),
                description: "e6".into(),
                files: vec![("f".into(), vec![0u8; 64])],
                scenario: Scenario::single(gdn.gos_endpoints[0]),
            })
            .collect();
        let tool = gdn.moderator_tool(world.topology(), HostId(1), "bench", ops);
        world.add_service(HostId(1), ports::DRIVER, tool);
        world.start();
        loop {
            world.run_for(SimDuration::from_secs(5));
            let t = world
                .service::<gdn_core::ModeratorTool>(HostId(1), ports::DRIVER)
                .expect("tool");
            if t.results.len() == 10 {
                assert!(t
                    .results
                    .iter()
                    .all(|r| matches!(r, ModEvent::PublishDone { result: Ok(_), .. })));
                break;
            }
            assert!(world.now() < SimTime::from_secs(900), "publishes stalled");
        }
        let auth_before: u64 = world.metrics().counter("dns.auth.queries");

        // Paced resolution rounds directly at one far site's resolver:
        // every 30 s, resolve all 10 names; 10 rounds.
        let user = HostId(13);
        world.add_service(
            user,
            ports::DRIVER,
            PacedResolver::new(
                &gdn,
                world.topology(),
                user,
                (0..10).map(|i| format!("/apps/e6pkg{i}")).collect(),
                SimDuration::from_secs(30),
                10,
            ),
        );
        world.run_for(SimDuration::from_secs(400));
        let d = world
            .service::<PacedResolver>(user, ports::DRIVER)
            .expect("driver");
        assert_eq!(d.latencies.len(), 100, "resolutions incomplete");
        let cold = d.latencies[0];
        let mut warm: Vec<u64> = d.latencies[10..].iter().map(|l| l.as_micros()).collect();
        warm.sort_unstable();
        let resolver_ep = gdn.gns.resolver_for(world.topology(), user);
        let resolver = world
            .service::<Resolver>(resolver_ep.host, resolver_ep.port)
            .expect("resolver");
        rows.push(vec![
            ttl.to_string(),
            ms(cold),
            format!("{:.1}", warm[warm.len() / 2] as f64 / 1000.0),
            (world.metrics().counter("dns.auth.queries") - auth_before).to_string(),
            resolver.stats.cache_hits.to_string(),
            world.metrics().counter("gns.na.batches").to_string(),
        ]);
    }
    print_table(
        "E6 — GNS/DNS caching: 10 rounds of 10 name resolutions, 30 s apart, one site",
        &[
            "record TTL (s)",
            "cold resolve (ms)",
            "median warm (ms)",
            "authoritative queries",
            "resolver cache hits",
            "update batches",
        ],
        &rows,
    );
}

/// Timer-paced GNS resolution driver for E6.
struct PacedResolver {
    gns: globe_gns::GnsClient,
    names: Vec<String>,
    interval: SimDuration,
    rounds_left: usize,
    issued: u64,
    /// Latency per completed resolution, in completion order.
    latencies: Vec<SimDuration>,
}

impl PacedResolver {
    fn new(
        gdn: &gdn_core::GdnDeployment,
        topo: &Topology,
        host: HostId,
        names: Vec<String>,
        interval: SimDuration,
        rounds: usize,
    ) -> PacedResolver {
        PacedResolver {
            gns: globe_gns::GnsClient::new(&gdn.gns, topo, host, 0x0600),
            names,
            interval,
            rounds_left: rounds,
            issued: 0,
            latencies: Vec::new(),
        }
    }

    fn round(&mut self, ctx: &mut globe_net::ServiceCtx<'_>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        for name in self.names.clone() {
            self.issued += 1;
            let token = self.issued;
            self.gns.resolve(ctx, &name, token);
        }
        if self.rounds_left > 0 {
            ctx.set_timer(self.interval, globe_net::ns_token(0x0777, 1));
        }
        self.drain();
    }

    fn drain(&mut self) {
        for ev in self.gns.take_events() {
            let globe_gns::GnsEvent::Resolved {
                result, latency, ..
            } = ev;
            assert!(result.is_ok(), "resolution failed: {result:?}");
            self.latencies.push(latency);
        }
    }
}

impl globe_net::Service for PacedResolver {
    fn on_start(&mut self, ctx: &mut globe_net::ServiceCtx<'_>) {
        self.round(ctx);
    }
    fn on_timer(&mut self, ctx: &mut globe_net::ServiceCtx<'_>, token: u64) {
        if globe_net::owns_token(0x0777, token) {
            self.round(ctx);
            return;
        }
        if self.gns.handle_timer(ctx, token) {
            self.drain();
        }
    }
    fn on_datagram(
        &mut self,
        ctx: &mut globe_net::ServiceCtx<'_>,
        from: Endpoint,
        payload: Vec<u8>,
    ) {
        if self.gns.handle_datagram(ctx, from, &payload) {
            self.drain();
        }
    }
    globe_net::impl_service_any!();
}

/// E7 — paper §3.1: the replication scenario should adapt to
/// popularity changes (flash crowd).
fn e7_flash_crowd() {
    let mut rows = Vec::new();
    for adaptive in [false, true] {
        let topo = Topology::grid(2, 1, 1, 3);
        let (mut world, gdn) = gdn_world(topo, GdnOptions::default(), SEED ^ adaptive as u64);
        let spec = CatalogSpec {
            num_packages: 4,
            hot_update_fraction: 0.0,
            large_fraction: 0.0,
            small_size: 32 * 1024,
            ..CatalogSpec::default()
        };
        let mut catalog =
            globe_workloads::generate(&spec, world.topology(), &mut globe_sim::Rng::new(SEED));
        for e in &mut catalog {
            e.home_region = 0; // everything published in region 0
        }
        let oids = publish_catalog(
            &mut world,
            &gdn,
            &catalog,
            ScenarioPolicy::Central,
            PropagationMode::PushState,
            HostId(1),
        );
        let t0 = world.now();

        // Background load from region 1, then a flash crowd on pkg0.
        let names: Vec<String> = catalog.iter().map(|e| e.name.clone()).collect();
        let user = HostId(5);
        let httpd = gdn.httpd_for(world.topology(), user);
        let crowd_start = t0 + SimDuration::from_secs(60);
        let end = t0 + SimDuration::from_secs(240);
        world.add_service(
            user,
            ports::DRIVER,
            HttpLoadGen::new(httpd, names.clone(), 0.0, 0.5, crowd_start, true),
        );
        if adaptive {
            let objects: Vec<ManagedObject> = oids
                .iter()
                .map(|&(i, oid)| ManagedObject::package(i, oid, gdn.gos_endpoints[0]))
                .collect();
            let region_gos = vec![gdn.gos_endpoints[0], gdn.gos_endpoints[1]];
            let rt = moderator_runtime(&gdn, HostId(2));
            world.add_service(
                HostId(2),
                ports::DRIVER + 3,
                AdaptiveController::new(rt, objects, region_gos, SimDuration::from_secs(10), 20),
            );
        }
        world.run_until(crowd_start);
        // The crowd: 4 requests/s on the hot object from region 1.
        world.add_service(
            user,
            ports::DRIVER + 1,
            HttpLoadGen::new(httpd, vec![names[0].clone()], 0.0, 4.0, end, true),
        );
        world.run_until(end + SimDuration::from_secs(30));

        let mut samples = world
            .service::<HttpLoadGen>(user, ports::DRIVER + 1)
            .expect("crowd gen")
            .samples
            .clone();
        samples.extend(
            world
                .service::<HttpLoadGen>(user, ports::DRIVER)
                .expect("background gen")
                .samples
                .clone(),
        );
        let early = window_stats(
            &samples,
            crowd_start,
            crowd_start + SimDuration::from_secs(60),
        );
        let late = window_stats(&samples, end - SimDuration::from_secs(60), end);
        rows.push(vec![
            if adaptive {
                "adaptive"
            } else {
                "static central"
            }
            .to_owned(),
            format!("{:.1}", early.median_ms),
            format!("{:.1}", late.median_ms),
            world.metrics().counter("adapt.replicas_added").to_string(),
            format!("{:.1}", wan_bytes(&world) as f64 / 1e6),
        ]);
    }
    print_table(
        "E7 — flash crowd on one package (region 1 crowd, master in region 0)",
        &[
            "run",
            "crowd median early (ms)",
            "crowd median late (ms)",
            "replicas added",
            "WAN MB",
        ],
        &rows,
    );
}

/// E8 — paper §6.1: replication as the availability technique.
fn e8_availability() {
    let mut rows = Vec::new();
    for replicas in [1usize, 2, 3] {
        // 3 regions × 2 sites. Object servers run on each site's SECOND
        // host so that crashing a replica host never takes down the
        // site's GLS directory node, DNS resolver or HTTPD (which live
        // on first hosts) — the experiment isolates *replica* failures.
        let topo = Topology::grid(3, 1, 2, 3);
        let gos_hosts: Vec<HostId> = topo
            .sites()
            .filter_map(|st| topo.hosts_in_site(st).get(1).copied())
            .collect();
        let options = GdnOptions {
            gos_hosts,
            // Short GLS leases: a crashed replica's registration ages
            // out within its 30 s downtime, so re-binds find survivors.
            gls: globe_gls::GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(15)),
            ..GdnOptions::default()
        };
        let (mut world, gdn) = gdn_world(topo, options, SEED ^ replicas as u64);
        let site0_gos: Vec<Endpoint> = gdn
            .gos_endpoints
            .iter()
            .copied()
            .filter(|ep| world.topology().site_of(ep.host).0 % 2 == 0)
            .collect();
        let chosen: Vec<Endpoint> = site0_gos.into_iter().take(replicas).collect();
        let scenario = if replicas == 1 {
            Scenario::single(chosen[0])
        } else {
            Scenario::master_slave(chosen.clone(), PropagationMode::PushState)
        };
        let tool = gdn.moderator_tool(
            world.topology(),
            HostId(1),
            "bench",
            vec![ModOp::Publish {
                name: "/apps/critical".into(),
                description: "e8".into(),
                files: vec![("pkg.tar".into(), vec![1u8; 32 * 1024])],
                scenario,
            }],
        );
        world.add_service(HostId(1), ports::DRIVER, tool);
        world.start();
        world.run_for(SimDuration::from_secs(30));

        // Rolling crashes: each replica host down 30 s out of every
        // 90 s, staggered so at least one replica is always up when
        // there are >= 2.
        let t0 = world.now();
        let end = t0 + SimDuration::from_secs(600);
        for (i, ep) in chosen.iter().enumerate() {
            let mut t = t0 + SimDuration::from_secs(30 * i as u64);
            while t < end {
                world.schedule_crash(ep.host, t + SimDuration::from_secs(1));
                world.schedule_recover(ep.host, t + SimDuration::from_secs(31));
                t += SimDuration::from_secs(90);
            }
        }
        // The user sits in region 2, site 1 (never crashed).
        let user = *world
            .topology()
            .hosts_in_site(globe_net::SiteId(5))
            .last()
            .expect("site has hosts");
        let httpd = gdn.httpd_for(world.topology(), user);
        assert!(
            !chosen.iter().any(|c| c.host == httpd.host),
            "user access point must not be a replica host"
        );
        world.add_service(
            user,
            ports::DRIVER,
            HttpLoadGen::new(httpd, vec!["/apps/critical".into()], 0.0, 0.5, end, true),
        );
        world.run_until(end + SimDuration::from_secs(60));
        let g = world
            .service::<HttpLoadGen>(user, ports::DRIVER)
            .expect("load gen");
        let total = g.samples.len();
        let ok = g.samples.iter().filter(|s| s.status == 200).count();
        let w = window_stats(&g.samples, t0, end);
        rows.push(vec![
            replicas.to_string(),
            total.to_string(),
            format!("{:.1}%", 100.0 * ok as f64 / total.max(1) as f64),
            format!("{:.1}", w.median_ms),
            format!("{:.1}", w.p99_ms),
        ]);
    }
    print_table(
        "E8 — availability under rolling replica crashes (each replica down 1/3 of the time)",
        &[
            "replicas",
            "requests",
            "success rate",
            "median (ms)",
            "p99 (ms)",
        ],
        &rows,
    );
}

/// E9 — paper §3.4: binding cost (lookup + implementation loading) vs
/// repeat access.
fn e9_binding_cost() {
    let topo = Topology::grid(2, 2, 2, 3);
    let (mut world, gdn) = gdn_world(topo, GdnOptions::default(), SEED);
    let gos = gdn.gos_endpoints[0];
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "bench",
        vec![ModOp::Publish {
            name: "/apps/e9".into(),
            description: "e9".into(),
            files: vec![("pkg.tar".into(), vec![0u8; 64 * 1024])],
            scenario: Scenario::single(gos),
        }],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));

    let user = HostId(13);
    let httpd_ep = gdn.httpd_for(world.topology(), user);
    let fetches: Vec<String> = (0..5).map(|_| "/pkg/apps/e9?file=pkg.tar".into()).collect();
    world.add_service(user, ports::DRIVER, Browser::new(httpd_ep, fetches));
    world.run_for(SimDuration::from_secs(300));
    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    assert!(b.done());
    let httpd = world
        .service::<GdnHttpd>(httpd_ep.host, httpd_ep.port)
        .expect("httpd");
    let rows = vec![
        vec![
            "first access (resolve + bind + load + fetch)".to_owned(),
            ms(b.results[0].latency),
        ],
        vec![
            "second access (bound representative)".to_owned(),
            ms(b.results[1].latency),
        ],
        vec![
            "steady state (median of 3..5)".to_owned(),
            ms(b.results[2..]
                .iter()
                .map(|r| r.latency)
                .min()
                .expect("fetches")),
        ],
        vec![
            "HTTPD name-cache hits".to_owned(),
            httpd.stats.name_cache_hits.to_string(),
        ],
        vec![
            "implementation loads charged".to_owned(),
            world.metrics().counter("rts.impl_loads").to_string(),
        ],
    ];
    print_table(
        "E9 — binding cost: first vs repeat package access through one HTTPD",
        &["quantity", "value"],
        &rows,
    );
}

/// E10 — scale: GLS behaviour as the object population grows.
fn e10_scale() {
    let mut rows = Vec::new();
    for n in [200usize, 1000, 3000] {
        let (mut world, deploy) = gls_world(
            Topology::grid(2, 2, 2, 3),
            GlsConfig::default().with_root_subnodes(4),
            SEED ^ n as u64,
        );
        // Register n objects spread over all sites.
        let hosts: Vec<HostId> = driver_hosts(world.topology());
        let mut scripts: Vec<Vec<GlsOp>> = vec![Vec::new(); hosts.len()];
        for i in 0..n {
            let owner = i % hosts.len();
            scripts[owner].push(GlsOp::Insert(
                ObjectId(0xA000 + i as u128 * 104_729),
                grp_addr(hosts[owner]),
            ));
        }
        for (i, script) in scripts.into_iter().enumerate() {
            world.add_service(
                hosts[i],
                ports::DRIVER,
                GlsDriver::new(Arc::clone(&deploy), hosts[i], script),
            );
        }
        world.start();
        world.run_for(SimDuration::from_secs(1200));
        // 300 lookups from one site for random objects.
        let lookups: Vec<GlsOp> = (0..300)
            .map(|i| GlsOp::Lookup(ObjectId(0xA000 + ((i * 37) % n) as u128 * 104_729)))
            .collect();
        world.add_service(
            HostId(13),
            ports::DRIVER + 1,
            GlsDriver::new(Arc::clone(&deploy), HostId(13), lookups),
        );
        world.run_to_quiescence();
        let d = world
            .service::<GlsDriver>(HostId(13), ports::DRIVER + 1)
            .expect("driver");
        assert_eq!(d.lookups.len(), 300);
        let mean_us: u64 =
            d.lookups.iter().map(|(_, l)| l.as_micros()).sum::<u64>() / d.lookups.len() as u64;
        let mean_hops: f64 =
            d.lookups.iter().map(|(h, _)| *h as f64).sum::<f64>() / d.lookups.len() as f64;
        let root_entries: usize = deploy
            .subnodes(deploy.root())
            .iter()
            .map(|ep| {
                world
                    .service::<DirectoryNode>(ep.host, ep.port)
                    .expect("root subnode")
                    .num_entries()
            })
            .sum();
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", mean_us as f64 / 1000.0),
            format!("{mean_hops:.2}"),
            root_entries.to_string(),
        ]);
    }
    print_table(
        "E10 — GLS scale: lookup cost and root state vs object population",
        &[
            "objects",
            "mean lookup (ms)",
            "mean hops",
            "root entries (all subnodes)",
        ],
        &rows,
    );
}
