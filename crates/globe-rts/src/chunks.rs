//! Content-addressed chunk storage: the compact-distribution substrate.
//!
//! Package-style DSOs split file contents into fixed-size,
//! content-addressed chunks (SHA-256) and keep only *references* in
//! their replicated state; the bytes live in one per-runtime
//! [`ChunkStore`] shared by every local representative on the host.
//! Two consequences fall out of that split:
//!
//! - **dedup** — identical content stores once, across versions of one
//!   package *and* across unrelated packages on the same host;
//! - **compact propagation** — a master can announce a new version as a
//!   chunk manifest (`ChunkAnnounce`), and a receiver diffs the
//!   manifest against its store and fetches only the chunks it lacks
//!   (BIP-152-style compact relay; see `protocols.rs`).
//!
//! Chunks are refcounted: a semantics subobject retains every chunk its
//! state references and releases them when the reference goes away
//! (file replaced/removed, state reinstalled, object dropped). A chunk
//! is freed only when its last retainer lets go; chunks inserted but
//! never retained (e.g. fetched ahead of an install that then failed)
//! linger as cache until the store is dropped — wasted memory at worst,
//! never a dangling reference.

use std::cell::RefCell;
use std::rc::Rc;

use globe_crypto::sha256::sha256;
use globe_net::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Fixed chunk size. Small enough that single-file edits in sweep-sized
/// packages (a few KB per file) re-ship only the touched chunks, large
/// enough that manifest overhead (40 bytes/chunk announced, 12 on the
/// wire) stays below ~1%.
pub const CHUNK_SIZE: usize = 4096;

/// Small-tail rule: a final fragment shorter than this merges into the
/// previous chunk instead of becoming its own (the last chunk of a
/// payload may be up to `CHUNK_SIZE + TAIL_MIN - 1` bytes).
pub const TAIL_MIN: usize = CHUNK_SIZE / 2;

/// A chunk's content address: the SHA-256 of its bytes.
pub type ChunkId = [u8; 32];

/// Computes a chunk's content address.
pub fn chunk_id(data: &[u8]) -> ChunkId {
    sha256(data)
}

/// The compact 8-byte prefix of a chunk id used in announcements
/// (full ids would quintuple manifest bytes). A prefix collision makes
/// a receiver *skip fetching* a chunk it actually lacks — caught at
/// install time because manifests carry full ids, and vanishingly rare
/// (2⁻⁶⁴ per pair) since the prefix is half a cryptographic hash.
pub fn short_id(id: &ChunkId) -> u64 {
    u64::from_be_bytes(id[..8].try_into().unwrap())
}

/// A reference to one stored chunk: full content address plus length.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChunkRef {
    /// The chunk's content address.
    pub id: ChunkId,
    /// The chunk's length in bytes.
    pub len: u32,
}

impl ChunkRef {
    /// Serializes into `w`.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_raw(&self.id);
        w.put_u32(self.len);
    }

    /// Deserializes from `r`.
    pub fn decode(r: &mut WireReader<'_>) -> Result<ChunkRef, WireError> {
        let mut id = [0u8; 32];
        id.copy_from_slice(r.raw(32)?);
        Ok(ChunkRef { id, len: r.u32()? })
    }
}

impl crate::interface::WireCodec for ChunkRef {
    fn encode(&self, w: &mut WireWriter) {
        ChunkRef::encode(self, w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        ChunkRef::decode(r)
    }
}

/// Splits a payload at the fixed chunk boundaries, merging a small tail
/// into the last chunk (see [`TAIL_MIN`]). Empty payloads have no
/// chunks.
pub fn split(data: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::with_capacity(data.len() / CHUNK_SIZE + 1);
    let mut rest = data;
    while rest.len() >= CHUNK_SIZE + TAIL_MIN {
        let (head, tail) = rest.split_at(CHUNK_SIZE);
        out.push(head);
        rest = tail;
    }
    if !rest.is_empty() {
        out.push(rest);
    }
    out
}

/// Cumulative activity counters of a [`ChunkStore`]. All counters are
/// monotone (bytes_stored counts everything ever inserted, not resident
/// bytes); the runtime drains per-dispatch deltas into its metrics
/// registry.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ChunkStats {
    /// Distinct chunks inserted (first sight of the content).
    pub stored: u64,
    /// Bytes of those first-sight inserts.
    pub bytes_stored: u64,
    /// Inserts that found the content already present.
    pub dedup_hits: u64,
    /// Bytes those hits did *not* re-store: the dedup win.
    pub bytes_deduped: u64,
    /// Chunks inserted via the fetch path (network-received bytes).
    pub fetched: u64,
    /// Bytes inserted via the fetch path.
    pub bytes_fetched: u64,
    /// Announcement manifest entries already present locally
    /// (fetches avoided by compact propagation).
    pub announce_hits: u64,
    /// Announcement manifest entries not present (fetched next).
    pub announce_misses: u64,
    /// Chunks freed when their last retainer released them.
    pub released: u64,
}

struct ChunkEntry {
    data: Vec<u8>,
    refs: u64,
}

/// The per-runtime content-addressed chunk store (see module docs).
#[derive(Default)]
pub struct ChunkStore {
    entries: BTreeMap<ChunkId, ChunkEntry>,
    /// Short-id index for announcement diffing; first insert wins on
    /// the (astronomically unlikely) prefix collision — the loser just
    /// gets re-fetched, full ids keep installs correct.
    short: BTreeMap<u64, ChunkId>,
    resident_bytes: u64,
    stats: ChunkStats,
    drained: ChunkStats,
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> ChunkStore {
        ChunkStore::default()
    }

    /// Inserts chunk content (no-op if already present) and returns its
    /// reference. The chunk starts (or stays) at its current refcount;
    /// callers that hold the reference must [`ChunkStore::retain`] it.
    pub fn insert(&mut self, data: &[u8]) -> ChunkRef {
        let id = chunk_id(data);
        let len = data.len() as u32;
        if self.entries.contains_key(&id) {
            self.stats.dedup_hits += 1;
            self.stats.bytes_deduped += len as u64;
        } else {
            self.stats.stored += 1;
            self.stats.bytes_stored += len as u64;
            self.resident_bytes += len as u64;
            self.entries.insert(
                id,
                ChunkEntry {
                    data: data.to_vec(),
                    refs: 0,
                },
            );
            self.short.entry(short_id(&id)).or_insert(id);
        }
        ChunkRef { id, len }
    }

    /// [`ChunkStore::insert`] for network-received chunk bytes; also
    /// counts the fetch-path stats the compact-propagation experiments
    /// report.
    pub fn insert_fetched(&mut self, data: &[u8]) -> ChunkRef {
        self.stats.fetched += 1;
        self.stats.bytes_fetched += data.len() as u64;
        self.insert(data)
    }

    /// Takes one reference on a stored chunk. Returns `false` (and does
    /// nothing) if the chunk is not present.
    pub fn retain(&mut self, id: &ChunkId) -> bool {
        match self.entries.get_mut(id) {
            Some(e) => {
                e.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Drops one reference; frees the chunk when the last reference
    /// goes away. Unreferenced (never-retained) chunks are not freed —
    /// they are cache, not garbage.
    pub fn release(&mut self, id: &ChunkId) {
        let Some(e) = self.entries.get_mut(id) else {
            return;
        };
        if e.refs == 0 {
            return;
        }
        e.refs -= 1;
        if e.refs == 0 {
            let len = self.entries.remove(id).map(|e| e.data.len()).unwrap_or(0);
            self.resident_bytes -= len as u64;
            self.stats.released += 1;
            if self.short.get(&short_id(id)) == Some(id) {
                self.short.remove(&short_id(id));
            }
        }
    }

    /// The stored bytes of a chunk.
    pub fn get(&self, id: &ChunkId) -> Option<&[u8]> {
        self.entries.get(id).map(|e| e.data.as_slice())
    }

    /// Whether a chunk is present.
    pub fn contains(&self, id: &ChunkId) -> bool {
        self.entries.contains_key(id)
    }

    /// The current refcount of a chunk (tests).
    pub fn refs(&self, id: &ChunkId) -> Option<u64> {
        self.entries.get(id).map(|e| e.refs)
    }

    /// Resolves one announcement manifest entry against the store: the
    /// full id of a present chunk whose length also matches, `None`
    /// when the chunk must be fetched. Counts announce hits/misses.
    pub fn resolve_short(&mut self, short: u64, len: u32) -> Option<ChunkId> {
        let hit = self
            .short
            .get(&short)
            .copied()
            .filter(|id| self.entries.get(id).map(|e| e.data.len() as u32) == Some(len));
        match hit {
            Some(id) => {
                self.stats.announce_hits += 1;
                Some(id)
            }
            None => {
                self.stats.announce_misses += 1;
                None
            }
        }
    }

    /// Number of resident chunks.
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// Resident (currently stored) bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> ChunkStats {
        self.stats
    }

    /// The counter deltas since the previous drain (the runtime feeds
    /// these into its inc-only metrics registry).
    pub fn drain_stats(&mut self) -> ChunkStats {
        let d = ChunkStats {
            stored: self.stats.stored - self.drained.stored,
            bytes_stored: self.stats.bytes_stored - self.drained.bytes_stored,
            dedup_hits: self.stats.dedup_hits - self.drained.dedup_hits,
            bytes_deduped: self.stats.bytes_deduped - self.drained.bytes_deduped,
            fetched: self.stats.fetched - self.drained.fetched,
            bytes_fetched: self.stats.bytes_fetched - self.drained.bytes_fetched,
            announce_hits: self.stats.announce_hits - self.drained.announce_hits,
            announce_misses: self.stats.announce_misses - self.drained.announce_misses,
            released: self.stats.released - self.drained.released,
        };
        self.drained = self.stats;
        d
    }
}

/// The shared handle to a runtime's chunk store. Semantics subobjects
/// are single-threaded (they live inside one runtime dispatch loop), so
/// a plain `Rc<RefCell<..>>` suffices.
pub type ChunkStoreRef = Rc<RefCell<ChunkStore>>;

/// Creates a fresh store handle.
pub fn new_store() -> ChunkStoreRef {
    Rc::new(RefCell::new(ChunkStore::new()))
}

/// Splits `data`, inserts every chunk and takes a reference on each;
/// returns the ordered references that reassemble the payload.
pub fn store_chunks(store: &ChunkStoreRef, data: &[u8]) -> Vec<ChunkRef> {
    let mut s = store.borrow_mut();
    split(data)
        .into_iter()
        .map(|piece| {
            let r = s.insert(piece);
            s.retain(&r.id);
            r
        })
        .collect()
}

/// Releases one reference on each chunk of a manifest.
pub fn release_chunks(store: &ChunkStoreRef, refs: &[ChunkRef]) {
    let mut s = store.borrow_mut();
    for r in refs {
        s.release(&r.id);
    }
}

/// Reassembles a payload from its chunk references, or `None` if any
/// chunk is missing.
pub fn assemble(store: &ChunkStoreRef, refs: &[ChunkRef]) -> Option<Vec<u8>> {
    let s = store.borrow();
    let mut out = Vec::with_capacity(refs.iter().map(|r| r.len as usize).sum());
    for r in refs {
        out.extend_from_slice(s.get(&r.id)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic bytes for content tests.
    fn patterned(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn split_boundaries_and_tail_merge() {
        assert!(split(&[]).is_empty());
        for len in [
            1,
            CHUNK_SIZE - 1,
            CHUNK_SIZE,
            CHUNK_SIZE + 1,
            CHUNK_SIZE + TAIL_MIN - 1,
            CHUNK_SIZE + TAIL_MIN,
            3 * CHUNK_SIZE,
            3 * CHUNK_SIZE + 7,
        ] {
            let data = patterned(len, len as u64);
            let pieces = split(&data);
            // Every piece respects the size rules...
            for (i, p) in pieces.iter().enumerate() {
                if i + 1 < pieces.len() {
                    assert_eq!(p.len(), CHUNK_SIZE);
                } else {
                    assert!(
                        p.len() < CHUNK_SIZE + TAIL_MIN,
                        "tail too large at len {len}"
                    );
                    assert!(!p.is_empty());
                }
            }
            // ...and concatenation reproduces the input exactly.
            assert_eq!(pieces.concat(), data, "round trip failed at len {len}");
        }
        // The tail-merge rule specifically: a tail below TAIL_MIN rides
        // in the last chunk instead of becoming its own.
        let just_under = patterned(CHUNK_SIZE + TAIL_MIN - 1, 9);
        assert_eq!(split(&just_under).len(), 1);
        let at_limit = patterned(CHUNK_SIZE + TAIL_MIN, 9);
        assert_eq!(split(&at_limit).len(), 2);
    }

    /// Property sweep: chunking round-trips exact bytes through the
    /// store for many pseudo-random sizes and contents.
    #[test]
    fn store_round_trip_property() {
        let store = new_store();
        let mut x: u64 = 0xA5A5_1234;
        for i in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let len = (x % (4 * CHUNK_SIZE as u64 + 3)) as usize;
            let data = patterned(len, x ^ i);
            let refs = store_chunks(&store, &data);
            assert_eq!(assemble(&store, &refs).as_deref(), Some(data.as_slice()));
        }
    }

    #[test]
    fn identical_content_identical_ids_and_dedup() {
        let store = new_store();
        let data = patterned(3 * CHUNK_SIZE, 7);
        let a = store_chunks(&store, &data);
        let b = store_chunks(&store, &data);
        assert_eq!(a, b, "identical content must yield identical ids");
        let st = store.borrow().stats();
        assert_eq!(st.stored, 3);
        assert_eq!(st.dedup_hits, 3);
        assert_eq!(st.bytes_deduped, 3 * CHUNK_SIZE as u64);
        assert_eq!(store.borrow().chunk_count(), 3);
        // Different content stores separately.
        let c = store_chunks(&store, &patterned(3 * CHUNK_SIZE, 8));
        assert_ne!(a[0].id, c[0].id);
        assert_eq!(store.borrow().chunk_count(), 6);
    }

    #[test]
    fn refcount_never_frees_a_live_chunk() {
        let store = new_store();
        let data = patterned(CHUNK_SIZE, 3);
        let a = store_chunks(&store, &data); // holder 1
        let b = store_chunks(&store, &data); // holder 2 (same chunk)
        assert_eq!(store.borrow().refs(&a[0].id), Some(2));
        release_chunks(&store, &a);
        // Still live: holder 2's reference keeps it.
        assert!(store.borrow().contains(&b[0].id));
        assert_eq!(assemble(&store, &b).as_deref(), Some(data.as_slice()));
        release_chunks(&store, &b);
        // Last reference gone: freed.
        assert!(!store.borrow().contains(&b[0].id));
        assert_eq!(store.borrow().resident_bytes(), 0);
        assert_eq!(store.borrow().stats().released, 1);
        // Over-release of an unknown / unreferenced chunk is a no-op.
        release_chunks(&store, &b);
    }

    #[test]
    fn unretained_inserts_linger_as_cache() {
        let store = new_store();
        let r = store.borrow_mut().insert(&patterned(100, 1));
        store.borrow_mut().release(&r.id);
        assert!(store.borrow().contains(&r.id), "cache entry must survive");
    }

    #[test]
    fn resolve_short_checks_presence_and_length() {
        let store = new_store();
        let data = patterned(CHUNK_SIZE, 5);
        let refs = store_chunks(&store, &data);
        let s = short_id(&refs[0].id);
        assert_eq!(
            store.borrow_mut().resolve_short(s, refs[0].len),
            Some(refs[0].id)
        );
        // Length mismatch: treated as missing (fetch it).
        assert_eq!(store.borrow_mut().resolve_short(s, refs[0].len + 1), None);
        assert_eq!(store.borrow_mut().resolve_short(s ^ 1, refs[0].len), None);
        let st = store.borrow().stats();
        assert_eq!((st.announce_hits, st.announce_misses), (1, 2));
    }

    #[test]
    fn stats_drain_returns_deltas() {
        let store = new_store();
        store_chunks(&store, &patterned(CHUNK_SIZE, 2));
        let d1 = store.borrow_mut().drain_stats();
        assert_eq!(d1.stored, 1);
        let d2 = store.borrow_mut().drain_stats();
        assert_eq!(d2, ChunkStats::default());
        store_chunks(&store, &patterned(CHUNK_SIZE, 2));
        let d3 = store.borrow_mut().drain_stats();
        assert_eq!(d3.dedup_hits, 1);
        assert_eq!(d3.stored, 0);
    }

    #[test]
    fn chunk_ref_round_trip() {
        let r = ChunkRef {
            id: [9; 32],
            len: 4096,
        };
        let mut w = WireWriter::new();
        r.encode(&mut w);
        let buf = w.finish();
        let mut rd = WireReader::new(&buf);
        assert_eq!(ChunkRef::decode(&mut rd).unwrap(), r);
        rd.expect_end().unwrap();
    }
}
