//! Property tests for scenario assignment: every (profile, policy)
//! pair yields a scenario whose propagation mode survives the control
//! protocol's wire encoding and is honored by the replication
//! subobject the role actually spawns — the end-to-end guarantee the
//! scenario sweep's mode axis depends on.

use proptest::prelude::*;

use globe_net::{Endpoint, HostId};
use globe_rts::{protocol_id, spawn_replication, GosCmd, PropagationMode, RoleSpec};
use globe_workloads::{scenario_for, ObjectProfile, ScenarioPolicy};

fn arb_policy() -> impl Strategy<Value = ScenarioPolicy> {
    (0usize..ScenarioPolicy::ALL.len()).prop_map(|i| ScenarioPolicy::ALL[i])
}

fn arb_mode() -> impl Strategy<Value = PropagationMode> {
    prop_oneof![
        Just(PropagationMode::PushState),
        Just(PropagationMode::PushDelta),
    ]
}

/// Regions with one primary object server each.
fn gos(regions: usize) -> Vec<Vec<Endpoint>> {
    (0..regions)
        .map(|r| vec![Endpoint::new(HostId(10 * r as u32), 700)])
        .collect()
}

proptest! {
    /// The assigned scenario's first role survives a GosCmd encode →
    /// decode round trip, and spawning a replication subobject from the
    /// decoded role reproduces the role — propagation mode included.
    #[test]
    fn scenario_mode_round_trips_and_is_honored(
        rank in 0usize..64,
        upd_centi in 0u64..10_000,
        regions in 1usize..6,
        home_mul in 0usize..6,
        policy in arb_policy(),
        mode in arb_mode(),
    ) {
        let home_region = home_mul % regions;
        let profile = ObjectProfile::new(rank, upd_centi as f64 / 100.0, home_region)
            .with_mode(mode);
        let gos = gos(regions);
        let scenario = scenario_for(policy, &profile, &gos);

        // Structural sanity: nonempty, home primary first, no
        // duplicate replica sites.
        prop_assert!(!scenario.replicas.is_empty());
        prop_assert_eq!(scenario.replicas[0], gos[home_region][0]);
        let mut sites = scenario.replicas.clone();
        sites.sort();
        sites.dedup();
        prop_assert_eq!(sites.len(), scenario.replicas.len());

        // The wire round trip: exactly what the moderator tool sends as
        // "create first replica".
        let role = scenario.first_role();
        let cmd = GosCmd::CreateObject {
            req: 7,
            impl_id: 10,
            protocol: scenario.protocol,
            role: role.clone(),
        };
        let decoded = GosCmd::decode(&cmd.encode()).expect("decodes");
        let GosCmd::CreateObject { role: wire_role, protocol, .. } = decoded else {
            panic!("variant changed in flight");
        };
        prop_assert_eq!(&wire_role, &role);
        prop_assert_eq!(protocol, scenario.protocol);

        // The spawned replication subobject reports exactly the decoded
        // role: a Master's propagation mode reached the protocol.
        let repl = spawn_replication(protocol, wire_role.clone());
        prop_assert_eq!(repl.descriptor(), wire_role);
        match &role {
            RoleSpec::Master { mode: m } => {
                prop_assert_eq!(*m, scenario.mode);
                prop_assert!(repl.accepts_writes());
            }
            RoleSpec::Standalone => prop_assert!(repl.accepts_writes()),
            RoleSpec::Slave { .. } => prop_assert!(!repl.accepts_writes()),
        }

        // Replicated scenarios honor the profile's mode axis: an
        // eager-push assignment pushes in the requested mode, and the
        // per-object hot+volatile case only downgrades to invalidation
        // when deltas were not requested.
        if policy == ScenarioPolicy::ReplicateAll {
            prop_assert_eq!(scenario.mode, mode);
            prop_assert_eq!(scenario.protocol, protocol_id::MASTER_SLAVE);
            prop_assert_eq!(scenario.replicas.len(), regions);
        }
        if mode == PropagationMode::PushDelta && scenario.replicas.len() > 1 {
            prop_assert_eq!(scenario.mode, PropagationMode::PushDelta);
        }
    }
}
