//! The Globe Object Server (GOS).
//!
//! "A Globe Object Server is an application-independent daemon for
//! hosting replicas of any kind of distributed shared object. Globe
//! Object Servers allow replicas to save their state during a reboot and
//! reconstruct themselves afterwards." (paper §4)
//!
//! The GOS listens on one port for both GRP replication traffic and the
//! moderator-tool control protocol (create/delete replica commands,
//! paper §6.1), multiplexed over the runtime's secured connections. A
//! GOS "should accept only commands sent by a GDN moderator" — enforced
//! against the authenticated peer certificate.

use std::collections::BTreeMap;
use std::sync::Arc;

use globe_crypto::cert::Role;
use globe_gls::{GlsDeployment, ObjectId};
use globe_net::{
    impl_service_any, ns_token, owns_token, ConnEvent, ConnId, Endpoint, Service, ServiceCtx,
    WireError, WireReader, WireWriter,
};
use globe_sim::SimTime;

use crate::grp::RoleSpec;
use crate::repository::{ImplId, ImplRepository};
use crate::runtime::{GlobeRuntime, RtConn, RtEvent, RuntimeConfig};

/// Control commands a moderator tool sends to an object server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GosCmd {
    /// Create the *first* replica of a new object: the server allocates
    /// the object identifier, installs the replica and registers it with
    /// the location service (paper §6.1's "create first replica").
    CreateObject {
        /// Correlation id.
        req: u64,
        /// Class to instantiate.
        impl_id: u16,
        /// Replication protocol for the object's scenario.
        protocol: u16,
        /// Role of this first replica.
        role: RoleSpec,
    },
    /// Create an additional replica of an existing object ("bind to DSO
    /// ⟨OID⟩, create replica").
    CreateReplica {
        /// Correlation id.
        req: u64,
        /// The object to replicate.
        oid: u128,
        /// Class to instantiate.
        impl_id: u16,
        /// Replication protocol.
        protocol: u16,
        /// Role of this replica.
        role: RoleSpec,
    },
    /// Tear down this server's replica of an object (deregister + drop).
    DeleteReplica {
        /// Correlation id.
        req: u64,
        /// The object whose replica is removed.
        oid: u128,
    },
}

/// Control responses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GosResp {
    /// Command succeeded; `oid` identifies the object involved.
    Ok {
        /// Echoes the command's id.
        req: u64,
        /// The object (newly allocated for `CreateObject`).
        oid: u128,
    },
    /// Command failed.
    Err {
        /// Echoes the command's id.
        req: u64,
        /// Human-readable reason.
        msg: String,
    },
}

const T_CREATE_OBJECT: u8 = 1;
const T_CREATE_REPLICA: u8 = 2;
const T_DELETE_REPLICA: u8 = 3;
const T_OK: u8 = 4;
const T_ERR: u8 = 5;

impl GosCmd {
    /// Serializes the command.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            GosCmd::CreateObject {
                req,
                impl_id,
                protocol,
                role,
            } => {
                w.put_u8(T_CREATE_OBJECT);
                w.put_u64(*req);
                w.put_u16(*impl_id);
                w.put_u16(*protocol);
                role.encode(&mut w);
            }
            GosCmd::CreateReplica {
                req,
                oid,
                impl_id,
                protocol,
                role,
            } => {
                w.put_u8(T_CREATE_REPLICA);
                w.put_u64(*req);
                w.put_u128(*oid);
                w.put_u16(*impl_id);
                w.put_u16(*protocol);
                role.encode(&mut w);
            }
            GosCmd::DeleteReplica { req, oid } => {
                w.put_u8(T_DELETE_REPLICA);
                w.put_u64(*req);
                w.put_u128(*oid);
            }
        }
        w.finish()
    }

    /// Deserializes a command.
    pub fn decode(buf: &[u8]) -> Result<GosCmd, WireError> {
        let mut r = WireReader::new(buf);
        let cmd = match r.u8()? {
            T_CREATE_OBJECT => GosCmd::CreateObject {
                req: r.u64()?,
                impl_id: r.u16()?,
                protocol: r.u16()?,
                role: RoleSpec::decode(&mut r)?,
            },
            T_CREATE_REPLICA => GosCmd::CreateReplica {
                req: r.u64()?,
                oid: r.u128()?,
                impl_id: r.u16()?,
                protocol: r.u16()?,
                role: RoleSpec::decode(&mut r)?,
            },
            T_DELETE_REPLICA => GosCmd::DeleteReplica {
                req: r.u64()?,
                oid: r.u128()?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(cmd)
    }
}

impl GosResp {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            GosResp::Ok { req, oid } => {
                w.put_u8(T_OK);
                w.put_u64(*req);
                w.put_u128(*oid);
            }
            GosResp::Err { req, msg } => {
                w.put_u8(T_ERR);
                w.put_u64(*req);
                w.put_str(msg);
            }
        }
        w.finish()
    }

    /// Deserializes a response.
    pub fn decode(buf: &[u8]) -> Result<GosResp, WireError> {
        let mut r = WireReader::new(buf);
        let resp = match r.u8()? {
            T_OK => GosResp::Ok {
                req: r.u64()?,
                oid: r.u128()?,
            },
            T_ERR => GosResp::Err {
                req: r.u64()?,
                msg: r.str()?.to_owned(),
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

/// Load counters for one object server.
#[derive(Clone, Copy, Debug, Default)]
pub struct GosStats {
    /// Commands executed successfully.
    pub commands_ok: u64,
    /// Commands refused (authorization or validation).
    pub commands_rejected: u64,
    /// Replicas restored after the last restart.
    pub replicas_restored: u64,
}

/// The object-server daemon.
pub struct GlobeObjectServer {
    /// The embedded Globe runtime (public so experiments can inspect
    /// replica state).
    pub runtime: GlobeRuntime,
    /// Registration completions pending a control reply:
    /// token → (connection, request id, oid).
    pending: BTreeMap<u64, (ConnId, u64, u128)>,
    next_token: u64,
    /// Load counters.
    pub stats: GosStats,
}

impl GlobeObjectServer {
    /// Creates an object server. `cfg.accept_incoming` and
    /// `cfg.persist` are forced on — that is what an object server is.
    pub fn new(
        mut cfg: RuntimeConfig,
        repo: Arc<ImplRepository>,
        gls: Arc<GlsDeployment>,
        host: globe_net::HostId,
        ns: u16,
    ) -> GlobeObjectServer {
        cfg.accept_incoming = true;
        cfg.persist = true;
        GlobeObjectServer {
            runtime: GlobeRuntime::new(cfg, repo, gls, host, ns),
            pending: BTreeMap::new(),
            next_token: 1,
            stats: GosStats::default(),
        }
    }

    fn respond(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, resp: GosResp) {
        let bytes = resp.encode();
        self.runtime.send_app(ctx, conn, &bytes);
    }

    fn handle_cmd(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        conn: ConnId,
        peer_role: Option<Role>,
        frame: &[u8],
    ) {
        let Ok(cmd) = GosCmd::decode(frame) else {
            ctx.metrics().inc("gos.malformed", 1);
            return;
        };
        // Paper §6.1 requirement 1: "A Globe Object Server should accept
        // only commands sent by a GDN moderator." (Waived in the
        // unsecured June-2000 configuration.)
        if !self.runtime.open_writes()
            && !matches!(peer_role, Some(Role::Moderator) | Some(Role::Administrator))
        {
            self.stats.commands_rejected += 1;
            ctx.metrics().inc("gos.cmd_denied", 1);
            let req = match cmd {
                GosCmd::CreateObject { req, .. }
                | GosCmd::CreateReplica { req, .. }
                | GosCmd::DeleteReplica { req, .. } => req,
            };
            self.respond(
                ctx,
                conn,
                GosResp::Err {
                    req,
                    msg: "moderator role required".into(),
                },
            );
            return;
        }
        match cmd {
            GosCmd::CreateObject {
                req,
                impl_id,
                protocol,
                role,
            } => {
                // The object identifier is allocated here, as part of
                // registration (paper §6.1).
                let oid = ObjectId::generate(ctx.rng());
                self.create_and_register(ctx, conn, req, oid, impl_id, protocol, role);
            }
            GosCmd::CreateReplica {
                req,
                oid,
                impl_id,
                protocol,
                role,
            } => {
                self.create_and_register(ctx, conn, req, ObjectId(oid), impl_id, protocol, role);
            }
            GosCmd::DeleteReplica { req, oid } => {
                if !self.runtime.is_bound(ObjectId(oid)) {
                    self.respond(
                        ctx,
                        conn,
                        GosResp::Err {
                            req,
                            msg: "no replica of that object here".into(),
                        },
                    );
                    self.stats.commands_rejected += 1;
                    return;
                }
                let token = self.next_token;
                self.next_token += 1;
                self.pending.insert(token, (conn, req, oid));
                self.runtime.deregister(ctx, ObjectId(oid), token);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create_and_register(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        conn: ConnId,
        req: u64,
        oid: ObjectId,
        impl_id: u16,
        protocol: u16,
        role: RoleSpec,
    ) {
        match self
            .runtime
            .create_replica(ctx, oid, ImplId(impl_id), protocol, role)
        {
            Ok(()) => {
                let token = self.next_token;
                self.next_token += 1;
                self.pending.insert(token, (conn, req, oid.0));
                self.runtime.register(ctx, oid, token);
            }
            Err(e) => {
                self.stats.commands_rejected += 1;
                self.respond(
                    ctx,
                    conn,
                    GosResp::Err {
                        req,
                        msg: e.to_string(),
                    },
                );
            }
        }
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.runtime.take_events() {
            match ev {
                RtEvent::Registered { token, result } => {
                    if let Some((conn, req, oid)) = self.pending.remove(&token) {
                        let resp = match result {
                            Ok(()) => {
                                self.stats.commands_ok += 1;
                                GosResp::Ok { req, oid }
                            }
                            Err(e) => {
                                self.stats.commands_rejected += 1;
                                GosResp::Err {
                                    req,
                                    msg: format!("registration failed: {e}"),
                                }
                            }
                        };
                        self.respond(ctx, conn, resp);
                    }
                }
                RtEvent::Deregistered { token, result } => {
                    if let Some((conn, req, oid)) = self.pending.remove(&token) {
                        let resp = match result {
                            Ok(()) => {
                                self.runtime.unbind(ctx, ObjectId(oid));
                                self.stats.commands_ok += 1;
                                GosResp::Ok { req, oid }
                            }
                            Err(e) => {
                                self.stats.commands_rejected += 1;
                                GosResp::Err {
                                    req,
                                    msg: format!("deregistration failed: {e}"),
                                }
                            }
                        };
                        self.respond(ctx, conn, resp);
                    }
                }
                // Object servers neither bind nor invoke on their own.
                RtEvent::BindDone { .. } | RtEvent::InvokeDone { .. } => {}
            }
        }
    }
}

/// Timer namespace for the lease-refresh heartbeat.
const GOS_HEARTBEAT_NS: u16 = 0x0605;
/// Heartbeat sink token: registration refreshes need no reply routing.
const HEARTBEAT_SINK: u64 = u64::MAX;

impl GlobeObjectServer {
    fn arm_heartbeat(&mut self, ctx: &mut ServiceCtx<'_>) {
        if let Some(ttl) = self.runtime.gls_address_ttl() {
            ctx.set_timer(ttl / 3, ns_token(GOS_HEARTBEAT_NS, 1));
        }
    }

    fn heartbeat(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Re-register every hosted replica, refreshing its GLS lease
        // (soft state: crashed servers stop refreshing and age out).
        for oid in self.runtime.bound_objects() {
            if self.runtime.contact_address(oid).is_some() {
                self.runtime.register(ctx, oid, HEARTBEAT_SINK);
            }
        }
        ctx.metrics().inc("gos.heartbeats", 1);
        self.arm_heartbeat(ctx);
    }
}

impl Service for GlobeObjectServer {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed => self.drain(ctx),
            RtConn::AppData { frames, peer_role } => {
                for frame in frames {
                    self.handle_cmd(ctx, conn, peer_role, &frame);
                }
                self.drain(ctx);
            }
            RtConn::NotMine(_) => {}
        }
    }

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.arm_heartbeat(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(GOS_HEARTBEAT_NS, token) {
            self.heartbeat(ctx);
            return;
        }
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.runtime.on_crash();
        self.pending.clear();
    }

    fn on_restart(&mut self, ctx: &mut ServiceCtx<'_>) {
        let restored = self.runtime.restore_replicas(ctx);
        self.stats.replicas_restored = restored.len() as u64;
        // Recovered replicas re-register immediately: their leases may
        // have expired while the host was down.
        self.heartbeat(ctx);
        self.drain(ctx);
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grp::PropagationMode;
    use globe_net::HostId;

    #[test]
    fn cmd_round_trip() {
        let cmds = vec![
            GosCmd::CreateObject {
                req: 1,
                impl_id: 2,
                protocol: 3,
                role: RoleSpec::Standalone,
            },
            GosCmd::CreateReplica {
                req: 2,
                oid: 0xFF,
                impl_id: 2,
                protocol: 2,
                role: RoleSpec::Slave {
                    master: Endpoint::new(HostId(1), 700),
                },
            },
            GosCmd::CreateReplica {
                req: 3,
                oid: 0xEE,
                impl_id: 2,
                protocol: 2,
                role: RoleSpec::Master {
                    mode: PropagationMode::Invalidate,
                },
            },
            GosCmd::DeleteReplica { req: 4, oid: 0xDD },
        ];
        for c in cmds {
            assert_eq!(GosCmd::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn resp_round_trip() {
        for r in [
            GosResp::Ok { req: 1, oid: 42 },
            GosResp::Err {
                req: 2,
                msg: "nope".into(),
            },
        ] {
            assert_eq!(GosResp::decode(&r.encode()).unwrap(), r);
        }
        assert!(GosResp::decode(&[0xAA]).is_err());
        assert!(GosCmd::decode(&[]).is_err());
    }
}
