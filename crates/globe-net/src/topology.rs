//! Hierarchical network topology and the latency/bandwidth model.
//!
//! The model has four levels — *region* (continent) → *country* → *site*
//! (campus or metropolitan network) → *host* — matching the domain
//! hierarchy the Globe Location Service organizes the Internet into
//! (paper §3.5). Communication cost between two hosts is determined by the
//! lowest [`Tier`] that contains both: two hosts in one site pay LAN cost,
//! two hosts in different regions pay intercontinental cost.
//!
//! Default link parameters are calibrated to the era of the paper
//! (100 Mbit/s campus LANs, single-digit-Mbit/s international links,
//! ~90 ms transatlantic one-way latency); experiments may override them
//! via [`NetParams`].

use globe_sim::SimDuration;

/// Identifies a host (leaf of the topology).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// Identifies a site (campus / metropolitan network).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

/// Identifies a country.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CountryId(pub u32);

/// Identifies a region (continent).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// The lowest level of the hierarchy spanning two communicating hosts.
///
/// Order matters: `Loopback < Site < Country < Region < World`, and the
/// numeric value ([`Tier::distance`]) is the "tree distance" used as the
/// x-axis of experiment E1 (lookup cost vs. distance).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Tier {
    /// Same host (inter-process).
    Loopback,
    /// Same site: crosses only the LAN.
    Site,
    /// Same country, different sites: crosses the national backbone.
    Country,
    /// Same region, different countries: crosses regional links.
    Region,
    /// Different regions: crosses intercontinental links.
    World,
}

impl Tier {
    /// All tiers, in increasing order of distance.
    pub const ALL: [Tier; 5] = [
        Tier::Loopback,
        Tier::Site,
        Tier::Country,
        Tier::Region,
        Tier::World,
    ];

    /// Tree distance: 0 for loopback up to 4 for intercontinental.
    pub fn distance(self) -> u32 {
        match self {
            Tier::Loopback => 0,
            Tier::Site => 1,
            Tier::Country => 2,
            Tier::Region => 3,
            Tier::World => 4,
        }
    }

    /// Short lower-case name, used as a metrics key segment
    /// (`net.bytes.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Loopback => "loopback",
            Tier::Site => "site",
            Tier::Country => "country",
            Tier::Region => "region",
            Tier::World => "world",
        }
    }

    /// Whether traffic at this tier is "wide-area" in the sense of the
    /// paper (§3.1: bandwidth between sites is the scarce resource).
    pub fn is_wide_area(self) -> bool {
        matches!(self, Tier::Country | Tier::Region | Tier::World)
    }
}

/// Link characteristics for one tier.
#[derive(Copy, Clone, Debug)]
pub struct LinkParams {
    /// One-way propagation latency for messages crossing this tier.
    pub latency: SimDuration,
    /// Bottleneck bandwidth in bytes per second (serialization delay is
    /// `size / bandwidth`).
    pub bandwidth: u64,
    /// Probability that a datagram crossing this tier is lost. Streams are
    /// reliable and unaffected.
    pub datagram_loss: f64,
    /// Maximum extra per-datagram delivery delay, sampled uniformly from
    /// `[0, jitter]`. Datagrams only: streams keep their FIFO contract,
    /// so jitter on them would be a different (reordering) model.
    pub jitter: SimDuration,
}

/// All tunables of the network model.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// Per-tier link characteristics, indexed by [`Tier::distance`].
    pub links: [LinkParams; 5],
    /// Fixed per-message header overhead added to every payload, in bytes
    /// (rough stand-in for IP/TCP/UDP headers).
    pub overhead: u64,
    /// How long a connection attempt waits for a response before failing
    /// when the remote host is unreachable.
    pub connect_timeout: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            links: [
                // Loopback: inter-process on one machine.
                LinkParams {
                    latency: SimDuration::from_micros(20),
                    bandwidth: 500_000_000,
                    datagram_loss: 0.0,
                    jitter: SimDuration::ZERO,
                },
                // Site: 100 Mbit/s campus LAN.
                LinkParams {
                    latency: SimDuration::from_micros(300),
                    bandwidth: 12_500_000,
                    datagram_loss: 0.0,
                    jitter: SimDuration::ZERO,
                },
                // Country: national backbone, ~34 Mbit/s shared.
                LinkParams {
                    latency: SimDuration::from_millis(5),
                    bandwidth: 4_000_000,
                    datagram_loss: 0.0,
                    jitter: SimDuration::ZERO,
                },
                // Region: intra-continental links.
                LinkParams {
                    latency: SimDuration::from_millis(20),
                    bandwidth: 1_250_000,
                    datagram_loss: 0.0,
                    jitter: SimDuration::ZERO,
                },
                // World: intercontinental links (~90 ms one way).
                LinkParams {
                    latency: SimDuration::from_millis(90),
                    bandwidth: 600_000,
                    datagram_loss: 0.0,
                    jitter: SimDuration::ZERO,
                },
            ],
            overhead: 40,
            connect_timeout: SimDuration::from_secs(3),
        }
    }
}

impl NetParams {
    /// Returns the link parameters for a tier.
    pub fn link(&self, tier: Tier) -> &LinkParams {
        &self.links[tier.distance() as usize]
    }

    /// Returns a mutable reference to the link parameters for a tier.
    pub fn link_mut(&mut self, tier: Tier) -> &mut LinkParams {
        &mut self.links[tier.distance() as usize]
    }

    /// Sets the datagram loss probability on every tier except loopback.
    pub fn with_datagram_loss(mut self, p: f64) -> Self {
        for tier in [Tier::Site, Tier::Country, Tier::Region, Tier::World] {
            self.link_mut(tier).datagram_loss = p;
        }
        self
    }

    /// Sets the datagram delivery jitter on every tier except loopback,
    /// as a fraction of the tier's latency (e.g. `0.5` → up to half a
    /// latency of extra delay per datagram).
    pub fn with_jitter_fraction(mut self, f: f64) -> Self {
        for tier in [Tier::Site, Tier::Country, Tier::Region, Tier::World] {
            let link = self.link_mut(tier);
            link.jitter = SimDuration::from_nanos((link.latency.as_nanos() as f64 * f) as u64);
        }
        self
    }
}

#[derive(Clone, Debug)]
struct Region {
    name: String,
}

#[derive(Clone, Debug)]
struct Country {
    name: String,
    region: RegionId,
}

#[derive(Clone, Debug)]
struct Site {
    name: String,
    country: CountryId,
}

#[derive(Clone, Debug)]
struct Host {
    name: String,
    site: SiteId,
}

/// An immutable network topology: the region/country/site/host tree.
///
/// Build one with [`TopologyBuilder`] or the [`Topology::grid`]
/// convenience constructor.
#[derive(Clone, Debug)]
pub struct Topology {
    regions: Vec<Region>,
    countries: Vec<Country>,
    sites: Vec<Site>,
    hosts: Vec<Host>,
    /// Hosts grouped by site, for fast enumeration.
    site_hosts: Vec<Vec<HostId>>,
}

/// Incremental constructor for [`Topology`].
///
/// # Examples
///
/// ```
/// use globe_net::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let eu = b.region("eu");
/// let nl = b.country(eu, "nl");
/// let vu = b.site(nl, "vu");
/// let host = b.host(vu, "gos-1");
/// let topo = b.build();
/// assert_eq!(topo.host_name(host), "gos-1");
/// assert_eq!(topo.num_hosts(), 1);
/// ```
#[derive(Default, Debug)]
pub struct TopologyBuilder {
    regions: Vec<Region>,
    countries: Vec<Country>,
    sites: Vec<Site>,
    hosts: Vec<Host>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a region (continent).
    pub fn region(&mut self, name: &str) -> RegionId {
        self.regions.push(Region { name: name.into() });
        RegionId(self.regions.len() as u32 - 1)
    }

    /// Adds a country inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` does not exist.
    pub fn country(&mut self, region: RegionId, name: &str) -> CountryId {
        assert!(
            (region.0 as usize) < self.regions.len(),
            "unknown region {region:?}"
        );
        self.countries.push(Country {
            name: name.into(),
            region,
        });
        CountryId(self.countries.len() as u32 - 1)
    }

    /// Adds a site (campus / MAN) inside `country`.
    ///
    /// # Panics
    ///
    /// Panics if `country` does not exist.
    pub fn site(&mut self, country: CountryId, name: &str) -> SiteId {
        assert!(
            (country.0 as usize) < self.countries.len(),
            "unknown country {country:?}"
        );
        self.sites.push(Site {
            name: name.into(),
            country,
        });
        SiteId(self.sites.len() as u32 - 1)
    }

    /// Adds a host inside `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` does not exist.
    pub fn host(&mut self, site: SiteId, name: &str) -> HostId {
        assert!(
            (site.0 as usize) < self.sites.len(),
            "unknown site {site:?}"
        );
        self.hosts.push(Host {
            name: name.into(),
            site,
        });
        HostId(self.hosts.len() as u32 - 1)
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let mut site_hosts = vec![Vec::new(); self.sites.len()];
        for (i, h) in self.hosts.iter().enumerate() {
            site_hosts[h.site.0 as usize].push(HostId(i as u32));
        }
        Topology {
            regions: self.regions,
            countries: self.countries,
            sites: self.sites,
            hosts: self.hosts,
            site_hosts,
        }
    }
}

impl Topology {
    /// Builds a regular world: `regions × countries × sites × hosts`.
    ///
    /// Names follow the pattern `r0`, `r0.c1`, `r0.c1.s2`, `r0.c1.s2.h3`.
    /// Useful for parameter sweeps; the GDN examples build irregular,
    /// named topologies instead.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn grid(regions: u32, countries: u32, sites: u32, hosts: u32) -> Topology {
        assert!(
            regions > 0 && countries > 0 && sites > 0 && hosts > 0,
            "all grid dimensions must be positive"
        );
        let mut b = TopologyBuilder::new();
        for r in 0..regions {
            let rid = b.region(&format!("r{r}"));
            for c in 0..countries {
                let cid = b.country(rid, &format!("r{r}.c{c}"));
                for s in 0..sites {
                    let sid = b.site(cid, &format!("r{r}.c{c}.s{s}"));
                    for h in 0..hosts {
                        b.host(sid, &format!("r{r}.c{c}.s{s}.h{h}"));
                    }
                }
            }
        }
        b.build()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of countries.
    pub fn num_countries(&self) -> usize {
        self.countries.len()
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// Iterates over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites.len() as u32).map(SiteId)
    }

    /// Iterates over all country ids.
    pub fn countries(&self) -> impl Iterator<Item = CountryId> {
        (0..self.countries.len() as u32).map(CountryId)
    }

    /// Iterates over all region ids.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> {
        (0..self.regions.len() as u32).map(RegionId)
    }

    /// The hosts located in `site`.
    pub fn hosts_in_site(&self, site: SiteId) -> &[HostId] {
        &self.site_hosts[site.0 as usize]
    }

    /// The site containing `host`.
    pub fn site_of(&self, host: HostId) -> SiteId {
        self.hosts[host.0 as usize].site
    }

    /// The country containing `site`.
    pub fn country_of(&self, site: SiteId) -> CountryId {
        self.sites[site.0 as usize].country
    }

    /// The region containing `country`.
    pub fn region_of(&self, country: CountryId) -> RegionId {
        self.countries[country.0 as usize].region
    }

    /// The country containing `host`.
    pub fn country_of_host(&self, host: HostId) -> CountryId {
        self.country_of(self.site_of(host))
    }

    /// The region containing `host`.
    pub fn region_of_host(&self, host: HostId) -> RegionId {
        self.region_of(self.country_of_host(host))
    }

    /// The host's display name.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.hosts[host.0 as usize].name
    }

    /// The site's display name.
    pub fn site_name(&self, site: SiteId) -> &str {
        &self.sites[site.0 as usize].name
    }

    /// The country's display name.
    pub fn country_name(&self, country: CountryId) -> &str {
        &self.countries[country.0 as usize].name
    }

    /// The region's display name.
    pub fn region_name(&self, region: RegionId) -> &str {
        &self.regions[region.0 as usize].name
    }

    /// The lowest tier spanning both hosts.
    ///
    /// # Panics
    ///
    /// Panics if either host id is out of range.
    pub fn tier_between(&self, a: HostId, b: HostId) -> Tier {
        if a == b {
            return Tier::Loopback;
        }
        let sa = self.site_of(a);
        let sb = self.site_of(b);
        if sa == sb {
            return Tier::Site;
        }
        let ca = self.country_of(sa);
        let cb = self.country_of(sb);
        if ca == cb {
            return Tier::Country;
        }
        if self.region_of(ca) == self.region_of(cb) {
            return Tier::Region;
        }
        Tier::World
    }

    /// Tree distance between two hosts (0..=4); see [`Tier::distance`].
    pub fn distance(&self, a: HostId, b: HostId) -> u32 {
        self.tier_between(a, b).distance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_topo() -> (Topology, [HostId; 5]) {
        let mut b = TopologyBuilder::new();
        let eu = b.region("eu");
        let na = b.region("na");
        let nl = b.country(eu, "nl");
        let de = b.country(eu, "de");
        let us = b.country(na, "us");
        let vu = b.site(nl, "vu");
        let uva = b.site(nl, "uva");
        let tum = b.site(de, "tum");
        let mit = b.site(us, "mit");
        let h_vu1 = b.host(vu, "vu1");
        let h_vu2 = b.host(vu, "vu2");
        let h_uva = b.host(uva, "uva1");
        let h_tum = b.host(tum, "tum1");
        let h_mit = b.host(mit, "mit1");
        (b.build(), [h_vu1, h_vu2, h_uva, h_tum, h_mit])
    }

    #[test]
    fn tiers_follow_hierarchy() {
        let (t, [vu1, vu2, uva, tum, mit]) = two_region_topo();
        assert_eq!(t.tier_between(vu1, vu1), Tier::Loopback);
        assert_eq!(t.tier_between(vu1, vu2), Tier::Site);
        assert_eq!(t.tier_between(vu1, uva), Tier::Country);
        assert_eq!(t.tier_between(vu1, tum), Tier::Region);
        assert_eq!(t.tier_between(vu1, mit), Tier::World);
    }

    #[test]
    fn tier_is_symmetric() {
        let (t, hosts) = two_region_topo();
        for &a in &hosts {
            for &b in &hosts {
                assert_eq!(t.tier_between(a, b), t.tier_between(b, a));
            }
        }
    }

    #[test]
    fn distance_matches_tier() {
        let (t, [vu1, _, _, _, mit]) = two_region_topo();
        assert_eq!(t.distance(vu1, vu1), 0);
        assert_eq!(t.distance(vu1, mit), 4);
    }

    #[test]
    fn containment_lookups() {
        let (t, [vu1, ..]) = two_region_topo();
        let site = t.site_of(vu1);
        assert_eq!(t.site_name(site), "vu");
        let country = t.country_of(site);
        assert_eq!(t.country_name(country), "nl");
        let region = t.region_of(country);
        assert_eq!(t.region_name(region), "eu");
        assert_eq!(t.region_of_host(vu1), region);
        assert_eq!(t.country_of_host(vu1), country);
        assert_eq!(t.hosts_in_site(site).len(), 2);
    }

    #[test]
    fn grid_dimensions() {
        let t = Topology::grid(2, 3, 4, 5);
        assert_eq!(t.num_regions(), 2);
        assert_eq!(t.num_countries(), 6);
        assert_eq!(t.num_sites(), 24);
        assert_eq!(t.num_hosts(), 120);
        // Every host is reachable through the containment chain.
        for h in t.hosts() {
            let _ = t.region_of_host(h);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn grid_rejects_zero() {
        let _ = Topology::grid(1, 0, 1, 1);
    }

    #[test]
    fn default_params_are_monotone_in_tier() {
        let p = NetParams::default();
        for w in Tier::ALL.windows(2) {
            assert!(
                p.link(w[0]).latency < p.link(w[1]).latency,
                "latency must increase with tier"
            );
            assert!(
                p.link(w[0]).bandwidth > p.link(w[1]).bandwidth,
                "bandwidth must decrease with tier"
            );
        }
    }

    #[test]
    fn wide_area_flags() {
        assert!(!Tier::Loopback.is_wide_area());
        assert!(!Tier::Site.is_wide_area());
        assert!(Tier::Country.is_wide_area());
        assert!(Tier::Region.is_wide_area());
        assert!(Tier::World.is_wide_area());
    }

    #[test]
    fn with_datagram_loss_leaves_loopback() {
        let p = NetParams::default().with_datagram_loss(0.1);
        assert_eq!(p.link(Tier::Loopback).datagram_loss, 0.0);
        assert_eq!(p.link(Tier::World).datagram_loss, 0.1);
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn builder_rejects_bad_region() {
        let mut b = TopologyBuilder::new();
        b.country(RegionId(0), "nowhere");
    }
}
