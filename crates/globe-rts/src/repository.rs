//! The implementation repository: class registry plus the simulated
//! cost of remote class loading.
//!
//! The paper (§3.4): installing a local representative "involves loading
//! the implementation of the local representative (i.e., the appropriate
//! set of subobjects) from a nearby implementation repository in a way
//! similar to remote class loading in Java". We model the repository as
//! a registry shared by deployment configuration, and charge a one-time
//! per-host *load delay* the first time a class is instantiated on a
//! host — which is exactly where the cost shows up in the paper's
//! binding path (experiment E9).

use std::collections::BTreeMap;

use globe_sim::SimDuration;

use crate::object::{ClassSpec, MethodId, MethodKind, SemanticsObject};

/// Identifies an object implementation ("class") in the repository.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ImplId(pub u16);

/// The class registry.
///
/// # Examples
///
/// ```
/// use globe_rts::object::{ClassSpec, Invocation, MethodId, MethodKind, SemError, SemanticsObject};
/// use globe_rts::repository::{ImplId, ImplRepository};
///
/// struct Counter(u64);
/// impl SemanticsObject for Counter {
///     fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
///         match inv.method.0 {
///             0 => Ok(self.0.to_be_bytes().to_vec()),
///             1 => { self.0 += 1; Ok(vec![]) }
///             _ => Err(SemError::NoSuchMethod(inv.method)),
///         }
///     }
///     fn get_state(&self) -> Vec<u8> { self.0.to_be_bytes().to_vec() }
///     fn set_state(&mut self, s: &[u8]) -> Result<(), SemError> {
///         self.0 = u64::from_be_bytes(s.try_into().map_err(|_| SemError::BadState)?);
///         Ok(())
///     }
/// }
///
/// let mut repo = ImplRepository::new();
/// repo.register(ImplId(1), ClassSpec {
///     name: "counter",
///     factory: || Box::new(Counter(0)),
///     kind_of: |m| match m.0 { 0 => Some(MethodKind::Read), 1 => Some(MethodKind::Write), _ => None },
/// });
/// assert!(repo.instantiate(ImplId(1)).is_some());
/// ```
pub struct ImplRepository {
    classes: BTreeMap<u16, ClassSpec>,
    load_delay: SimDuration,
}

impl ImplRepository {
    /// Creates an empty repository with the default 150 ms class-load
    /// delay (a late-1990s code fetch from a nearby repository).
    pub fn new() -> ImplRepository {
        ImplRepository {
            classes: BTreeMap::new(),
            load_delay: SimDuration::from_millis(150),
        }
    }

    /// Overrides the simulated class-load delay.
    pub fn with_load_delay(mut self, d: SimDuration) -> Self {
        self.load_delay = d;
        self
    }

    /// Registers a class.
    ///
    /// # Panics
    ///
    /// Panics if the id is already taken.
    pub fn register(&mut self, id: ImplId, spec: ClassSpec) {
        let prev = self.classes.insert(id.0, spec);
        assert!(prev.is_none(), "implementation {id:?} registered twice");
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: ImplId) -> bool {
        self.classes.contains_key(&id.0)
    }

    /// The class's display name.
    pub fn name(&self, id: ImplId) -> Option<&'static str> {
        self.classes.get(&id.0).map(|c| c.name)
    }

    /// Instantiates a blank semantics subobject of class `id`.
    pub fn instantiate(&self, id: ImplId) -> Option<Box<dyn SemanticsObject>> {
        self.classes.get(&id.0).map(|c| (c.factory)())
    }

    /// Classifies a method of class `id`.
    pub fn kind_of(&self, id: ImplId, method: MethodId) -> Option<MethodKind> {
        self.classes.get(&id.0).and_then(|c| (c.kind_of)(method))
    }

    /// The one-time per-host class-load delay.
    pub fn load_delay(&self) -> SimDuration {
        self.load_delay
    }
}

impl Default for ImplRepository {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Invocation, SemError};

    struct Nop;
    impl SemanticsObject for Nop {
        fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
            Err(SemError::NoSuchMethod(inv.method))
        }
        fn get_state(&self) -> Vec<u8> {
            vec![]
        }
        fn set_state(&mut self, _s: &[u8]) -> Result<(), SemError> {
            Ok(())
        }
    }

    fn nop_spec() -> ClassSpec {
        ClassSpec {
            name: "nop",
            factory: || Box::new(Nop),
            kind_of: |m| {
                if m.0 == 0 {
                    Some(MethodKind::Read)
                } else {
                    None
                }
            },
        }
    }

    #[test]
    fn register_and_query() {
        let mut repo = ImplRepository::new();
        repo.register(ImplId(5), nop_spec());
        assert!(repo.contains(ImplId(5)));
        assert!(!repo.contains(ImplId(6)));
        assert_eq!(repo.name(ImplId(5)), Some("nop"));
        assert_eq!(repo.kind_of(ImplId(5), MethodId(0)), Some(MethodKind::Read));
        assert_eq!(repo.kind_of(ImplId(5), MethodId(9)), None);
        assert!(repo.instantiate(ImplId(5)).is_some());
        assert!(repo.instantiate(ImplId(6)).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut repo = ImplRepository::new();
        repo.register(ImplId(5), nop_spec());
        repo.register(ImplId(5), nop_spec());
    }

    #[test]
    fn load_delay_configurable() {
        let repo = ImplRepository::new().with_load_delay(SimDuration::from_millis(7));
        assert_eq!(repo.load_delay(), SimDuration::from_millis(7));
    }
}
