//! Bench-trajectory comparison: gate the scenario sweep against its
//! committed baseline.
//!
//! `BENCH_scenario_sweep.json` is committed at the repository root, so
//! every revision carries the sweep matrix it was measured at. This
//! module diffs a fresh sweep against that baseline and reports any
//! cell whose fan-out cost (`grp_bytes_encoded`) or tail latency
//! (`p99_ms`) regressed by more than [`TRAJECTORY_TOLERANCE`] — the
//! "plotting the JSON trajectory" ROADMAP follow-on in gating form. The
//! `scenario_sweep` bench (and with it CI's `bench-smoke` job) fails on
//! violations; set `GLOBE_SWEEP_BASELINE=skip` when a change
//! intentionally moves the numbers, then commit the regenerated JSON as
//! the new baseline.
//!
//! The parser handles exactly the flat single-line-per-cell format
//! [`crate::sweep::sweep_json`] emits — no general JSON machinery, no
//! dependencies.

/// Maximum tolerated relative growth per gated metric (0.10 = +10%).
pub const TRAJECTORY_TOLERANCE: f64 = 0.10;

/// Absolute slack on `grp_bytes_encoded` (bytes): tiny baselines must
/// not turn byte-level jitter into a gate failure.
const BYTES_SLACK: f64 = 1024.0;

/// Absolute slack on `p99_ms` (milliseconds).
const P99_SLACK: f64 = 0.5;

/// One sweep cell's gated metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryCell {
    /// `class/policy/mode`, the cell's identity across revisions.
    pub key: String,
    /// GRP bytes the cell's propagation encoded.
    pub grp_bytes_encoded: u64,
    /// 99th-percentile read latency, milliseconds.
    pub p99_ms: f64,
}

fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest
        .find([',', '}'])
        .expect("sweep rows terminate every field");
    Some(rest[..end].trim())
}

fn field_str(row: &str, key: &str) -> Option<String> {
    let raw = field(row, key)?;
    Some(raw.trim_matches('"').to_owned())
}

/// Parses the matrix emitted by [`crate::sweep::sweep_json`].
pub fn parse_sweep_json(json: &str) -> Result<Vec<TrajectoryCell>, String> {
    let mut cells = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            return Err("unterminated sweep row".into());
        };
        let row = &rest[open..open + close + 1];
        rest = &rest[open + close + 1..];
        let key = match (
            field_str(row, "class"),
            field_str(row, "policy"),
            field_str(row, "mode"),
        ) {
            (Some(c), Some(p), Some(m)) => format!("{c}/{p}/{m}"),
            _ => return Err(format!("sweep row lacks class/policy/mode: {row}")),
        };
        let grp_bytes_encoded = field(row, "grp_bytes_encoded")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{key}: bad grp_bytes_encoded"))?;
        let p99_ms = field(row, "p99_ms")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{key}: bad p99_ms"))?;
        cells.push(TrajectoryCell {
            key,
            grp_bytes_encoded,
            p99_ms,
        });
    }
    if cells.is_empty() {
        return Err("sweep JSON contains no cells".into());
    }
    Ok(cells)
}

fn regressed(baseline: f64, current: f64, slack: f64) -> bool {
    current > baseline * (1.0 + TRAJECTORY_TOLERANCE) + slack
}

/// Diffs `current` against `baseline` (both in the sweep's JSON
/// format). `Err` means a matrix could not be parsed; `Ok` carries one
/// message per regression (empty = within tolerance).
pub fn compare_trajectory(baseline: &str, current: &str) -> Result<Vec<String>, String> {
    let base = parse_sweep_json(baseline)?;
    let cur = parse_sweep_json(current)?;
    let mut violations = Vec::new();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.key == b.key) else {
            violations.push(format!("{}: cell missing from current sweep", b.key));
            continue;
        };
        if regressed(
            b.grp_bytes_encoded as f64,
            c.grp_bytes_encoded as f64,
            BYTES_SLACK,
        ) {
            violations.push(format!(
                "{}: grp bytes regressed {} -> {} (> {:.0}% + slack)",
                b.key,
                b.grp_bytes_encoded,
                c.grp_bytes_encoded,
                TRAJECTORY_TOLERANCE * 100.0
            ));
        }
        if regressed(b.p99_ms, c.p99_ms, P99_SLACK) {
            violations.push(format!(
                "{}: p99 regressed {:.3} ms -> {:.3} ms (> {:.0}% + slack)",
                b.key,
                b.p99_ms,
                c.p99_ms,
                TRAJECTORY_TOLERANCE * 100.0
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_json;
    use crate::{CellReport, DsoClass};
    use globe_rts::PropagationMode;
    use globe_workloads::ScenarioPolicy;

    fn report(bytes: u64, p99: f64) -> CellReport {
        CellReport {
            policy: ScenarioPolicy::Central,
            mode: PropagationMode::PushState,
            class: DsoClass::Package,
            regions: 3,
            replicas: 1,
            writes_completed: 10,
            requests: 20,
            ok: 20,
            p50_ms: 1.0,
            p99_ms: p99,
            grp_encodes: 5,
            grp_bytes_encoded: bytes,
            stable_puts: 5,
            deltas_applied: 0,
            fresh_reads: 20,
            stale_reads: 0,
            wan_bytes: 1000,
            downloads_recorded: 0,
        }
    }

    #[test]
    fn parses_the_sweep_emitter_format() {
        let json = sweep_json(&[report(100_000, 12.5)]);
        let cells = parse_sweep_json(&json).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key, "package/central/push_state");
        assert_eq!(cells[0].grp_bytes_encoded, 100_000);
        assert!((cells[0].p99_ms - 12.5).abs() < 1e-9);
    }

    #[test]
    fn identical_sweeps_pass() {
        let json = sweep_json(&[report(100_000, 12.5)]);
        assert_eq!(
            compare_trajectory(&json, &json).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn regressions_are_flagged_per_metric() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        let worse = sweep_json(&[report(120_000, 20.0)]);
        let violations = compare_trajectory(&base, &worse).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("grp bytes"));
        assert!(violations[1].contains("p99"));
    }

    #[test]
    fn small_drift_stays_within_tolerance() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        let drift = sweep_json(&[report(104_000, 13.0)]);
        assert_eq!(
            compare_trajectory(&base, &drift).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn missing_cells_and_garbage_are_errors() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        let violations = compare_trajectory(&base, "[\n]\n");
        assert!(violations.is_err());
        let two = sweep_json(&[report(1, 1.0)]);
        let mut only_other = two.clone();
        only_other = only_other.replace("push_state", "push_delta");
        let v = compare_trajectory(&two, &only_other).unwrap();
        assert!(v[0].contains("missing"), "{v:?}");
    }
}
