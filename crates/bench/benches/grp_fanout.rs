//! GRP fan-out bench: one master × {1, 8, 64} slaves, push-state vs
//! push-delta, over the write-heavy download-stats workload.
//!
//! Besides wall-clock timings, each configuration's world-level
//! measurements (GRP bytes encoded, stable-storage writes, deltas
//! applied) are printed and written to `BENCH_grp_fanout.json`, so the
//! fan-out cost trajectory is machine-readable across revisions.

use criterion::{criterion_group, criterion_main, Criterion};
use globe_bench::{grp_fanout_run, FanoutReport};
use globe_rts::PropagationMode;

const WRITES: usize = 16;
const SEED: u64 = 20_000_626;

fn mode_label(mode: PropagationMode) -> &'static str {
    match mode {
        PropagationMode::PushState => "push_state",
        PropagationMode::PushDelta => "push_delta",
        PropagationMode::Invalidate => "invalidate",
        PropagationMode::ApplyOps => "apply_ops",
        PropagationMode::PushChunks => "push_chunks",
    }
}

fn report_json(r: &FanoutReport) -> String {
    format!(
        concat!(
            "{{\"mode\":\"{}\",\"slaves\":{},\"writes\":{},",
            "\"grp_encodes\":{},\"grp_bytes_encoded\":{},",
            "\"stable_puts\":{},\"digest_skips\":{},",
            "\"persist_deferred\":{},\"deltas_applied\":{},",
            "\"stale_reads\":{},\"fresh_reads\":{}}}"
        ),
        mode_label(r.mode),
        r.slaves,
        r.writes_completed,
        r.grp_encodes,
        r.grp_bytes_encoded,
        r.stable_puts,
        r.digest_skips,
        r.persist_deferred,
        r.deltas_applied,
        r.stale_reads,
        r.fresh_reads,
    )
}

fn bench_grp_fanout(c: &mut Criterion) {
    let mut reports: Vec<FanoutReport> = Vec::new();
    let mut g = c.benchmark_group("grp_fanout");
    for &slaves in &[1usize, 8, 64] {
        for mode in [PropagationMode::PushState, PropagationMode::PushDelta] {
            let mut last: Option<FanoutReport> = None;
            g.bench_function(format!("{}/{slaves}", mode_label(mode)), |b| {
                b.iter(|| last = Some(grp_fanout_run(slaves, mode, WRITES, SEED)))
            });
            let report = last.expect("bench ran at least once");
            assert_eq!(report.writes_completed, WRITES);
            reports.push(report);
        }
    }
    g.finish();

    for r in &reports {
        println!(
            "grp_fanout {:>10}/{:<2}  bytes_encoded={:>8}  stable_puts={:>5}  deltas_applied={:>5}",
            mode_label(r.mode),
            r.slaves,
            r.grp_bytes_encoded,
            r.stable_puts,
            r.deltas_applied,
        );
    }
    let json = format!(
        "[\n  {}\n]\n",
        reports
            .iter()
            .map(report_json)
            .collect::<Vec<_>>()
            .join(",\n  ")
    );
    // Anchor at the workspace root regardless of cargo's bench CWD.
    let path = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../BENCH_grp_fanout.json"),
        Err(_) => "BENCH_grp_fanout.json".to_owned(),
    };
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_grp_fanout);
criterion_main!(benches);
