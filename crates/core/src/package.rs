//! The package DSO: the distributed shared object holding one software
//! package.
//!
//! "All data stored in the GDN is stored in distributed shared objects.
//! For example, every software package is contained in a package DSO."
//! (paper §3.1). The semantics subobject here implements exactly the
//! methods the paper names — adding files, listing contents, retrieving
//! file contents (§3.3, §4) — plus removal and metadata, all free of any
//! replication awareness.
//!
//! [`PackageControl`] is the *control subobject* (paper §3.3): the typed
//! wrapper that marshals arguments into opaque [`Invocation`] frames and
//! unmarshals results, bridging the user-visible interface to the
//! replication subobject's standard interface.

use globe_crypto::sha256::sha256;
use globe_net::{WireError, WireReader, WireWriter};
use globe_rts::{ClassSpec, ImplId, Invocation, MethodId, MethodKind, SemError, SemanticsObject};
use std::collections::BTreeMap;

/// The package class's identifier in the implementation repository.
pub const PACKAGE_IMPL: ImplId = ImplId(10);

/// Method: add (or replace) a file. Write.
pub const M_ADD_FILE: MethodId = MethodId(1);
/// Method: remove a file. Write.
pub const M_REMOVE_FILE: MethodId = MethodId(2);
/// Method: list the package contents. Read.
pub const M_LIST_CONTENTS: MethodId = MethodId(3);
/// Method: get one file's contents. Read.
pub const M_GET_FILE: MethodId = MethodId(4);
/// Method: get the package description. Read.
pub const M_GET_META: MethodId = MethodId(5);
/// Method: set the package description. Write.
pub const M_SET_META: MethodId = MethodId(6);

/// One file in a package listing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileInfo {
    /// File name within the package.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// SHA-256 digest of the contents (integrity per paper §6.1).
    pub digest: [u8; 32],
}

#[derive(Clone, Debug, Default)]
struct FileEntry {
    data: Vec<u8>,
    digest: [u8; 32],
}

/// The package semantics subobject.
#[derive(Default)]
pub struct PackageDso {
    description: String,
    files: BTreeMap<String, FileEntry>,
}

impl PackageDso {
    /// Creates an empty package.
    pub fn new() -> PackageDso {
        PackageDso::default()
    }

    /// Registers the package class in an implementation repository.
    pub fn register(repo: &mut globe_rts::ImplRepository) {
        repo.register(
            PACKAGE_IMPL,
            ClassSpec {
                name: "gdn-package",
                factory: || Box::new(PackageDso::new()),
                kind_of: |m| match m {
                    M_LIST_CONTENTS | M_GET_FILE | M_GET_META => Some(MethodKind::Read),
                    M_ADD_FILE | M_REMOVE_FILE | M_SET_META => Some(MethodKind::Write),
                    _ => None,
                },
            },
        );
    }

    /// Number of files (direct inspection for tests).
    pub fn num_files(&self) -> usize {
        self.files.len()
    }
}

impl SemanticsObject for PackageDso {
    fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
        let mut r = WireReader::new(&inv.args);
        match inv.method {
            M_ADD_FILE => {
                let name = r.str().map_err(|_| SemError::BadArguments)?.to_owned();
                let data = r.bytes().map_err(|_| SemError::BadArguments)?.to_vec();
                r.expect_end().map_err(|_| SemError::BadArguments)?;
                let digest = sha256(&data);
                self.files.insert(name, FileEntry { data, digest });
                Ok(Vec::new())
            }
            M_REMOVE_FILE => {
                let name = r.str().map_err(|_| SemError::BadArguments)?;
                let existed = self.files.remove(name).is_some();
                if existed {
                    Ok(Vec::new())
                } else {
                    Err(SemError::Application(format!("no file {name:?}")))
                }
            }
            M_LIST_CONTENTS => {
                r.expect_end().map_err(|_| SemError::BadArguments)?;
                let mut w = WireWriter::new();
                w.put_u32(self.files.len() as u32);
                for (name, entry) in &self.files {
                    w.put_str(name);
                    w.put_u64(entry.data.len() as u64);
                    w.put_raw(&entry.digest);
                }
                Ok(w.finish())
            }
            M_GET_FILE => {
                let name = r.str().map_err(|_| SemError::BadArguments)?;
                match self.files.get(name) {
                    Some(entry) => {
                        let mut w = WireWriter::new();
                        w.put_bytes(&entry.data);
                        w.put_raw(&entry.digest);
                        Ok(w.finish())
                    }
                    None => Err(SemError::Application(format!("no file {name:?}"))),
                }
            }
            M_GET_META => {
                let mut w = WireWriter::new();
                w.put_str(&self.description);
                Ok(w.finish())
            }
            M_SET_META => {
                let desc = r.str().map_err(|_| SemError::BadArguments)?.to_owned();
                self.description = desc;
                Ok(Vec::new())
            }
            m => Err(SemError::NoSuchMethod(m)),
        }
    }

    fn get_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_str(&self.description);
        w.put_u32(self.files.len() as u32);
        for (name, entry) in &self.files {
            w.put_str(name);
            w.put_bytes(&entry.data);
        }
        w.finish()
    }

    fn set_state(&mut self, state: &[u8]) -> Result<(), SemError> {
        let mut r = WireReader::new(state);
        let parse = || -> Result<(String, BTreeMap<String, FileEntry>), WireError> {
            let mut r = WireReader::new(state);
            let description = r.str()?.to_owned();
            let n = r.u32()?;
            if n > 1_000_000 {
                return Err(WireError::TooLarge);
            }
            let mut files = BTreeMap::new();
            for _ in 0..n {
                let name = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                let digest = sha256(&data);
                files.insert(name, FileEntry { data, digest });
            }
            r.expect_end()?;
            Ok((description, files))
        };
        let _ = &mut r;
        let (description, files) = parse().map_err(|_| SemError::BadState)?;
        self.description = description;
        self.files = files;
        Ok(())
    }
}

/// The control subobject: typed marshalling for the package interface.
pub struct PackageControl;

impl PackageControl {
    /// Marshals `addFile(name, data)`.
    pub fn add_file(name: &str, data: &[u8]) -> Invocation {
        let mut w = WireWriter::new();
        w.put_str(name);
        w.put_bytes(data);
        Invocation::new(M_ADD_FILE, w.finish())
    }

    /// Marshals `removeFile(name)`.
    pub fn remove_file(name: &str) -> Invocation {
        let mut w = WireWriter::new();
        w.put_str(name);
        Invocation::new(M_REMOVE_FILE, w.finish())
    }

    /// Marshals `listContents()`.
    pub fn list_contents() -> Invocation {
        Invocation::new(M_LIST_CONTENTS, Vec::new())
    }

    /// Marshals `getFileContents(name)`.
    pub fn get_file(name: &str) -> Invocation {
        let mut w = WireWriter::new();
        w.put_str(name);
        Invocation::new(M_GET_FILE, w.finish())
    }

    /// Marshals `getMeta()`.
    pub fn get_meta() -> Invocation {
        Invocation::new(M_GET_META, Vec::new())
    }

    /// Marshals `setMeta(description)`.
    pub fn set_meta(description: &str) -> Invocation {
        let mut w = WireWriter::new();
        w.put_str(description);
        Invocation::new(M_SET_META, w.finish())
    }

    /// Unmarshals a `listContents` result.
    pub fn decode_listing(data: &[u8]) -> Result<Vec<FileInfo>, WireError> {
        let mut r = WireReader::new(data);
        let n = r.u32()?;
        if n > 1_000_000 {
            return Err(WireError::TooLarge);
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = r.str()?.to_owned();
            let size = r.u64()?;
            let mut digest = [0u8; 32];
            digest.copy_from_slice(r.raw(32)?);
            out.push(FileInfo { name, size, digest });
        }
        r.expect_end()?;
        Ok(out)
    }

    /// Unmarshals a `getFileContents` result, verifying the embedded
    /// digest (end-to-end integrity, paper §6.1).
    pub fn decode_file(data: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut r = WireReader::new(data);
        let contents = r.bytes()?.to_vec();
        let mut digest = [0u8; 32];
        digest.copy_from_slice(r.raw(32)?);
        r.expect_end()?;
        if sha256(&contents) != digest {
            // Treat a digest mismatch as a framing error: the payload
            // was corrupted somewhere beneath us.
            return Err(WireError::Truncated);
        }
        Ok(contents)
    }

    /// Unmarshals a `getMeta` result.
    pub fn decode_meta(data: &[u8]) -> Result<String, WireError> {
        let mut r = WireReader::new(data);
        let desc = r.str()?.to_owned();
        r.expect_end()?;
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(pkg: &mut PackageDso, inv: Invocation) -> Result<Vec<u8>, SemError> {
        pkg.dispatch(&inv)
    }

    #[test]
    fn add_list_get_remove() {
        let mut pkg = PackageDso::new();
        exec(&mut pkg, PackageControl::add_file("README", b"hello")).unwrap();
        exec(&mut pkg, PackageControl::add_file("src.tar", &[7u8; 1000])).unwrap();

        let listing =
            PackageControl::decode_listing(&exec(&mut pkg, PackageControl::list_contents()).unwrap())
                .unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "README");
        assert_eq!(listing[0].size, 5);
        assert_eq!(listing[1].size, 1000);

        let contents =
            PackageControl::decode_file(&exec(&mut pkg, PackageControl::get_file("README")).unwrap())
                .unwrap();
        assert_eq!(contents, b"hello");

        exec(&mut pkg, PackageControl::remove_file("README")).unwrap();
        assert_eq!(pkg.num_files(), 1);
        assert!(exec(&mut pkg, PackageControl::get_file("README")).is_err());
        assert!(exec(&mut pkg, PackageControl::remove_file("README")).is_err());
    }

    #[test]
    fn metadata_round_trip() {
        let mut pkg = PackageDso::new();
        exec(&mut pkg, PackageControl::set_meta("GNU Image Manipulation Program")).unwrap();
        let meta =
            PackageControl::decode_meta(&exec(&mut pkg, PackageControl::get_meta()).unwrap())
                .unwrap();
        assert_eq!(meta, "GNU Image Manipulation Program");
    }

    #[test]
    fn state_transfer_preserves_everything() {
        let mut a = PackageDso::new();
        exec(&mut a, PackageControl::set_meta("teTeX")).unwrap();
        exec(&mut a, PackageControl::add_file("tex.bin", &[1, 2, 3])).unwrap();
        let state = a.get_state();

        let mut b = PackageDso::new();
        b.set_state(&state).unwrap();
        let listing =
            PackageControl::decode_listing(&exec(&mut b, PackageControl::list_contents()).unwrap())
                .unwrap();
        assert_eq!(listing.len(), 1);
        let meta =
            PackageControl::decode_meta(&exec(&mut b, PackageControl::get_meta()).unwrap()).unwrap();
        assert_eq!(meta, "teTeX");
        // Digest recomputed identically.
        assert_eq!(listing[0].digest, sha256(&[1, 2, 3]));
    }

    #[test]
    fn malformed_arguments_rejected() {
        let mut pkg = PackageDso::new();
        assert_eq!(
            pkg.dispatch(&Invocation::new(M_ADD_FILE, vec![0xFF])),
            Err(SemError::BadArguments)
        );
        assert!(matches!(
            pkg.dispatch(&Invocation::new(MethodId(99), vec![])),
            Err(SemError::NoSuchMethod(_))
        ));
        assert!(pkg.set_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn digest_verified_on_decode() {
        let mut pkg = PackageDso::new();
        exec(&mut pkg, PackageControl::add_file("f", b"data")).unwrap();
        let mut resp = exec(&mut pkg, PackageControl::get_file("f")).unwrap();
        // Corrupt one payload byte: decode must fail.
        resp[4] ^= 0xFF;
        assert!(PackageControl::decode_file(&resp).is_err());
    }

    #[test]
    fn class_registration() {
        let mut repo = globe_rts::ImplRepository::new();
        PackageDso::register(&mut repo);
        assert!(repo.contains(PACKAGE_IMPL));
        assert_eq!(repo.kind_of(PACKAGE_IMPL, M_GET_FILE), Some(MethodKind::Read));
        assert_eq!(repo.kind_of(PACKAGE_IMPL, M_ADD_FILE), Some(MethodKind::Write));
        assert_eq!(repo.kind_of(PACKAGE_IMPL, MethodId(99)), None);
    }
}
