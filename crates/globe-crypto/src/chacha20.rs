//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! Plays the role the paper assigns to the SSL/TLS bulk cipher (§6.3):
//! the confidentiality layer the GDN "pays for but does not need". The
//! gTLS `AuthEncrypt` mode uses it in encrypt-then-MAC composition;
//! experiment E5 measures what turning it off saves.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR stream; the operation is its
/// own inverse). `initial_counter` is normally 0 for record encryption.
///
/// # Examples
///
/// ```
/// use globe_crypto::chacha20::chacha20_xor;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = b"attack at dawn".to_vec();
/// chacha20_xor(&key, &nonce, 0, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// chacha20_xor(&key, &nonce, 0, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let ks = block(&key, 1, &nonce);
        assert_eq!(hex(&ks[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        for n in [0usize, 1, 63, 64, 65, 200, 1000] {
            let original: Vec<u8> = (0..n).map(|i| (i * 7 % 256) as u8).collect();
            let mut data = original.clone();
            chacha20_xor(&key, &nonce, 0, &mut data);
            if n > 8 {
                assert_ne!(data, original, "len {n} must change");
            }
            chacha20_xor(&key, &nonce, 0, &mut data);
            assert_eq!(data, original, "len {n} must round-trip");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[0u8; 12], 0, &mut a);
        chacha20_xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let nonce = [0u8; 12];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&[1u8; 32], &nonce, 0, &mut a);
        chacha20_xor(&[2u8; 32], &nonce, 0, &mut b);
        assert_ne!(a, b);
    }
}
