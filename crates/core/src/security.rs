//! GDN security material: the certification authority and the
//! per-party channel configurations of paper Figure 4.
//!
//! | channel | paper label | configuration |
//! |---|---|---|
//! | GDN host ↔ GDN host (GRP, GOS control) | (3) | server auth + requested client cert; writes gated on role |
//! | browser → GDN-HTTPD | (1) | plain HTTP or server-auth gTLS |
//! | GDN host ↔ GDN proxy on a user machine | (2) | server auth, anonymous client |
//! | moderator tool → Naming Authority | (3) | mutual (required client cert) |

use globe_crypto::cert::{CertAuthority, Certificate, Credentials, Role};
use globe_crypto::gtls::{Mode, TlsConfig};
use globe_net::HostId;

/// All key material for one GDN deployment.
pub struct GdnSecurity {
    /// The GDN certification authority (the administrators of §2).
    pub ca: CertAuthority,
    mode: Mode,
    seed: u64,
}

impl GdnSecurity {
    /// Creates the authority and derives all credentials from `seed`.
    pub fn new(mode: Mode, seed: u64) -> GdnSecurity {
        GdnSecurity {
            ca: CertAuthority::new("gdn-root", seed),
            mode,
            seed,
        }
    }

    /// The channel protection mode for this deployment.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The trust anchors every party configures.
    pub fn roots(&self) -> Vec<Certificate> {
        vec![self.ca.root_cert().clone()]
    }

    /// Credentials for a GDN host (object servers, HTTPDs).
    pub fn host_credentials(&self, host: HostId) -> Credentials {
        Credentials::issue(
            &self.ca,
            &format!("gdn-host-{}", host.0),
            Role::Host,
            self.seed ^ (0x1000_0000 + host.0 as u64),
        )
    }

    /// Credentials for a moderator (paper §2: may create, update and
    /// remove packages).
    pub fn moderator_credentials(&self, name: &str) -> Credentials {
        Credentials::issue(
            &self.ca,
            &format!("moderator:{name}"),
            Role::Moderator,
            self.seed ^ hash_name(name),
        )
    }

    /// Credentials for a maintainer (the paper's planned fourth group).
    pub fn maintainer_credentials(&self, name: &str) -> Credentials {
        Credentials::issue(
            &self.ca,
            &format!("maintainer:{name}"),
            Role::Maintainer,
            self.seed ^ hash_name(name) ^ 0xABCD,
        )
    }

    /// Server-side configuration for a GDN host's replica port: the
    /// host authenticates itself; clients are *asked* for certificates
    /// so privileged parties can prove their role while anonymous users
    /// still read (Figure 4 labels 2 and 3).
    pub fn host_server(&self, host: HostId) -> TlsConfig {
        TlsConfig::server_auth(self.mode, self.host_credentials(host), self.roots())
    }

    /// Client-side configuration for a GDN host dialing another host.
    pub fn host_client(&self, host: HostId) -> TlsConfig {
        TlsConfig::client_with_identity(self.mode, self.host_credentials(host), self.roots())
    }

    /// Client-side configuration for a moderator tool.
    pub fn moderator_client(&self, name: &str) -> TlsConfig {
        TlsConfig::client_with_identity(self.mode, self.moderator_credentials(name), self.roots())
    }

    /// Client-side configuration for anonymous user software (browsers,
    /// GDN proxies on user machines).
    pub fn anonymous_client(&self) -> TlsConfig {
        TlsConfig::client(self.mode, self.roots())
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credentials_verify_against_roots() {
        let sec = GdnSecurity::new(Mode::AuthOnly, 42);
        let roots = sec.roots();
        sec.host_credentials(HostId(3))
            .cert
            .verify_against(&roots)
            .unwrap();
        sec.moderator_credentials("alice")
            .cert
            .verify_against(&roots)
            .unwrap();
        assert_eq!(
            sec.moderator_credentials("alice").cert.role,
            Role::Moderator
        );
        assert_eq!(
            sec.maintainer_credentials("bob").cert.role,
            Role::Maintainer
        );
    }

    #[test]
    fn distinct_parties_distinct_keys() {
        let sec = GdnSecurity::new(Mode::AuthOnly, 42);
        assert_ne!(
            sec.host_credentials(HostId(1)).cert.public_key,
            sec.host_credentials(HostId(2)).cert.public_key
        );
        assert_ne!(
            sec.moderator_credentials("alice").cert.public_key,
            sec.moderator_credentials("bob").cert.public_key
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GdnSecurity::new(Mode::AuthOnly, 42);
        let b = GdnSecurity::new(Mode::AuthOnly, 42);
        assert_eq!(
            a.host_credentials(HostId(1)).cert.public_key,
            b.host_credentials(HostId(1)).cert.public_key
        );
    }
}
