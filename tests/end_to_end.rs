//! Repository-level integration test: the complete system through the
//! facade crate, exactly as a downstream user would drive it.

use globe::gdn::{Browser, GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::gls::GlsConfig;
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::rts::PropagationMode;
use globe::sim::SimDuration;

#[test]
fn full_stack_publish_replicate_browse() {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), 11);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());

    let gos_r0 = gdn.gos_for(world.topology(), HostId(0));
    let gos_r1 = gdn.gos_for(world.topology(), HostId(12));
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![
            ModOp::Publish {
                name: "/apps/graphics/gimp".into(),
                description: "image editor".into(),
                files: vec![("pkg.tar".into(), vec![1u8; 50_000])],
                scenario: Scenario::master_slave(vec![gos_r0, gos_r1], PropagationMode::PushState),
            },
            ModOp::Publish {
                name: "/os/linux/kernel".into(),
                description: "the kernel".into(),
                files: vec![("pkg.tar".into(), vec![2u8; 80_000])],
                scenario: Scenario::cached(gos_r0),
            },
        ],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(60));
    let t = world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("tool");
    assert_eq!(t.results.len(), 2, "{:?}", t.results);
    assert!(t
        .results
        .iter()
        .all(|r| matches!(r, ModEvent::PublishDone { result: Ok(_), .. })));

    // Browse both packages from both regions.
    for (user, port) in [(HostId(4), 9100u16), (HostId(13), 9100)] {
        let httpd = gdn.httpd_for(world.topology(), user);
        let browser = Browser::new(
            httpd,
            vec![
                "/pkg/apps/graphics/gimp".into(),
                "/pkg/apps/graphics/gimp?file=pkg.tar".into(),
                "/pkg/os/linux/kernel?file=pkg.tar".into(),
            ],
        );
        world.add_service(user, port, browser);
    }
    world.run_for(SimDuration::from_secs(120));
    for user in [HostId(4), HostId(13)] {
        let b = world.service::<Browser>(user, 9100).expect("browser");
        assert!(b.done(), "user {user:?}: {:?}", b.results);
        assert!(
            b.results.iter().all(|r| r.status == 200),
            "user {user:?}: {:?}",
            b.results
                .iter()
                .map(|r| (r.path.clone(), r.status))
                .collect::<Vec<_>>()
        );
        assert_eq!(b.results[1].body_len, 50_000);
        assert_eq!(b.results[2].body_len, 80_000);
    }
}

#[test]
fn replica_crash_heals_via_rebind() {
    // A replicated package stays available when the nearest replica's
    // host dies: once the dead replica's GLS lease expires, the HTTPD's
    // re-bind resolves to a surviving replica.
    let topo = Topology::grid(2, 1, 2, 3);
    let gos_hosts: Vec<HostId> = topo
        .sites()
        .filter_map(|s| topo.hosts_in_site(s).get(1).copied())
        .collect();
    let mut world = World::new(topo, NetParams::default(), 13);
    let gdn = GdnDeployment::install(
        &mut world,
        GdnOptions {
            gos_hosts,
            gls: GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(20)),
            ..GdnOptions::default()
        },
    );
    let replicas = vec![gdn.gos_endpoints[0], gdn.gos_endpoints[2]];
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(2),
        "alice",
        vec![ModOp::Publish {
            name: "/apps/vital".into(),
            description: "must stay up".into(),
            files: vec![("pkg.tar".into(), vec![5u8; 10_000])],
            scenario: Scenario::master_slave(replicas.clone(), PropagationMode::PushState),
        }],
    );
    world.add_service(HostId(2), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));

    // Fetch once (binds the HTTPD to its choice of replica).
    let user = HostId(11);
    let httpd = gdn.httpd_for(world.topology(), user);
    world.add_service(
        user,
        9100,
        Browser::new(httpd, vec!["/pkg/apps/vital?file=pkg.tar".into()]),
    );
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        world
            .service::<Browser>(user, 9100)
            .expect("browser")
            .results[0]
            .status,
        200
    );

    // Kill the slave in the user's own region; wait out its GLS lease
    // (the crashed server stops refreshing), then fetch again.
    world.crash_host(replicas[1].host);
    world.run_for(SimDuration::from_secs(25));
    world.add_service(
        user,
        9101,
        Browser::new(httpd, vec!["/pkg/apps/vital?file=pkg.tar".into()]),
    );
    world.run_for(SimDuration::from_secs(60));
    let b = world.service::<Browser>(user, 9101).expect("browser");
    assert_eq!(
        b.results[0].status, 200,
        "fetch must heal via rebind: {:?}",
        b.results
    );
}

#[test]
fn deterministic_replay() {
    // Identical seeds give bit-identical metrics — the reproducibility
    // guarantee every experiment in EXPERIMENTS.md rests on.
    let run = |seed: u64| {
        let topo = Topology::grid(2, 1, 1, 2);
        let mut world = World::new(topo, NetParams::default(), seed);
        let gdn = GdnDeployment::install(&mut world, GdnOptions::default());
        let tool = gdn.moderator_tool(
            world.topology(),
            HostId(1),
            "alice",
            vec![ModOp::Publish {
                name: "/apps/x".into(),
                description: "x".into(),
                files: vec![("pkg.tar".into(), vec![3u8; 5_000])],
                scenario: Scenario::single(gdn.gos_endpoints[0]),
            }],
        );
        world.add_service(HostId(1), ports::DRIVER, tool);
        world.start();
        world.run_for(SimDuration::from_secs(60));
        let httpd = gdn.httpd_for(world.topology(), HostId(3));
        world.add_service(
            HostId(3),
            9100,
            Browser::new(httpd, vec!["/pkg/apps/x?file=pkg.tar".into()]),
        );
        world.run_for(SimDuration::from_secs(60));
        format!("{:?}", world.metrics().counters().collect::<Vec<_>>())
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
