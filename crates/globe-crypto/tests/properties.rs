//! Property-based tests of the cryptographic invariants gTLS rests on.

use proptest::prelude::*;

use globe_crypto::cert::{CertAuthority, Certificate, Credentials, Role};
use globe_crypto::chacha20::chacha20_xor;
use globe_crypto::gtls::{Mode, TlsConfig, TlsEvent, TlsSession};
use globe_crypto::hmac::{hkdf, hmac_sha256, verify_tag};
use globe_crypto::sha256::{sha256, Sha256};
use globe_crypto::sig::{keygen_from_seed, sign, verify};
use globe_sim::Rng;

proptest! {
    /// Incremental hashing over any chunking equals one-shot hashing.
    #[test]
    fn sha256_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut positions: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        positions.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &p in &positions {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }

    /// Distinct single-bit flips change the digest (second-preimage
    /// smoke test — not a security proof, a correctness check).
    #[test]
    fn sha256_bit_flip_changes_digest(
        mut data in prop::collection::vec(any::<u8>(), 1..512),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let original = sha256(&data);
        let idx = byte.index(data.len());
        data[idx] ^= 1 << bit;
        prop_assert_ne!(sha256(&data), original);
    }

    /// HMAC verification accepts the genuine tag and rejects any
    /// modified tag.
    #[test]
    fn hmac_verification(
        key in prop::collection::vec(any::<u8>(), 0..80),
        msg in prop::collection::vec(any::<u8>(), 0..512),
        flip in any::<prop::sample::Index>(),
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_tag(&tag, &tag));
        let mut bad = tag;
        let idx = flip.index(32);
        bad[idx] ^= 0x01;
        prop_assert!(!verify_tag(&tag, &bad));
    }

    /// HKDF: shorter outputs are prefixes of longer ones; distinct info
    /// strings separate.
    #[test]
    fn hkdf_prefix_and_separation(
        secret in prop::collection::vec(any::<u8>(), 1..64),
        salt in prop::collection::vec(any::<u8>(), 0..32),
        short in 1usize..64,
        long in 64usize..256,
    ) {
        let a = hkdf(&secret, &salt, b"ctx-a", long);
        let b = hkdf(&secret, &salt, b"ctx-a", short);
        prop_assert_eq!(&a[..short], &b[..]);
        let c = hkdf(&secret, &salt, b"ctx-b", short);
        prop_assert_ne!(b, c);
    }

    /// ChaCha20 is an involution under the same key/nonce and never a
    /// no-op on inputs longer than a few bytes.
    #[test]
    fn chacha20_round_trip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::collection::vec(any::<u8>(), 12),
        data in prop::collection::vec(any::<u8>(), 0..1024),
        counter: u32,
    ) {
        let nonce: [u8; 12] = nonce.try_into().expect("12 bytes");
        let mut work = data.clone();
        chacha20_xor(&key, &nonce, counter, &mut work);
        if data.len() >= 16 {
            prop_assert_ne!(&work, &data);
        }
        chacha20_xor(&key, &nonce, counter, &mut work);
        prop_assert_eq!(work, data);
    }

    /// Schnorr signatures verify for the signer and fail for everyone
    /// and everything else.
    #[test]
    fn schnorr_soundness(seed_a: u64, seed_b: u64, msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let (sk_a, pk_a) = keygen_from_seed(seed_a);
        let (_, pk_b) = keygen_from_seed(seed_b.wrapping_add(1).wrapping_mul(31));
        let sig = sign(&sk_a, &msg);
        prop_assert!(verify(&pk_a, &msg, &sig));
        if pk_a != pk_b {
            prop_assert!(!verify(&pk_b, &msg, &sig));
        }
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!verify(&pk_a, &other, &sig));
    }

    /// Certificates survive encode/decode and only verify under the
    /// issuing authority's trust anchor.
    #[test]
    fn certificate_round_trip_and_trust(seed: u64, subject in "[a-z][a-z0-9.-]{0,24}") {
        let ca = CertAuthority::new("root-a", seed);
        let other = CertAuthority::new("root-b", seed.wrapping_add(7));
        let creds = Credentials::issue(&ca, &subject, Role::Host, seed ^ 0x77);
        let decoded = Certificate::decode(&creds.cert.encode()).unwrap();
        prop_assert_eq!(&decoded, &creds.cert);
        prop_assert!(decoded.verify_against(&[ca.root_cert().clone()]).is_ok());
        prop_assert!(decoded.verify_against(&[other.root_cert().clone()]).is_err());
    }

    /// Arbitrary payloads survive a full gTLS handshake and record
    /// exchange in both secure modes, in both directions.
    #[test]
    fn gtls_transports_arbitrary_payloads(
        seed: u64,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..6),
        encrypt: bool,
    ) {
        let mode = if encrypt { Mode::AuthEncrypt } else { Mode::AuthOnly };
        let ca = CertAuthority::new("gdn-root", 1);
        let server = Credentials::issue(&ca, "gos", Role::Host, 2);
        let roots = vec![ca.root_cert().clone()];
        let mut rng = Rng::new(seed);
        let (mut c, hello) =
            TlsSession::client(TlsConfig::client(mode, roots.clone()), &mut rng).unwrap();
        let mut s = TlsSession::server(TlsConfig::server_auth(mode, server, roots));
        let out = s.on_message(&hello, &mut rng).unwrap();
        let out = c.on_message(&out.replies[0], &mut rng).unwrap();
        for reply in out.replies {
            s.on_message(&reply, &mut rng).unwrap();
        }
        prop_assert!(c.established() && s.established());
        for p in &payloads {
            let rec = c.seal(p).unwrap();
            let out = s.on_message(&rec, &mut rng).unwrap();
            prop_assert_eq!(&out.events, &vec![TlsEvent::Data(p.clone())]);
            let rec = s.seal(p).unwrap();
            let out = c.on_message(&rec, &mut rng).unwrap();
            prop_assert_eq!(&out.events, &vec![TlsEvent::Data(p.clone())]);
        }
    }

    /// The gTLS state machine never panics on arbitrary inbound bytes.
    #[test]
    fn gtls_server_is_total(garbage in prop::collection::vec(any::<u8>(), 0..128), seed: u64) {
        let ca = CertAuthority::new("gdn-root", 1);
        let server = Credentials::issue(&ca, "gos", Role::Host, 2);
        let roots = vec![ca.root_cert().clone()];
        let mut s = TlsSession::server(TlsConfig::server_auth(Mode::AuthOnly, server, roots));
        let mut rng = Rng::new(seed);
        let _ = s.on_message(&garbage, &mut rng); // must return, not panic
    }
}
