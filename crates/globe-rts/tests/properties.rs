//! Property-based tests of the runtime's codecs and the package-free
//! object machinery: opaque invocation frames, GRP messages and replica
//! descriptors all round-trip; decoding is total.

use proptest::prelude::*;

use globe_net::{Endpoint, HostId, WireReader, WireWriter};
use globe_rts::{
    GosCmd, GosResp, GrpBody, GrpMsg, Invocation, MethodId, PropagationMode, RoleSpec,
};

fn arb_inv() -> impl Strategy<Value = Invocation> {
    (any::<u32>(), prop::collection::vec(any::<u8>(), 0..256))
        .prop_map(|(m, args)| Invocation::new(MethodId(m), args))
}

fn arb_role() -> impl Strategy<Value = RoleSpec> {
    prop_oneof![
        Just(RoleSpec::Standalone),
        prop_oneof![
            Just(PropagationMode::PushState),
            Just(PropagationMode::Invalidate),
            Just(PropagationMode::ApplyOps),
        ]
        .prop_map(|mode| RoleSpec::Master { mode }),
        (any::<u32>(), any::<u16>()).prop_map(|(h, p)| RoleSpec::Slave {
            master: Endpoint::new(HostId(h), p),
        }),
    ]
}

fn arb_body() -> impl Strategy<Value = GrpBody> {
    prop_oneof![
        (any::<u64>(), arb_inv()).prop_map(|(req, inv)| GrpBody::Invoke { req, inv }),
        (
            any::<u64>(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(req, ok, data)| GrpBody::InvokeResult { req, ok, data }),
        any::<u64>().prop_map(|req| GrpBody::GetState { req }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(req, version, state)| GrpBody::State {
                req,
                version,
                epoch: version ^ 0xA5,
                state
            }),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..128)).prop_map(|(version, state)| {
            GrpBody::Update {
                version,
                epoch: version ^ 0xA5,
                state,
            }
        }),
        (any::<u64>(), arb_inv()).prop_map(|(version, inv)| GrpBody::Apply { version, inv }),
        any::<u64>().prop_map(|version| GrpBody::Invalidate { version }),
        (any::<u32>(), any::<u16>(), any::<u64>()).prop_map(|(h, p, v)| GrpBody::Hello {
            grp: Endpoint::new(HostId(h), p),
            have_version: v,
            epoch: v ^ 0x3C,
        }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(from_version, span, payload)| GrpBody::Delta {
                from_version,
                to_version: from_version.saturating_add(span % 8),
                epoch: from_version | 1,
                payload
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req, have_version, epoch)| {
            GrpBody::Refresh {
                req,
                have_version,
                epoch,
            }
        }),
    ]
}

proptest! {
    /// Invocation frames are opaque but lossless.
    #[test]
    fn invocation_round_trip(inv in arb_inv()) {
        let mut w = WireWriter::new();
        inv.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(Invocation::decode(&mut r).unwrap(), inv);
        prop_assert!(r.expect_end().is_ok());
    }

    /// Every GRP frame round-trips; decoding garbage never panics.
    #[test]
    fn grp_round_trip_and_totality(
        oid: u128,
        body in arb_body(),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let msg = GrpMsg { oid, body };
        prop_assert_eq!(GrpMsg::decode(&msg.encode()).unwrap(), msg);
        let _ = GrpMsg::decode(&garbage);
    }

    /// Replica role descriptors round-trip (they are what object servers
    /// persist to stable storage).
    #[test]
    fn role_spec_round_trip(role in arb_role()) {
        let mut w = WireWriter::new();
        role.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        prop_assert_eq!(RoleSpec::decode(&mut r).unwrap(), role);
    }

    /// Object-server control commands and responses round-trip; decoding
    /// is total.
    #[test]
    fn gos_control_codec(
        req: u64, oid: u128, impl_id: u16, protocol: u16,
        role in arb_role(),
        msg in "[ -~]{0,64}",
        garbage in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let cmds = [
            GosCmd::CreateObject { req, impl_id, protocol, role: role.clone() },
            GosCmd::CreateReplica { req, oid, impl_id, protocol, role },
            GosCmd::DeleteReplica { req, oid },
        ];
        for c in cmds {
            prop_assert_eq!(GosCmd::decode(&c.encode()).unwrap(), c);
        }
        let resps = [GosResp::Ok { req, oid }, GosResp::Err { req, msg }];
        for r in resps {
            prop_assert_eq!(GosResp::decode(&r.encode()).unwrap(), r);
        }
        let _ = GosCmd::decode(&garbage);
        let _ = GosResp::decode(&garbage);
    }
}
