//! One-call assembly of a complete GDN deployment (paper Figure 3).
//!
//! [`GdnDeployment::install`] stands up, over a [`Topology`]:
//!
//! - the Globe Location Service (directory nodes per domain),
//! - the DNS-based Globe Name Service (root/TLD/zone servers, site
//!   resolvers, Naming Authority),
//! - the certification authority and per-host credentials,
//! - Globe Object Servers, and
//! - GDN-enabled HTTPDs colocated with them ("in our first versions
//!   they will be colocated with the Globe Object Servers", §4).
//!
//! Everything an example, test or experiment needs to publish and fetch
//! packages is reachable from the returned handle.

use std::sync::Arc;

use globe_crypto::gtls::Mode;
use globe_gls::{GlsConfig, GlsDeployment};
use globe_gns::{GnsConfig, GnsDeployment};
use globe_net::{ports, Endpoint, HostId, Topology, Transport};
use globe_rts::{DsoInterface, GlobeObjectServer, GlobeRuntime, ImplRepository, RuntimeConfig};
use globe_sim::SimDuration;

use crate::catalog::CatalogInterface;
use crate::httpd::GdnHttpd;
use crate::mirrors::MirrorListInterface;
use crate::modtool::{ModOp, ModeratorTool};
use crate::package::PackageInterface;
use crate::security::GdnSecurity;
use crate::stats::DownloadStatsInterface;

/// Deployment-wide options.
pub struct GdnOptions {
    /// Channel protection for all GDN traffic (experiment E5 sweeps
    /// this; the paper's v2 uses full TLS).
    pub tls_mode: Mode,
    /// Location-service configuration.
    pub gls: GlsConfig,
    /// Name-service configuration.
    pub gns: GnsConfig,
    /// TTL of client-side cache proxies (CACHE_TTL scenarios).
    pub cache_ttl: SimDuration,
    /// Seed for all key material.
    pub seed: u64,
    /// Hosts to run object servers (+ colocated HTTPDs) on; empty means
    /// "first host of every site".
    pub gos_hosts: Vec<HostId>,
    /// Globe name of a [`DownloadStatsDso`](crate::DownloadStatsDso)
    /// the HTTPDs report into: when set, every successful `/pkg` fetch
    /// records a download against it (ROADMAP's `record`-per-fetch
    /// telemetry hook). The object is bound lazily, so it may be
    /// published after the deployment is installed.
    pub stats_object: Option<String>,
}

/// The runtime configuration every host-credentialed HTTPD uses — the
/// deployment HTTPDs colocated with object servers and the standalone
/// access points ([`GdnDeployment::access_point`]) must stay
/// identical, so both build it here.
fn httpd_runtime_config(
    security: &GdnSecurity,
    cache_ttl: SimDuration,
    host: HostId,
) -> RuntimeConfig {
    RuntimeConfig {
        grp_port: ports::HTTP,
        tls_server: security.host_server(host),
        tls_client: security.host_client(host),
        accept_incoming: false,
        cache_ttl,
        writer_roles: RuntimeConfig::default_writer_roles(),
        // Mode::Null models the paper's unsecured first version: no
        // authentication means no role gates anywhere.
        open_writes: security.mode() == Mode::Null,
        persist: false,
    }
}

impl Default for GdnOptions {
    fn default() -> Self {
        GdnOptions {
            tls_mode: Mode::AuthEncrypt,
            gls: GlsConfig::default()
                .with_persistence()
                .with_address_ttl(SimDuration::from_secs(120)),
            gns: GnsConfig::default(),
            cache_ttl: SimDuration::from_secs(60),
            seed: 0x6d0e,
            gos_hosts: Vec::new(),
            stats_object: None,
        }
    }
}

/// Handle to an installed GDN.
pub struct GdnDeployment {
    /// Key material and channel configurations.
    pub security: GdnSecurity,
    /// The shared implementation repository (package class registered).
    pub repo: Arc<ImplRepository>,
    /// The location-service plan.
    pub gls: Arc<GlsDeployment>,
    /// The name-service plan.
    pub gns: GnsDeployment,
    /// Control endpoints of all object servers.
    pub gos_endpoints: Vec<Endpoint>,
    /// HTTP endpoints of all GDN-HTTPDs.
    pub httpd_endpoints: Vec<Endpoint>,
    /// Cache TTL configured for client-side proxies.
    pub cache_ttl: SimDuration,
}

impl GdnDeployment {
    /// Installs a complete GDN into `world` — the simulated
    /// [`World`](globe_net::World) or a real-socket
    /// [`TcpTransport`](globe_net::TcpTransport)
    /// process (which instantiates only its own hosts' share of the
    /// plan; the plans themselves are pure functions of topology and
    /// options, so every process derives the same one).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn install(world: &mut dyn Transport, mut options: GdnOptions) -> GdnDeployment {
        let topo = world.topology().clone();
        assert!(topo.num_hosts() > 0, "topology has no hosts");
        // One protection mode everywhere: the Naming Authority must
        // speak the same mode as the moderator tools dialing it.
        options.gns.tls_mode = options.tls_mode;
        // Mode::Null models the paper's unsecured June-2000 first
        // version ("we will not actually implement any security
        // measures until the second version"): no authentication means
        // no role gates anywhere.
        let open = options.tls_mode == Mode::Null;
        let security = GdnSecurity::new(options.tls_mode, options.seed);

        // Every DSO class ships as one dso_interface! declaration;
        // registering it here is all the deployment wiring a class
        // needs.
        let mut repo = ImplRepository::new();
        PackageInterface::register(&mut repo);
        CatalogInterface::register(&mut repo);
        DownloadStatsInterface::register(&mut repo);
        MirrorListInterface::register(&mut repo);
        let repo = Arc::new(repo);

        let gls = GlsDeployment::plan(&topo, &options.gls);
        gls.install(world);

        let gns = GnsDeployment::plan(&topo, &options.gns);
        gns.install(world, &security.ca, &options.gns, options.seed);

        let gos_hosts: Vec<HostId> = if options.gos_hosts.is_empty() {
            topo.sites()
                .filter_map(|s| topo.hosts_in_site(s).first().copied())
                .collect()
        } else {
            options.gos_hosts.clone()
        };

        let mut gos_endpoints = Vec::new();
        let mut httpd_endpoints = Vec::new();
        for &host in &gos_hosts {
            let cfg = RuntimeConfig {
                grp_port: ports::GOS_CTL,
                tls_server: security.host_server(host),
                tls_client: security.host_client(host),
                accept_incoming: true,
                cache_ttl: options.cache_ttl,
                writer_roles: RuntimeConfig::default_writer_roles(),
                open_writes: open,
                persist: true,
            };
            let gos =
                GlobeObjectServer::new(cfg, Arc::clone(&repo), Arc::clone(&gls), host, 0x0100);
            world.add_service(host, ports::GOS_CTL, gos);
            gos_endpoints.push(Endpoint::new(host, ports::GOS_CTL));

            // HTTPD colocated with the object server (paper §4).
            let http_cfg = httpd_runtime_config(&security, options.cache_ttl, host);
            let runtime =
                GlobeRuntime::new(http_cfg, Arc::clone(&repo), Arc::clone(&gls), host, 0x0200);
            let mut httpd = GdnHttpd::new(runtime, &gns, &topo, host, 0x0300);
            if let Some(stats_name) = &options.stats_object {
                // Deployment HTTPDs carry host credentials, which the
                // write gate accepts — so they may record downloads.
                httpd = httpd.with_stats_object(stats_name);
            }
            world.add_service(host, ports::HTTP, httpd);
            httpd_endpoints.push(Endpoint::new(host, ports::HTTP));
        }

        GdnDeployment {
            security,
            repo,
            gls,
            gns,
            gos_endpoints,
            httpd_endpoints,
            cache_ttl: options.cache_ttl,
        }
    }

    /// The HTTPD nearest to `host` (the paper's "manually selected"
    /// access point, chosen here by topology distance).
    pub fn httpd_for(&self, topo: &Topology, host: HostId) -> Endpoint {
        *self
            .httpd_endpoints
            .iter()
            .min_by_key(|ep| (topo.distance(host, ep.host), ep.host.0))
            .expect("deployment has at least one HTTPD")
    }

    /// The object-server endpoint nearest to `host`.
    pub fn gos_for(&self, topo: &Topology, host: HostId) -> Endpoint {
        *self
            .gos_endpoints
            .iter()
            .min_by_key(|ep| (topo.distance(host, ep.host), ep.host.0))
            .expect("deployment has at least one object server")
    }

    /// Builds a moderator tool service for `moderator` on `host` with
    /// the given operation script; install it with
    /// [`Transport::add_service_boxed`] (or the generic `add_service`
    /// convenience on `dyn Transport`) on any free port.
    pub fn moderator_tool(
        &self,
        topo: &Topology,
        host: HostId,
        moderator: &str,
        ops: Vec<ModOp>,
    ) -> ModeratorTool {
        let _ = topo;
        ModeratorTool::new(
            self.moderator_runtime(host, moderator),
            self.gns.naming_authority,
            self.security.moderator_client(moderator),
            ops,
        )
    }

    /// Builds a moderator-credentialed client runtime on `host` —
    /// write-capable drivers (tests, benches) wrap it in a
    /// [`GlobeClient`](globe_rts::GlobeClient) or hand it to a
    /// [`ModeratorTool`].
    pub fn moderator_runtime(&self, host: HostId, moderator: &str) -> GlobeRuntime {
        let cfg = RuntimeConfig {
            grp_port: ports::DRIVER,
            tls_server: self.security.anonymous_client(),
            tls_client: self.security.moderator_client(moderator),
            accept_incoming: false,
            cache_ttl: self.cache_ttl,
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: false,
        };
        GlobeRuntime::new(
            cfg,
            Arc::clone(&self.repo),
            Arc::clone(&self.gls),
            host,
            0x0400,
        )
    }

    /// Builds an anonymous client runtime on `host` (GDN proxies, test
    /// drivers), with timer namespace `ns`.
    pub fn anonymous_runtime(&self, host: HostId, ns: u16) -> GlobeRuntime {
        let cfg = RuntimeConfig {
            grp_port: ports::DRIVER,
            tls_server: self.security.anonymous_client(),
            tls_client: self.security.anonymous_client(),
            accept_incoming: false,
            cache_ttl: self.cache_ttl,
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: false,
        };
        GlobeRuntime::new(cfg, Arc::clone(&self.repo), Arc::clone(&self.gls), host, ns)
    }

    /// Builds a GDN-enabled proxy server (a user-machine HTTPD with
    /// anonymous credentials, paper §4) for `host`.
    pub fn proxy(&self, topo: &Topology, host: HostId) -> GdnHttpd {
        let runtime = self.anonymous_runtime(host, 0x0200);
        GdnHttpd::new(runtime, &self.gns, topo, host, 0x0300)
    }

    /// Builds a host-credentialed HTTPD for `host` — the same
    /// configuration [`GdnDeployment::install`] colocates with each
    /// object server, but standing alone. Churn experiments use these
    /// as access points on hosts that are never killed, so the HTTPDs
    /// keep serving (failing over within their client sessions'
    /// `RetryPolicy`) while replica hosts crash and recover around
    /// them. Host credentials pass the write gate, so
    /// [`GdnHttpd::with_stats_object`] works on the result.
    pub fn access_point(&self, topo: &Topology, host: HostId) -> GdnHttpd {
        let cfg = httpd_runtime_config(&self.security, self.cache_ttl, host);
        let runtime = GlobeRuntime::new(
            cfg,
            Arc::clone(&self.repo),
            Arc::clone(&self.gls),
            host,
            0x0200,
        );
        GdnHttpd::new(runtime, &self.gns, topo, host, 0x0300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::{NetParams, World};

    #[test]
    fn install_places_components_everywhere() {
        let topo = Topology::grid(2, 2, 2, 2);
        let mut world = World::new(topo, NetParams::default(), 1);
        let gdn = GdnDeployment::install(&mut world, GdnOptions::default());
        assert_eq!(gdn.gos_endpoints.len(), 8); // one per site
        assert_eq!(gdn.httpd_endpoints.len(), 8);
        // Nearest-HTTPD selection stays in the caller's site.
        let topo = world.topology();
        for h in topo.hosts() {
            let ep = gdn.httpd_for(topo, h);
            assert_eq!(topo.site_of(ep.host), topo.site_of(h));
        }
    }

    #[test]
    fn explicit_gos_hosts_respected() {
        let topo = Topology::grid(1, 1, 2, 2);
        let mut world = World::new(topo, NetParams::default(), 1);
        let gdn = GdnDeployment::install(
            &mut world,
            GdnOptions {
                gos_hosts: vec![HostId(1)],
                ..GdnOptions::default()
            },
        );
        assert_eq!(
            gdn.gos_endpoints,
            vec![Endpoint::new(HostId(1), ports::GOS_CTL)]
        );
    }
}
