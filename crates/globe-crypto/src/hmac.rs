//! HMAC-SHA256 (RFC 2104) and a small HKDF-style key-derivation helper
//! (RFC 5869), built on [`crate::sha256`].
//!
//! Used for gTLS record integrity, handshake "finished" values, DNS TSIG
//! signatures and key derivation from the handshake secret.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use globe_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// let hex: String = tag.iter().map(|b| format!("{b:02x}")).collect();
/// assert_eq!(
///     hex,
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time tag comparison.
///
/// Prevents the (simulated) timing side channel a naive `==` would have;
/// also simply the correct idiom for MAC verification.
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HKDF-SHA256: extract from `secret` and `salt`, then expand `info` into
/// `out_len` bytes (RFC 5869).
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` (the RFC limit; far above anything the
/// handshake derives).
pub fn hkdf(secret: &[u8], salt: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * DIGEST_LEN, "hkdf output too long");
    let prk = hmac_sha256(salt, secret);
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut data = t.clone();
        data.extend_from_slice(info);
        data.push(counter);
        let block = hmac_sha256(&prk, &data);
        t = block.to_vec();
        out.extend_from_slice(&block);
        counter += 1;
    }
    out.truncate(out_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_accepts_equal_rejects_unequal() {
        let t = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t;
        bad[0] ^= 1;
        assert!(!verify_tag(&t, &bad));
        assert!(!verify_tag(&t, &t[..31]));
    }

    #[test]
    fn hkdf_deterministic_and_length_exact() {
        let a = hkdf(b"secret", b"salt", b"info", 96);
        let b = hkdf(b"secret", b"salt", b"info", 96);
        assert_eq!(a, b);
        assert_eq!(a.len(), 96);
        // Prefix property: shorter output is a prefix of longer output.
        let c = hkdf(b"secret", b"salt", b"info", 32);
        assert_eq!(&a[..32], &c[..]);
    }

    #[test]
    fn hkdf_separates_contexts() {
        assert_ne!(
            hkdf(b"secret", b"salt", b"c2s", 32),
            hkdf(b"secret", b"salt", b"s2c", 32)
        );
        assert_ne!(
            hkdf(b"secret", b"salt1", b"x", 32),
            hkdf(b"secret", b"salt2", b"x", 32)
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf(&ikm, &salt, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }
}
