//! `gdn-fuzz`: the schedule fuzzer as a standalone binary, for local
//! runs outside the bench harness (`cargo run --release --bin
//! gdn-fuzz`). Same knobs as the bench entry point: `GLOBE_FUZZ_SEEDS`
//! picks the seed count, `GLOBE_FUZZ_SEED` replays one failing seed.

fn main() {
    globe_bench::fuzz_main();
}
