//! Resource records and zones.
//!
//! A small but honest subset of DNS (RFC 1034/1035): A, NS, TXT and SOA
//! records, zones with delegations, TTLs and serial numbers. "Addresses"
//! in A records are simulation host ids rather than IPv4 addresses.

use std::collections::BTreeMap;
use std::fmt;

use globe_net::{HostId, WireError, WireReader, WireWriter};

use crate::name::DnsName;

/// Record types supported by the substrate.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RecordType {
    /// Host address (a simulation [`HostId`]).
    A,
    /// Delegation to an authoritative server for a child zone.
    Ns,
    /// Free-form text; the GNS stores encoded object identifiers here
    /// (paper §5).
    Txt,
    /// Start of authority: zone metadata (serial, default TTL).
    Soa,
}

impl RecordType {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Txt => 16,
            RecordType::Soa => 6,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(t: u8) -> Result<RecordType, WireError> {
        Ok(match t {
            1 => RecordType::A,
            2 => RecordType::Ns,
            16 => RecordType::Txt,
            6 => RecordType::Soa,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Soa => write!(f, "SOA"),
        }
    }
}

/// Record payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RData {
    /// Host address.
    A(HostId),
    /// Name of an authoritative server for the owner's zone.
    Ns(DnsName),
    /// Text payload.
    Txt(String),
    /// Zone authority: serial number and negative-caching TTL.
    Soa {
        /// Monotonic zone version, bumped on every update.
        serial: u32,
        /// TTL for negative answers derived from this zone.
        negative_ttl: u32,
    },
}

impl RData {
    /// The record type this payload belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa { .. } => RecordType::Soa,
        }
    }
}

/// One resource record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DnsName,
    /// Time to live, seconds (drives resolver caching, experiment E6).
    pub ttl: u32,
    /// Payload (the type is implied by the payload variant).
    pub data: RData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: DnsName, ttl: u32, data: RData) -> ResourceRecord {
        ResourceRecord { name, ttl, data }
    }

    /// Serializes into `w`.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.name.to_string());
        w.put_u32(self.ttl);
        w.put_u8(self.data.rtype().tag());
        match &self.data {
            RData::A(h) => w.put_u32(h.0),
            RData::Ns(n) => w.put_str(&n.to_string()),
            RData::Txt(t) => w.put_str(t),
            RData::Soa {
                serial,
                negative_ttl,
            } => {
                w.put_u32(*serial);
                w.put_u32(*negative_ttl);
            }
        }
    }

    /// Deserializes from `r`.
    pub fn decode(r: &mut WireReader<'_>) -> Result<ResourceRecord, WireError> {
        let name = DnsName::parse(r.str()?).map_err(|_| WireError::BadTag(0))?;
        let ttl = r.u32()?;
        let rtype = RecordType::from_tag(r.u8()?)?;
        let data = match rtype {
            RecordType::A => RData::A(HostId(r.u32()?)),
            RecordType::Ns => {
                RData::Ns(DnsName::parse(r.str()?).map_err(|_| WireError::BadTag(0))?)
            }
            RecordType::Txt => RData::Txt(r.str()?.to_owned()),
            RecordType::Soa => RData::Soa {
                serial: r.u32()?,
                negative_ttl: r.u32()?,
            },
        };
        Ok(ResourceRecord { name, ttl, data })
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} ", self.name, self.ttl, self.data.rtype())?;
        match &self.data {
            RData::A(h) => write!(f, "h{}", h.0),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Txt(t) => write!(f, "{t:?}"),
            RData::Soa {
                serial,
                negative_ttl,
            } => write!(f, "serial={serial} nttl={negative_ttl}"),
        }
    }
}

/// The result of looking a name up inside one zone.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ZoneAnswer {
    /// Records of the requested type exist.
    Records(Vec<ResourceRecord>),
    /// The name is below a delegation: here are the NS records of the
    /// child zone plus glue A records for the named servers.
    Referral {
        /// NS records at the delegation point.
        ns: Vec<ResourceRecord>,
        /// A records for the servers named by `ns`.
        glue: Vec<ResourceRecord>,
    },
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in this zone.
    NxDomain,
    /// The zone is not authoritative for this name at all.
    NotAuthoritative,
}

/// An authoritative zone: records under one origin, with delegations.
///
/// # Examples
///
/// ```
/// use globe_gns::name::DnsName;
/// use globe_gns::records::{RData, ResourceRecord, Zone, ZoneAnswer, RecordType};
///
/// let origin = DnsName::parse("gdn.glb").unwrap();
/// let mut zone = Zone::new(origin.clone(), 300);
/// let name = DnsName::parse("gimp.apps.gdn.glb").unwrap();
/// zone.add(ResourceRecord::new(name.clone(), 300, RData::Txt("oid=00ff".into())));
/// match zone.lookup(&name, RecordType::Txt) {
///     ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 1),
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Zone {
    origin: DnsName,
    serial: u32,
    negative_ttl: u32,
    /// `(owner, rtype)` → records. Ordered for determinism.
    records: BTreeMap<(String, RecordType), Vec<ResourceRecord>>,
    /// Child zones delegated away from this zone.
    delegations: BTreeMap<String, DnsName>,
}

impl Zone {
    /// Creates an empty zone with the given negative-caching TTL.
    pub fn new(origin: DnsName, negative_ttl: u32) -> Zone {
        Zone {
            origin,
            serial: 1,
            negative_ttl,
            records: BTreeMap::new(),
            delegations: BTreeMap::new(),
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &DnsName {
        &self.origin
    }

    /// Current serial (bumped by every mutation).
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// Number of records in the zone (excluding the synthetic SOA).
    pub fn num_records(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// The zone's SOA record.
    pub fn soa(&self) -> ResourceRecord {
        ResourceRecord::new(
            self.origin.clone(),
            self.negative_ttl,
            RData::Soa {
                serial: self.serial,
                negative_ttl: self.negative_ttl,
            },
        )
    }

    fn key(name: &DnsName, rtype: RecordType) -> (String, RecordType) {
        (name.to_string(), rtype)
    }

    /// Adds a record (idempotent: identical records are not duplicated).
    ///
    /// NS records for names *below* the origin register a delegation.
    ///
    /// # Panics
    ///
    /// Panics if the record's owner is outside the zone.
    pub fn add(&mut self, rr: ResourceRecord) {
        assert!(
            rr.name.is_subdomain_of(&self.origin),
            "record {} outside zone {}",
            rr.name,
            self.origin
        );
        if let RData::Ns(_) = rr.data {
            if rr.name != self.origin {
                self.delegations
                    .insert(rr.name.to_string(), rr.name.clone());
            }
        }
        let entry = self
            .records
            .entry(Self::key(&rr.name, rr.data.rtype()))
            .or_default();
        if !entry.contains(&rr) {
            entry.push(rr);
            self.serial = self.serial.wrapping_add(1);
        }
    }

    /// Removes all records of `rtype` at `name`. Returns how many were
    /// removed.
    pub fn remove(&mut self, name: &DnsName, rtype: RecordType) -> usize {
        let removed = self
            .records
            .remove(&Self::key(name, rtype))
            .map(|v| v.len())
            .unwrap_or(0);
        if removed > 0 {
            if rtype == RecordType::Ns {
                self.delegations.remove(&name.to_string());
            }
            self.serial = self.serial.wrapping_add(1);
        }
        removed
    }

    /// Answers a query against this zone's data.
    pub fn lookup(&self, name: &DnsName, rtype: RecordType) -> ZoneAnswer {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneAnswer::NotAuthoritative;
        }
        // Delegation check: walk the cut points between the origin and
        // the queried name. A query *at* the delegation point for NS is
        // answered authoritatively below via the records map.
        let mut cut = name.clone();
        let mut cuts = Vec::new();
        while cut != self.origin {
            cuts.push(cut.clone());
            match cut.parent() {
                Some(p) => cut = p,
                None => break,
            }
        }
        for point in cuts.iter().rev() {
            if let Some(deleg) = self.delegations.get(&point.to_string()) {
                if !(name == deleg && rtype == RecordType::Ns) {
                    let ns = self
                        .records
                        .get(&Self::key(deleg, RecordType::Ns))
                        .cloned()
                        .unwrap_or_default();
                    let mut glue = Vec::new();
                    for rr in &ns {
                        if let RData::Ns(server) = &rr.data {
                            if let Some(a) = self.records.get(&Self::key(server, RecordType::A)) {
                                glue.extend(a.iter().cloned());
                            }
                        }
                    }
                    return ZoneAnswer::Referral { ns, glue };
                }
            }
        }
        if rtype == RecordType::Soa && name == &self.origin {
            return ZoneAnswer::Records(vec![self.soa()]);
        }
        if let Some(rrs) = self.records.get(&Self::key(name, rtype)) {
            return ZoneAnswer::Records(rrs.clone());
        }
        // Does the name exist under any type?
        let exists = RecordType::iter_all().any(|t| self.records.contains_key(&Self::key(name, t)));
        if exists {
            ZoneAnswer::NoData
        } else {
            ZoneAnswer::NxDomain
        }
    }

    /// Negative-caching TTL for this zone.
    pub fn negative_ttl(&self) -> u32 {
        self.negative_ttl
    }
}

impl RecordType {
    /// Iterates all supported record types.
    pub fn iter_all() -> impl Iterator<Item = RecordType> {
        [
            RecordType::A,
            RecordType::Ns,
            RecordType::Txt,
            RecordType::Soa,
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn record_round_trip() {
        let rrs = vec![
            ResourceRecord::new(name("a.glb"), 60, RData::A(HostId(7))),
            ResourceRecord::new(name("glb"), 120, RData::Ns(name("ns1.glb"))),
            ResourceRecord::new(name("x.gdn.glb"), 30, RData::Txt("oid=ff".into())),
            ResourceRecord::new(
                name("gdn.glb"),
                300,
                RData::Soa {
                    serial: 9,
                    negative_ttl: 60,
                },
            ),
        ];
        for rr in rrs {
            let mut w = WireWriter::new();
            rr.encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert_eq!(ResourceRecord::decode(&mut r).unwrap(), rr);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn zone_answers_records_nodata_nxdomain() {
        let mut z = Zone::new(name("gdn.glb"), 60);
        z.add(ResourceRecord::new(
            name("gimp.apps.gdn.glb"),
            300,
            RData::Txt("oid=1".into()),
        ));
        match z.lookup(&name("gimp.apps.gdn.glb"), RecordType::Txt) {
            ZoneAnswer::Records(r) => assert_eq!(r.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            z.lookup(&name("gimp.apps.gdn.glb"), RecordType::A),
            ZoneAnswer::NoData
        );
        assert_eq!(
            z.lookup(&name("nope.gdn.glb"), RecordType::Txt),
            ZoneAnswer::NxDomain
        );
        assert_eq!(
            z.lookup(&name("other.glb"), RecordType::Txt),
            ZoneAnswer::NotAuthoritative
        );
    }

    #[test]
    fn zone_delegation_returns_referral_with_glue() {
        let mut z = Zone::new(name("glb"), 60);
        z.add(ResourceRecord::new(
            name("gdn.glb"),
            300,
            RData::Ns(name("ns1.gdn.glb")),
        ));
        z.add(ResourceRecord::new(
            name("ns1.gdn.glb"),
            300,
            RData::A(HostId(4)),
        ));
        match z.lookup(&name("gimp.apps.gdn.glb"), RecordType::Txt) {
            ZoneAnswer::Referral { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].data, RData::A(HostId(4)));
            }
            other => panic!("{other:?}"),
        }
        // Asking for the NS records *of* the delegated zone at the cut
        // is answered, not referred (the parent is authoritative for the
        // cut itself).
        match z.lookup(&name("gdn.glb"), RecordType::Ns) {
            ZoneAnswer::Records(r) => assert_eq!(r.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zone_serial_bumps_on_mutation() {
        let mut z = Zone::new(name("gdn.glb"), 60);
        let s0 = z.serial();
        let rr = ResourceRecord::new(name("x.gdn.glb"), 30, RData::Txt("t".into()));
        z.add(rr.clone());
        let s1 = z.serial();
        assert!(s1 > s0);
        // Idempotent add does not bump.
        z.add(rr);
        assert_eq!(z.serial(), s1);
        assert_eq!(z.remove(&name("x.gdn.glb"), RecordType::Txt), 1);
        assert!(z.serial() > s1);
        assert_eq!(z.remove(&name("x.gdn.glb"), RecordType::Txt), 0);
    }

    #[test]
    fn soa_lookup_and_counts() {
        let z = Zone::new(name("gdn.glb"), 77);
        match z.lookup(&name("gdn.glb"), RecordType::Soa) {
            ZoneAnswer::Records(r) => match &r[0].data {
                RData::Soa { negative_ttl, .. } => assert_eq!(*negative_ttl, 77),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(z.num_records(), 0);
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn add_outside_zone_panics() {
        let mut z = Zone::new(name("gdn.glb"), 60);
        z.add(ResourceRecord::new(
            name("evil.com"),
            1,
            RData::Txt("x".into()),
        ));
    }

    #[test]
    fn record_display() {
        let rr = ResourceRecord::new(name("a.glb"), 60, RData::A(HostId(7)));
        assert_eq!(rr.to_string(), "a.glb. 60 A h7");
    }
}
