//! An offline, dependency-free subset of the `proptest` API.
//!
//! The build environment for this repository has no access to crates.io,
//! so this workspace-local crate provides the slice of proptest that the
//! test suites actually use: the [`proptest!`] macro, strategies for
//! integers/ranges/collections/regex-like string patterns, `prop_map`,
//! `prop_oneof!`, and the `prop_assert*` assertion macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are **not shrunk** — the failing seed and case index are reported
//! instead, and generation is fully deterministic per test name, so a
//! failure always reproduces. Case count defaults to 64 and can be
//! raised with `PROPTEST_CASES`.

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 generator used for all value generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range {lo}..{hi}");
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// A failed property: carries the rendered assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a rendered message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `f` for the configured number of cases with per-case RNGs
    /// derived deterministically from the test name.
    pub fn run_cases(name: &str, mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let cases: u64 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let base = fnv(name);
        for case in 0..cases {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
            if let Err(e) = f(&mut rng) {
                panic!("proptest {name}: case {case}/{cases} failed:\n{e}");
            }
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A value generator (upstream proptest's `Strategy`, minus
    /// shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// One alternative of a [`OneOf`] strategy.
    pub type Choice<V> = Rc<dyn Fn(&mut TestRng) -> V>;

    /// Wraps a strategy as a [`Choice`]. Used by `prop_oneof!`; a named
    /// function ties the closure's return type to `S::Value`, where a
    /// bare `as Rc<dyn Fn(..) -> _>` cast could hit integer fallback.
    pub fn choice<S: Strategy + 'static>(s: S) -> Choice<S::Value> {
        Rc::new(move |rng| s.generate(rng))
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<V> {
        choices: Vec<Choice<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from the alternatives' generator closures.
        pub fn new(choices: Vec<Choice<V>>) -> OneOf<V> {
            assert!(!choices.is_empty(), "prop_oneof! needs alternatives");
            OneOf { choices }
        }
    }

    impl<V> Clone for OneOf<V> {
        fn clone(&self) -> Self {
            OneOf {
                choices: self.choices.clone(),
            }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_in(0, self.choices.len());
            (self.choices[i])(rng)
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(pub(crate) PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::gen(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    /// Regex-subset string strategy: a pattern is a sequence of literal
    /// characters and `[...]` classes, each optionally followed by an
    /// `{m,n}` or `{n}` repetition. This covers every pattern the test
    /// suites use (e.g. `"[a-z][a-z0-9._-]{0,20}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_pattern(self, rng)
        }
    }

    fn gen_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let set = parse_class(&chars[i + 1..close]);
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = parse_repeat(&chars, &mut i);
            let n = if lo == hi {
                lo
            } else {
                rng.usize_in(lo, hi + 1)
            };
            for _ in 0..n {
                out.push(candidates[rng.usize_in(0, candidates.len())]);
            }
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated repetition")
            + *i;
        let body: String = chars[*i + 1..close].iter().collect();
        *i = close + 1;
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("repetition bound"),
                hi.trim().parse().expect("repetition bound"),
            ),
            None => {
                let n = body.trim().parse().expect("repetition count");
                (n, n)
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" generator.
    pub trait ArbitraryValue: Sized {
        /// Draws an arbitrary value.
        fn gen(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn gen(rng: &mut TestRng) -> $t {
                    // Two draws so u128 gets full entropy.
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, u128, usize);

    impl ArbitraryValue for bool {
        fn gen(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for crate::sample::Index {
        fn gen(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// The strategy producing any value of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use std::collections::BTreeMap;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count specification: an exact size or a half-open
    /// range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    /// `Vec` strategy; see [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeMap` strategy; see [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut map = BTreeMap::new();
            // Key collisions retry a bounded number of times, so small
            // key spaces terminate with a smaller-than-target map.
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 16 {
                attempts += 1;
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Generates maps with `size`-many entries of generated keys and
    /// values.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed 32-element array strategy; see [`uniform32`].
    #[derive(Clone)]
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Generates `[T; 32]` arrays of `element` values.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a not-yet-known-length collection.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Uniform choice of one element of `options`.
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.usize_in(0, self.0.len())].clone()
        }
    }

    /// Picks uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select(options)
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn` runs its body across many
/// generated cases. Parameters are either `pattern in strategy` or
/// `name: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Internal: binds one `proptest!` parameter list entry per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&$s, $rng);
    };
    ($rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&$s, $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; mut $i:ident : $t:ty) => {
        let mut $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), $rng);
    };
    ($rng:ident; mut $i:ident : $t:ty, $($rest:tt)*) => {
        let mut $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $i:ident : $t:ty) => {
        let $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), $rng);
    };
    ($rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    __l == __r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                    __r
                );
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    __l != __r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l
                );
            }
        }
    };
}

/// Skips the current case when an assumption does not hold. This subset
/// simply succeeds the case (no rejection accounting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::choice($s)),+
        ])
    };
}

// Tuple strategies (up to 8 components).
macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: crate::strategy::Strategy),+> crate::strategy::Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn patterns_match_shape(s in "[a-z][a-z0-9._-]{0,20}", t in "[ -~]{0,64}") {
            prop_assert!(!s.is_empty() && s.len() <= 21);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 64);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn ranges_and_collections(
            n in 3u64..17,
            v in prop::collection::vec(any::<u8>(), 2..5),
            m in prop::collection::btree_map("[a-z]{1,8}", any::<u32>(), 1..4),
            exact in prop::collection::vec(any::<u8>(), 12),
            arr in prop::array::uniform32(any::<u8>()),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            idx in any::<prop::sample::Index>(),
            flag: bool,
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&m.len()));
            prop_assert_eq!(exact.len(), 12);
            prop_assert_eq!(arr.len(), 32);
            prop_assert!([1u8, 2, 3].contains(&pick));
            prop_assert!(idx.index(7) < 7);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
