//! An offline, dependency-free subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this local crate
//! supplies the slice of criterion the micro-benchmarks use: `Criterion`
//! with `bench_function` / `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are intentionally simple — each
//! benchmark is timed over a fixed wall-clock budget and the mean
//! ns/iter (plus derived throughput) is printed.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// How `iter_batched` amortizes setup allocations (accepted for source
/// compatibility; this subset always runs setup per batch of one).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Wall-clock budget per benchmark.
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            std_black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= BUDGET {
                self.elapsed = elapsed;
                return;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut measured = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            measured += start.elapsed();
            self.iters += 1;
            if measured >= BUDGET {
                self.elapsed = measured;
                return;
            }
        }
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let iters = b.iters.max(1);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!("{name:<40} {ns:>12.1} ns/iter ({iters} iters)");
    if let Some(tp) = throughput {
        match tp {
            Throughput::Bytes(bytes) => {
                let mbs = bytes as f64 / ns * 1e9 / (1 << 20) as f64;
                line.push_str(&format!("  {mbs:>10.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / ns * 1e9;
                line.push_str(&format!("  {eps:>10.0} elem/s"));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher::new();
        f(&mut b);
        report(&full, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
