//! The embeddable DNS stub client.
//!
//! A [`DnsStub`] lives inside another service (HTTPDs, the Globe
//! runtime, moderator tools) and sends recursive queries to the host's
//! site-local caching resolver, retrying on datagram loss. The owning
//! service routes datagrams and timers to it and drains completion
//! events — the same embedding pattern as `globe_gls::GlsClient`.

use std::collections::BTreeMap;

use globe_net::{ns_token, owns_token, token_id, Endpoint, ServiceCtx, TimerId};
use globe_sim::{SimDuration, SimTime};

use crate::name::DnsName;
use crate::proto::{DnsMsg, Rcode};
use crate::records::{RecordType, ResourceRecord};

/// Errors surfaced by the stub.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// The name does not exist (or has no data of the queried type).
    NxDomain,
    /// The resolver gave up (upstream failures).
    ServFail,
    /// No response after all retries.
    Timeout,
    /// The resolver refused the query.
    Refused,
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::NxDomain => write!(f, "name does not exist"),
            DnsError::ServFail => write!(f, "resolution failed"),
            DnsError::Timeout => write!(f, "resolver did not respond"),
            DnsError::Refused => write!(f, "query refused"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Completion events from [`DnsStub::take_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsEvent {
    /// A query finished.
    Answer {
        /// Caller-chosen correlation token.
        token: u64,
        /// The records, or why there are none.
        result: Result<Vec<ResourceRecord>, DnsError>,
        /// End-to-end latency of the query.
        latency: SimDuration,
    },
}

#[derive(Debug)]
struct Pending {
    user_token: u64,
    payload: Vec<u8>,
    attempts: u32,
    started: SimTime,
    timer: TimerId,
}

/// Client-side stub resolver talking to one caching resolver.
pub struct DnsStub {
    resolver: Endpoint,
    ns: u16,
    timeout: SimDuration,
    max_attempts: u32,
    next_qid: u64,
    pending: BTreeMap<u64, Pending>,
    events: Vec<DnsEvent>,
}

impl DnsStub {
    /// Creates a stub pointed at `resolver`, using timer namespace `ns`.
    pub fn new(resolver: Endpoint, ns: u16) -> DnsStub {
        DnsStub {
            resolver,
            ns,
            timeout: SimDuration::from_millis(4_000),
            max_attempts: 3,
            next_qid: 1,
            pending: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Overrides the per-attempt timeout (default 4 s — a recursive
    /// query may fan out several upstream round trips).
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The resolver this stub queries.
    pub fn resolver(&self) -> Endpoint {
        self.resolver
    }

    /// Number of in-flight queries.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Starts a recursive query; completion arrives as
    /// [`DnsEvent::Answer`] with `token`.
    pub fn query(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        name: DnsName,
        rtype: RecordType,
        token: u64,
    ) {
        let qid = self.next_qid;
        self.next_qid += 1;
        let payload = DnsMsg::Query {
            qid,
            name,
            rtype,
            recursion_desired: true,
        }
        .encode();
        ctx.send_datagram(self.resolver, payload.clone());
        let timer = ctx.set_timer(self.timeout, ns_token(self.ns, qid));
        self.pending.insert(
            qid,
            Pending {
                user_token: token,
                payload,
                attempts: 1,
                started: ctx.now(),
                timer,
            },
        );
    }

    /// Routes an inbound datagram; `true` if it was a DNS response for
    /// this stub.
    pub fn handle_datagram(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        _from: Endpoint,
        payload: &[u8],
    ) -> bool {
        let Ok(DnsMsg::Response {
            qid,
            rcode,
            answers,
            ..
        }) = DnsMsg::decode(payload)
        else {
            return false;
        };
        let Some(p) = self.pending.remove(&qid) else {
            return true; // late duplicate
        };
        ctx.cancel_timer(p.timer);
        let latency = ctx.now().saturating_sub(p.started);
        ctx.metrics()
            .record("dns.stub.latency_us", latency.as_micros());
        let result = match rcode {
            Rcode::Ok if !answers.is_empty() => Ok(answers),
            Rcode::Ok | Rcode::NxDomain => Err(DnsError::NxDomain),
            Rcode::Refused => Err(DnsError::Refused),
            Rcode::ServFail | Rcode::NotAuth => Err(DnsError::ServFail),
        };
        self.events.push(DnsEvent::Answer {
            token: p.user_token,
            result,
            latency,
        });
        true
    }

    /// Routes a timer; `true` if the token belonged to this stub.
    pub fn handle_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) -> bool {
        if !owns_token(self.ns, token) {
            return false;
        }
        let qid = token_id(token);
        let Some(p) = self.pending.get_mut(&qid) else {
            return true;
        };
        if p.attempts >= self.max_attempts {
            let p = self.pending.remove(&qid).expect("checked above");
            ctx.metrics().inc("dns.stub.timeouts", 1);
            self.events.push(DnsEvent::Answer {
                token: p.user_token,
                result: Err(DnsError::Timeout),
                latency: ctx.now().saturating_sub(p.started),
            });
        } else {
            p.attempts += 1;
            let payload = p.payload.clone();
            let resolver = self.resolver;
            ctx.send_datagram(resolver, payload);
            p.timer = ctx.set_timer(self.timeout, ns_token(self.ns, qid));
            ctx.metrics().inc("dns.stub.retries", 1);
        }
        true
    }

    /// Drains completion events.
    pub fn take_events(&mut self) -> Vec<DnsEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_net::HostId;

    #[test]
    fn error_display() {
        assert!(DnsError::NxDomain.to_string().contains("not exist"));
        assert!(DnsError::Timeout.to_string().contains("respond"));
    }

    #[test]
    fn stub_accessors() {
        let ep = Endpoint::new(HostId(1), 5353);
        let stub = DnsStub::new(ep, 3);
        assert_eq!(stub.resolver(), ep);
        assert_eq!(stub.in_flight(), 0);
    }
}
