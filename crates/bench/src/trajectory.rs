//! Bench-trajectory comparison: gate the scenario sweep against its
//! committed baseline.
//!
//! `BENCH_scenario_sweep.json` is committed at the repository root, so
//! every revision carries the sweep matrix it was measured at. This
//! module diffs a fresh sweep against that baseline and reports any
//! cell whose fan-out cost (`grp_bytes_encoded`) or tail latency
//! (`p99_ms`) regressed by more than [`TRAJECTORY_TOLERANCE`] — the
//! "plotting the JSON trajectory" ROADMAP follow-on in gating form. The
//! `scenario_sweep` bench (and with it CI's `bench-smoke` job) fails on
//! violations; set `GLOBE_SWEEP_BASELINE=skip` when a change
//! intentionally moves the numbers, then commit the regenerated JSON as
//! the new baseline.
//!
//! Churn and adaptive cells (key suffixes `/rolling`, `/failover`,
//! `/adaptive`) are gated against the wider
//! [`CHURN_TOLERANCE`]/slack band: their tails include retry backoffs
//! and re-replication bursts, so the steady-state ±10% band would turn
//! intentional fault-schedule tweaks into gate noise.
//!
//! The parser handles exactly the flat single-line-per-cell format
//! [`crate::sweep::sweep_json`] emits — no general JSON machinery, no
//! dependencies. Rows written before the churn axis existed (no
//! `churn`/`adaptive` fields) parse as steady-state cells, so old
//! baselines stay comparable.
//!
//! [`summary_markdown`] renders the whole verdict — matrix,
//! availability columns, invariant findings, and the per-cell
//! trajectory diff — as one markdown document; the bench appends it to
//! `$GITHUB_STEP_SUMMARY` (or the `GLOBE_SWEEP_SUMMARY` path) so CI
//! regressions are readable without downloading the artifact.

use crate::sweep::{
    avail_table_rows, sweep_table_rows, CellReport, AVAIL_TABLE_HEADERS, SWEEP_TABLE_HEADERS,
};

/// Maximum tolerated relative growth per gated metric for steady-state
/// cells (0.10 = +10%).
pub const TRAJECTORY_TOLERANCE: f64 = 0.10;

/// The wider band churn/adaptive cells are gated against.
pub const CHURN_TOLERANCE: f64 = 0.35;

/// Absolute slack on `grp_bytes_encoded` (bytes): tiny baselines must
/// not turn byte-level jitter into a gate failure.
const BYTES_SLACK: f64 = 1024.0;

/// Absolute slack on `p99_ms` (milliseconds).
const P99_SLACK: f64 = 0.5;

/// Absolute slacks for churn cells: restored replicas refetch whole
/// states and retried reads pay backoff, so both metrics jump in
/// coarser steps.
const CHURN_BYTES_SLACK: f64 = 8192.0;
const CHURN_P99_SLACK: f64 = 50.0;

/// Absolute slack on the churn availability/recovery windows
/// (milliseconds): one extra retry step (the 5s session backoff) must
/// not read as a regression, but losing a whole hedge-driven failover
/// (≈ forward timeout + backoff) must.
const CHURN_AVAIL_SLACK_MS: f64 = 5_000.0;

/// One sweep cell's gated metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryCell {
    /// `class/policy/mode[/churn][/adaptive]`, the cell's identity
    /// across revisions.
    pub key: String,
    /// Whether the cell ran with churn or the adaptive controller
    /// (gated against the wider band).
    pub churny: bool,
    /// GRP bytes the cell's propagation encoded.
    pub grp_bytes_encoded: u64,
    /// 99th-percentile read latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of announced chunks the slaves already held during the
    /// chunked upgrade phase (`None` on baselines written before the
    /// chunk subsystem existed).
    pub chunk_dedup_ratio: Option<f64>,
    /// GRP bytes the chunked v1→v2 upgrade cost (`None` on
    /// pre-chunking baselines).
    pub upgrade_grp_bytes: Option<u64>,
    /// Largest gap between successful reads during the read phase,
    /// milliseconds (`None` on baselines written before the churn
    /// cells existed; gated only on churny cells).
    pub unavail_ms: Option<f64>,
    /// Worst kill-to-next-fresh-read time, milliseconds (`None` on
    /// pre-churn baselines; gated only on churny cells).
    pub recovery_ms: Option<f64>,
}

fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest
        .find([',', '}'])
        .expect("sweep rows terminate every field");
    Some(rest[..end].trim())
}

fn field_str(row: &str, key: &str) -> Option<String> {
    let raw = field(row, key)?;
    Some(raw.trim_matches('"').to_owned())
}

/// Parses the matrix emitted by [`crate::sweep::sweep_json`].
pub fn parse_sweep_json(json: &str) -> Result<Vec<TrajectoryCell>, String> {
    let mut cells = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            return Err("unterminated sweep row".into());
        };
        let row = &rest[open..open + close + 1];
        rest = &rest[open + close + 1..];
        let mut key = match (
            field_str(row, "class"),
            field_str(row, "policy"),
            field_str(row, "mode"),
        ) {
            (Some(c), Some(p), Some(m)) => format!("{c}/{p}/{m}"),
            _ => return Err(format!("sweep row lacks class/policy/mode: {row}")),
        };
        // Pre-churn baselines have neither field: steady-state cell.
        let churn = field_str(row, "churn").unwrap_or_else(|| "none".to_owned());
        let adaptive = field(row, "adaptive") == Some("true");
        if churn != "none" {
            key.push('/');
            key.push_str(&churn);
        }
        if adaptive {
            key.push_str("/adaptive");
        }
        let grp_bytes_encoded = field(row, "grp_bytes_encoded")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{key}: bad grp_bytes_encoded"))?;
        let p99_ms = field(row, "p99_ms")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{key}: bad p99_ms"))?;
        cells.push(TrajectoryCell {
            key,
            churny: churn != "none" || adaptive,
            grp_bytes_encoded,
            p99_ms,
            // Absent from pre-chunking baselines: None keeps those
            // comparable, the chunk gates below fire only when both
            // sides carry the metric.
            chunk_dedup_ratio: field(row, "chunk_dedup_ratio").and_then(|v| v.parse().ok()),
            upgrade_grp_bytes: field(row, "upgrade_grp_bytes").and_then(|v| v.parse().ok()),
            unavail_ms: field(row, "unavail_ms").and_then(|v| v.parse().ok()),
            recovery_ms: field(row, "recovery_ms").and_then(|v| v.parse().ok()),
        });
    }
    if cells.is_empty() {
        return Err("sweep JSON contains no cells".into());
    }
    Ok(cells)
}

/// `current > baseline * (1 + tolerance) + slack`. Multiplicative
/// form: a zero-valued baseline metric degrades to the absolute slack
/// alone, never to a division.
fn regressed(baseline: f64, current: f64, tolerance: f64, slack: f64) -> bool {
    current > baseline * (1.0 + tolerance) + slack
}

/// How one cell fared against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum RowVerdict {
    /// Within tolerance.
    Ok,
    /// Regressed; one message per gated metric.
    Regressed(Vec<String>),
    /// In the baseline but absent from the fresh run (a violation —
    /// the matrix silently shrank).
    MissingFromCurrent,
    /// In the fresh run but not the baseline (not a violation — the
    /// matrix grew; the regenerated baseline will cover it).
    NewInCurrent,
}

/// One cell of the trajectory diff.
#[derive(Clone, Debug)]
pub struct TrajectoryRow {
    /// The cell's identity key.
    pub key: String,
    /// Whether the wider churn band applied.
    pub churny: bool,
    /// Baseline GRP bytes (absent for new cells).
    pub base_bytes: Option<u64>,
    /// Fresh-run GRP bytes (absent for missing cells).
    pub cur_bytes: Option<u64>,
    /// Baseline p99, milliseconds.
    pub base_p99: Option<f64>,
    /// Fresh-run p99, milliseconds.
    pub cur_p99: Option<f64>,
    /// The verdict.
    pub verdict: RowVerdict,
}

/// Diffs parsed matrices cell-by-cell: baseline cells in order, then
/// cells new in the current run.
pub fn trajectory_rows(
    baseline: &[TrajectoryCell],
    current: &[TrajectoryCell],
) -> Vec<TrajectoryRow> {
    let mut rows = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            rows.push(TrajectoryRow {
                key: b.key.clone(),
                churny: b.churny,
                base_bytes: Some(b.grp_bytes_encoded),
                cur_bytes: None,
                base_p99: Some(b.p99_ms),
                cur_p99: None,
                verdict: RowVerdict::MissingFromCurrent,
            });
            continue;
        };
        let (tolerance, bytes_slack, p99_slack) = if b.churny || c.churny {
            (CHURN_TOLERANCE, CHURN_BYTES_SLACK, CHURN_P99_SLACK)
        } else {
            (TRAJECTORY_TOLERANCE, BYTES_SLACK, P99_SLACK)
        };
        let mut messages = Vec::new();
        if regressed(
            b.grp_bytes_encoded as f64,
            c.grp_bytes_encoded as f64,
            tolerance,
            bytes_slack,
        ) {
            messages.push(format!(
                "{}: grp bytes regressed {} -> {} (> {:.0}% + slack)",
                b.key,
                b.grp_bytes_encoded,
                c.grp_bytes_encoded,
                tolerance * 100.0
            ));
        }
        if regressed(b.p99_ms, c.p99_ms, tolerance, p99_slack) {
            messages.push(format!(
                "{}: p99 regressed {:.3} ms -> {:.3} ms (> {:.0}% + slack)",
                b.key,
                b.p99_ms,
                c.p99_ms,
                tolerance * 100.0
            ));
        }
        // Chunk-economics gates, active only when both revisions carry
        // the metrics (pre-chunking baselines parse them as None).
        if let (Some(bu), Some(cu)) = (b.upgrade_grp_bytes, c.upgrade_grp_bytes) {
            if regressed(bu as f64, cu as f64, tolerance, bytes_slack) {
                messages.push(format!(
                    "{}: upgrade bytes regressed {} -> {} (> {:.0}% + slack)",
                    b.key,
                    bu,
                    cu,
                    tolerance * 100.0
                ));
            }
        }
        // Availability ratchet, active only on churny cells where both
        // revisions measured the windows: health-aware failover bought
        // the current numbers, and a code change that silently gives
        // the win back must fail here even while still inside the
        // absolute bound `check_sweep_invariants` applies.
        if b.churny && c.churny {
            if let (Some(bu), Some(cu)) = (b.unavail_ms, c.unavail_ms) {
                if regressed(bu, cu, tolerance, CHURN_AVAIL_SLACK_MS) {
                    messages.push(format!(
                        "{}: unavail regressed {:.0} ms -> {:.0} ms (> {:.0}% + slack)",
                        b.key,
                        bu,
                        cu,
                        tolerance * 100.0
                    ));
                }
            }
            if let (Some(br), Some(cr)) = (b.recovery_ms, c.recovery_ms) {
                if regressed(br, cr, tolerance, CHURN_AVAIL_SLACK_MS) {
                    messages.push(format!(
                        "{}: recovery regressed {:.0} ms -> {:.0} ms (> {:.0}% + slack)",
                        b.key,
                        br,
                        cr,
                        tolerance * 100.0
                    ));
                }
            }
        }
        if let (Some(bd), Some(cd)) = (b.chunk_dedup_ratio, c.chunk_dedup_ratio) {
            // A dedup ratio is a fraction, so the gate is a relative
            // drop with a small absolute floor — not `regressed`,
            // which only catches growth.
            if bd > 0.0 && cd < bd * (1.0 - tolerance) - 0.05 {
                messages.push(format!(
                    "{}: chunk dedup ratio dropped {:.3} -> {:.3}",
                    b.key, bd, cd
                ));
            }
        }
        rows.push(TrajectoryRow {
            key: b.key.clone(),
            churny: b.churny || c.churny,
            base_bytes: Some(b.grp_bytes_encoded),
            cur_bytes: Some(c.grp_bytes_encoded),
            base_p99: Some(b.p99_ms),
            cur_p99: Some(c.p99_ms),
            verdict: if messages.is_empty() {
                RowVerdict::Ok
            } else {
                RowVerdict::Regressed(messages)
            },
        });
    }
    for c in current {
        if !baseline.iter().any(|b| b.key == c.key) {
            rows.push(TrajectoryRow {
                key: c.key.clone(),
                churny: c.churny,
                base_bytes: None,
                cur_bytes: Some(c.grp_bytes_encoded),
                base_p99: None,
                cur_p99: Some(c.p99_ms),
                verdict: RowVerdict::NewInCurrent,
            });
        }
    }
    rows
}

/// The violation messages a set of diff rows carries.
pub fn row_violations(rows: &[TrajectoryRow]) -> Vec<String> {
    let mut violations = Vec::new();
    for row in rows {
        match &row.verdict {
            RowVerdict::Ok | RowVerdict::NewInCurrent => {}
            RowVerdict::MissingFromCurrent => {
                violations.push(format!("{}: cell missing from current sweep", row.key));
            }
            RowVerdict::Regressed(messages) => violations.extend(messages.iter().cloned()),
        }
    }
    violations
}

/// Diffs `current` against `baseline` (both in the sweep's JSON
/// format). `Err` means a matrix could not be parsed; `Ok` carries one
/// message per regression (empty = within tolerance).
pub fn compare_trajectory(baseline: &str, current: &str) -> Result<Vec<String>, String> {
    let base = parse_sweep_json(baseline)?;
    let cur = parse_sweep_json(current)?;
    Ok(row_violations(&trajectory_rows(&base, &cur)))
}

/// What the trajectory gate decided, with the evidence the summary
/// renders.
#[derive(Clone, Debug)]
pub enum GateOutcome {
    /// Comparison bypassed (`GLOBE_SWEEP_BASELINE=skip`, or a
    /// full-scale run that has no committed baseline of its own scale).
    Skipped {
        /// Why.
        reason: String,
    },
    /// No committed baseline file was found.
    NoBaseline,
    /// Every cell within tolerance.
    Pass {
        /// The per-cell diff.
        rows: Vec<TrajectoryRow>,
    },
    /// At least one regression or vanished cell.
    Fail {
        /// The per-cell diff.
        rows: Vec<TrajectoryRow>,
        /// One message per violation.
        violations: Vec<String>,
    },
}

impl GateOutcome {
    /// Whether the bench run may ratchet `current` into the committed
    /// baseline path (regeneration): only when the gate did not fail.
    pub fn allows_baseline_write(&self) -> bool {
        !matches!(self, GateOutcome::Fail { .. })
    }
}

/// Runs the trajectory gate: `skip_reason` short-circuits (the
/// `GLOBE_SWEEP_BASELINE=skip` regeneration path and the full-scale
/// nightly, which must never be compared against — or overwrite — the
/// committed smoke baseline), a missing baseline is reported as such,
/// and otherwise both matrices are parsed and diffed. `Err` carries a
/// parse failure (a corrupt committed baseline must fail the bench, not
/// pass it silently).
pub fn trajectory_gate(
    baseline: Option<&str>,
    current: &str,
    skip_reason: Option<&str>,
) -> Result<GateOutcome, String> {
    if let Some(reason) = skip_reason {
        return Ok(GateOutcome::Skipped {
            reason: reason.to_owned(),
        });
    }
    let Some(baseline) = baseline else {
        return Ok(GateOutcome::NoBaseline);
    };
    let base = parse_sweep_json(baseline)?;
    let cur = parse_sweep_json(current)?;
    let rows = trajectory_rows(&base, &cur);
    let violations = row_violations(&rows);
    Ok(if violations.is_empty() {
        GateOutcome::Pass { rows }
    } else {
        GateOutcome::Fail { rows, violations }
    })
}

fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}|\n",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

fn pct(base: f64, cur: f64) -> String {
    if base == 0.0 {
        return if cur == 0.0 {
            "±0%".into()
        } else {
            "new".into()
        };
    }
    format!("{:+.1}%", (cur - base) / base * 100.0)
}

fn diff_table(rows: &[TrajectoryRow]) -> String {
    let fmt_u64 = |v: Option<u64>| v.map_or("—".to_owned(), |v| v.to_string());
    let fmt_ms = |v: Option<f64>| v.map_or("—".to_owned(), |v| format!("{v:.1}"));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (bytes_delta, p99_delta) = match (r.base_bytes, r.cur_bytes, r.base_p99, r.cur_p99)
            {
                (Some(bb), Some(cb), Some(bp), Some(cp)) => {
                    (pct(bb as f64, cb as f64), pct(bp, cp))
                }
                _ => ("—".to_owned(), "—".to_owned()),
            };
            let verdict = match &r.verdict {
                RowVerdict::Ok => "ok".to_owned(),
                RowVerdict::Regressed(m) => format!("**REGRESSED** ({})", m.len()),
                RowVerdict::MissingFromCurrent => "**MISSING**".to_owned(),
                RowVerdict::NewInCurrent => "new cell".to_owned(),
            };
            vec![
                r.key.clone(),
                fmt_u64(r.base_bytes),
                fmt_u64(r.cur_bytes),
                bytes_delta,
                fmt_ms(r.base_p99),
                fmt_ms(r.cur_p99),
                p99_delta,
                verdict,
            ]
        })
        .collect();
    md_table(
        &[
            "cell",
            "grp bytes (base)",
            "grp bytes (now)",
            "Δ bytes",
            "p99 ms (base)",
            "p99 ms (now)",
            "Δ p99",
            "verdict",
        ],
        &body,
    )
}

/// Renders the run — the matrix, the availability columns, the
/// invariant findings, and the trajectory diff with its gate verdict —
/// as one markdown document for `$GITHUB_STEP_SUMMARY`.
pub fn summary_markdown(
    reports: &[CellReport],
    invariant_violations: &[String],
    gate: &GateOutcome,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Scenario sweep — {} cells\n\n{}\n",
        reports.len(),
        md_table(&SWEEP_TABLE_HEADERS, &sweep_table_rows(reports))
    ));
    let avail = avail_table_rows(reports);
    if !avail.is_empty() {
        out.push_str(&format!(
            "### Availability under churn\n\n{}\n",
            md_table(&AVAIL_TABLE_HEADERS, &avail)
        ));
    }
    out.push_str("### Invariants\n\n");
    if invariant_violations.is_empty() {
        out.push_str("All sweep invariants hold.\n\n");
    } else {
        for v in invariant_violations {
            out.push_str(&format!("- ❌ {v}\n"));
        }
        out.push('\n');
    }
    out.push_str("### Trajectory vs committed baseline\n\n");
    match gate {
        GateOutcome::Skipped { reason } => {
            out.push_str(&format!("Gate skipped: {reason}.\n"));
        }
        GateOutcome::NoBaseline => {
            out.push_str("No committed baseline found; nothing to gate against.\n");
        }
        GateOutcome::Pass { rows } => {
            out.push_str(&format!(
                "**PASS** — {} cells within tolerance.\n\n{}",
                rows.len(),
                diff_table(rows)
            ));
        }
        GateOutcome::Fail { rows, violations } => {
            out.push_str(&format!(
                "**FAIL** — {} violation(s).\n\n{}",
                violations.len(),
                diff_table(rows)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{sweep_json, ChurnPlan};
    use crate::{CellReport, DsoClass};
    use globe_rts::PropagationMode;
    use globe_sim::SimDuration;
    use globe_workloads::ScenarioPolicy;

    fn report(bytes: u64, p99: f64) -> CellReport {
        CellReport {
            policy: ScenarioPolicy::Central,
            mode: PropagationMode::PushState,
            class: DsoClass::Package,
            churn: ChurnPlan::None,
            adaptive: false,
            regions: 3,
            replicas: 1,
            writes_completed: 10,
            requests: 20,
            ok: 20,
            p50_ms: 1.0,
            p99_ms: p99,
            grp_encodes: 5,
            grp_bytes_encoded: bytes,
            stable_puts: 5,
            deltas_applied: 0,
            fresh_reads: 20,
            stale_reads: 0,
            wan_bytes: 1000,
            downloads_recorded: 0,
            kills: 0,
            unavail_ms: 0.0,
            recovery_ms: 0.0,
            retries: 0,
            rerepl_grp_bytes: 0,
            policy_switches: 0,
            coalesced: 0,
            hedges: 0,
            rotations: 0,
            health_failures: 0,
            evictions: 0,
            unavail_limit_ms: 0.0,
            stale_limit: 0.0,
            chunk_dedup_ratio: 0.0,
            upgrade_grp_bytes: 0,
            upgrade_bytes_ratio: 0.0,
        }
    }

    fn churn_report(bytes: u64, p99: f64) -> CellReport {
        CellReport {
            churn: ChurnPlan::RollingReplicas {
                period: SimDuration::from_secs(15),
                kills: 1,
                down: SimDuration::from_secs(10),
            },
            kills: 2,
            retries: 3,
            rerepl_grp_bytes: 1000,
            unavail_ms: 8_000.0,
            unavail_limit_ms: 25_000.0,
            ..report(bytes, p99)
        }
    }

    #[test]
    fn parses_the_sweep_emitter_format() {
        let json = sweep_json(&[report(100_000, 12.5), churn_report(5_000, 40.0)]);
        let cells = parse_sweep_json(&json).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "package/central/push_state");
        assert!(!cells[0].churny);
        assert_eq!(cells[0].grp_bytes_encoded, 100_000);
        assert!((cells[0].p99_ms - 12.5).abs() < 1e-9);
        assert_eq!(cells[1].key, "package/central/push_state/rolling");
        assert!(cells[1].churny);
    }

    #[test]
    fn pre_churn_baseline_rows_parse_as_steady_state() {
        // The PR 4 emitter wrote neither "churn" nor "adaptive".
        let old = concat!(
            "[\n  {\"class\":\"package\",\"policy\":\"central\",",
            "\"mode\":\"push_state\",\"p99_ms\":12.500,",
            "\"grp_bytes_encoded\":100000}\n]\n"
        );
        let cells = parse_sweep_json(old).unwrap();
        assert_eq!(cells[0].key, "package/central/push_state");
        assert!(!cells[0].churny);
    }

    #[test]
    fn identical_sweeps_pass() {
        let json = sweep_json(&[report(100_000, 12.5)]);
        assert_eq!(
            compare_trajectory(&json, &json).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn regressions_are_flagged_per_metric() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        let worse = sweep_json(&[report(120_000, 20.0)]);
        let violations = compare_trajectory(&base, &worse).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("grp bytes"));
        assert!(violations[1].contains("p99"));
    }

    #[test]
    fn small_drift_stays_within_tolerance() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        let drift = sweep_json(&[report(104_000, 13.0)]);
        assert_eq!(
            compare_trajectory(&base, &drift).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn churn_cells_get_the_wider_band() {
        // +30% bytes and +40 ms p99: far outside the steady-state band,
        // inside the churn band.
        let base = sweep_json(&[churn_report(100_000, 50.0)]);
        let noisy = sweep_json(&[churn_report(130_000, 90.0)]);
        assert_eq!(
            compare_trajectory(&base, &noisy).unwrap(),
            Vec::<String>::new()
        );
        // The same drift on a steady-state cell is two violations.
        let base = sweep_json(&[report(100_000, 50.0)]);
        let noisy = sweep_json(&[report(130_000, 90.0)]);
        assert_eq!(compare_trajectory(&base, &noisy).unwrap().len(), 2);
        // The churn band still has a ceiling.
        let base = sweep_json(&[churn_report(100_000, 50.0)]);
        let worse = sweep_json(&[churn_report(200_000, 500.0)]);
        assert_eq!(compare_trajectory(&base, &worse).unwrap().len(), 2);
    }

    #[test]
    fn availability_windows_ratchet_on_churn_cells() {
        // Within one backoff step of the baseline: fine.
        let base = sweep_json(&[churn_report(100_000, 50.0)]);
        let mut drifted = churn_report(100_000, 50.0);
        drifted.unavail_ms = 12_000.0;
        assert_eq!(
            compare_trajectory(&base, &sweep_json(&[drifted])).unwrap(),
            Vec::<String>::new()
        );
        // Giving back a whole hedge-driven failover: both windows gate.
        let mut worse = churn_report(100_000, 50.0);
        worse.unavail_ms = 18_000.0;
        worse.recovery_ms = 9_000.0;
        let violations = compare_trajectory(&base, &sweep_json(&[worse])).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("unavail regressed"));
        assert!(violations[1].contains("recovery regressed"));
        // Steady-state cells never carry the gate (their windows are
        // zero on both sides).
        let steady = sweep_json(&[report(100_000, 50.0)]);
        assert_eq!(
            compare_trajectory(&steady, &steady).unwrap(),
            Vec::<String>::new()
        );
        // Pre-churn baselines lack the fields entirely: no gate.
        let old = concat!(
            "[\n  {\"class\":\"package\",\"policy\":\"central\",",
            "\"mode\":\"push_state\",\"churn\":\"rolling\",\"adaptive\":false,",
            "\"p99_ms\":50.000,\"grp_bytes_encoded\":100000}\n]\n"
        );
        assert_eq!(
            compare_trajectory(old, &base).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn zero_valued_baseline_metrics_do_not_divide() {
        // A cell whose baseline encoded nothing (pure-read cell): only
        // the absolute slack guards it, and equal zeros pass.
        let base = sweep_json(&[report(0, 0.0)]);
        let same = sweep_json(&[report(0, 0.0)]);
        assert_eq!(
            compare_trajectory(&base, &same).unwrap(),
            Vec::<String>::new()
        );
        let within_slack = sweep_json(&[report(1_000, 0.4)]);
        assert_eq!(
            compare_trajectory(&base, &within_slack).unwrap(),
            Vec::<String>::new()
        );
        let beyond_slack = sweep_json(&[report(2_000, 5.0)]);
        assert_eq!(compare_trajectory(&base, &beyond_slack).unwrap().len(), 2);
    }

    #[test]
    fn missing_and_new_cells_are_distinguished() {
        let both = sweep_json(&[report(1, 1.0), churn_report(2, 2.0)]);
        let only_steady = sweep_json(&[report(1, 1.0)]);

        // Cell present in baseline but missing from the fresh run: a
        // violation.
        let v = compare_trajectory(&both, &only_steady).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("missing"));

        // Cell new in the fresh run (matrix grew): not a violation,
        // but visible in the diff rows.
        let v = compare_trajectory(&only_steady, &both).unwrap();
        assert_eq!(v, Vec::<String>::new());
        let rows = trajectory_rows(
            &parse_sweep_json(&only_steady).unwrap(),
            &parse_sweep_json(&both).unwrap(),
        );
        assert!(rows
            .iter()
            .any(|r| r.verdict == RowVerdict::NewInCurrent && r.base_bytes.is_none()));
    }

    fn chunked_report(dedup: f64, upgrade: u64) -> CellReport {
        CellReport {
            class: DsoClass::PackageChunked,
            mode: PropagationMode::PushChunks,
            chunk_dedup_ratio: dedup,
            upgrade_grp_bytes: upgrade,
            upgrade_bytes_ratio: 0.13,
            ..report(100_000, 12.5)
        }
    }

    #[test]
    fn chunk_metrics_are_gated_when_both_sides_carry_them() {
        let base = sweep_json(&[chunked_report(0.9, 10_000)]);
        let same = sweep_json(&[chunked_report(0.9, 10_000)]);
        assert_eq!(
            compare_trajectory(&base, &same).unwrap(),
            Vec::<String>::new()
        );
        // Upgrade cost ballooning and dedup collapsing each gate.
        let worse = sweep_json(&[chunked_report(0.3, 40_000)]);
        let violations = compare_trajectory(&base, &worse).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("upgrade bytes"));
        assert!(violations[1].contains("dedup ratio dropped"));
        // Small drift stays inside the band.
        let drift = sweep_json(&[chunked_report(0.86, 10_500)]);
        assert_eq!(
            compare_trajectory(&base, &drift).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn pre_chunking_baselines_skip_the_chunk_gates() {
        // A baseline row without the chunk fields gates only on the
        // classic metrics, whatever the fresh run's chunk numbers are.
        let old = concat!(
            "[\n  {\"class\":\"package-chunked\",\"policy\":\"central\",",
            "\"mode\":\"push_chunks\",\"p99_ms\":12.500,",
            "\"grp_bytes_encoded\":100000}\n]\n"
        );
        let cur = sweep_json(&[chunked_report(0.1, 999_999)]);
        assert_eq!(compare_trajectory(old, &cur).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn garbage_is_an_error() {
        let base = sweep_json(&[report(100_000, 12.5)]);
        assert!(compare_trajectory(&base, "[\n]\n").is_err());
        assert!(compare_trajectory("not json", &base).is_err());
    }

    #[test]
    fn gate_skip_path_bypasses_even_regressions() {
        let base = sweep_json(&[report(100, 1.0)]);
        let much_worse = sweep_json(&[report(1_000_000, 500.0)]);
        let outcome =
            trajectory_gate(Some(&base), &much_worse, Some("GLOBE_SWEEP_BASELINE=skip")).unwrap();
        assert!(matches!(outcome, GateOutcome::Skipped { .. }));
        assert!(outcome.allows_baseline_write());
        // Skip never parses the baseline, so the regeneration path
        // works even when the committed file is stale garbage.
        let outcome = trajectory_gate(Some("garbage"), &much_worse, Some("skip")).unwrap();
        assert!(matches!(outcome, GateOutcome::Skipped { .. }));
    }

    #[test]
    fn gate_outcomes_cover_baseline_states() {
        let base = sweep_json(&[report(100, 1.0)]);
        let worse = sweep_json(&[report(1_000_000, 500.0)]);
        assert!(matches!(
            trajectory_gate(None, &base, None).unwrap(),
            GateOutcome::NoBaseline
        ));
        let pass = trajectory_gate(Some(&base), &base, None).unwrap();
        assert!(matches!(pass, GateOutcome::Pass { .. }));
        assert!(pass.allows_baseline_write());
        let fail = trajectory_gate(Some(&base), &worse, None).unwrap();
        assert!(matches!(fail, GateOutcome::Fail { .. }));
        assert!(!fail.allows_baseline_write());
        assert!(trajectory_gate(Some("garbage"), &base, None).is_err());
    }

    #[test]
    fn summary_renders_all_sections() {
        let reports = vec![report(100_000, 12.5), churn_report(5_000, 40.0)];
        let json = sweep_json(&reports);
        let gate = trajectory_gate(Some(&json), &json, None).unwrap();
        let md = summary_markdown(&reports, &[], &gate);
        for needle in [
            "## Scenario sweep — 2 cells",
            "### Availability under churn",
            "package/central/push_state/rolling",
            "All sweep invariants hold.",
            "### Trajectory vs committed baseline",
            "**PASS**",
            "+0.0%",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        let md = summary_markdown(
            &reports,
            &["cell X: 3 stale reads".to_owned()],
            &GateOutcome::Skipped {
                reason: "full-scale run".into(),
            },
        );
        assert!(md.contains("❌ cell X: 3 stale reads"));
        assert!(md.contains("Gate skipped: full-scale run."));
    }
}
