//! Component-tagged event tracing.
//!
//! Protocol tests want to assert *behaviour* ("the lookup visited exactly
//! these directory nodes"), not just end results. Components append
//! structured entries to a [`TraceLog`]; tests filter them. The log is off
//! by default so large benchmark runs pay nothing for it.

use std::fmt;

use crate::time::SimTime;

/// Severity/verbosity of a trace entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Protocol-level milestones (connection opened, replica created).
    Info,
    /// Per-message detail.
    Debug,
}

/// One recorded trace entry.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Severity of the entry.
    pub level: TraceLevel,
    /// Originating component, e.g. `"gls.node"` or `"httpd"`.
    pub component: &'static str,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.time, self.level, self.component, self.message
        )
    }
}

/// An in-memory trace collector.
///
/// # Examples
///
/// ```
/// use globe_sim::{SimTime, TraceLevel, TraceLog};
///
/// let mut log = TraceLog::new(TraceLevel::Debug);
/// log.log(SimTime::ZERO, TraceLevel::Info, "gls", "lookup start".into());
/// assert_eq!(log.entries().len(), 1);
/// assert_eq!(log.matching("gls", "lookup").count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
    /// Entries above this level are discarded; `None` disables tracing.
    max_level: Option<TraceLevel>,
}

impl TraceLog {
    /// Creates a log that records entries up to and including `max_level`.
    pub fn new(max_level: TraceLevel) -> Self {
        TraceLog {
            entries: Vec::new(),
            max_level: Some(max_level),
        }
    }

    /// Creates a disabled log; all entries are discarded.
    pub fn disabled() -> Self {
        TraceLog {
            entries: Vec::new(),
            max_level: None,
        }
    }

    /// Returns `true` if entries at `level` would be recorded.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.max_level.map(|m| level <= m).unwrap_or(false)
    }

    /// Appends an entry if the log is enabled at `level`.
    pub fn log(
        &mut self,
        time: SimTime,
        level: TraceLevel,
        component: &'static str,
        message: String,
    ) {
        if self.enabled(level) {
            self.entries.push(TraceEntry {
                time,
                level,
                component,
                message,
            });
        }
    }

    /// Returns all recorded entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterates entries from `component` whose message contains `needle`.
    pub fn matching<'a>(
        &'a self,
        component: &'a str,
        needle: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.component == component && e.message.contains(needle))
    }

    /// Discards all recorded entries, keeping the level configuration.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// A deterministic hash of every recorded entry (time, level,
    /// component and message, in order).
    ///
    /// Two runs of the same seeded simulation must produce equal
    /// fingerprints; the golden-determinism test uses this to catch a
    /// refactor that silently reorders the schedule without waiting for
    /// a metric to drift.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::fxhash::FxHasher::default();
        for e in &self.entries {
            h.write_u64(e.time.as_nanos());
            h.write_u8(e.level as u8);
            h.write(e.component.as_bytes());
            h.write(e.message.as_bytes());
        }
        h.write_usize(self.entries.len());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.log(SimTime::ZERO, TraceLevel::Info, "x", "hello".into());
        assert!(log.entries().is_empty());
        assert!(!log.enabled(TraceLevel::Info));
    }

    #[test]
    fn level_filtering() {
        let mut log = TraceLog::new(TraceLevel::Info);
        log.log(SimTime::ZERO, TraceLevel::Info, "x", "kept".into());
        log.log(SimTime::ZERO, TraceLevel::Debug, "x", "dropped".into());
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].message, "kept");
    }

    #[test]
    fn matching_filters_by_component_and_text() {
        let mut log = TraceLog::new(TraceLevel::Debug);
        log.log(SimTime::ZERO, TraceLevel::Info, "a", "lookup oid=1".into());
        log.log(SimTime::ZERO, TraceLevel::Info, "b", "lookup oid=2".into());
        log.log(SimTime::ZERO, TraceLevel::Info, "a", "insert oid=3".into());
        assert_eq!(log.matching("a", "lookup").count(), 1);
        assert_eq!(log.matching("a", "oid").count(), 2);
        assert_eq!(log.matching("c", "oid").count(), 0);
    }

    #[test]
    fn clear_keeps_level() {
        let mut log = TraceLog::new(TraceLevel::Debug);
        log.log(SimTime::ZERO, TraceLevel::Debug, "x", "one".into());
        log.clear();
        assert!(log.entries().is_empty());
        assert!(log.enabled(TraceLevel::Debug));
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let mut a = TraceLog::new(TraceLevel::Debug);
        let mut b = TraceLog::new(TraceLevel::Debug);
        for log in [&mut a, &mut b] {
            log.log(SimTime::ZERO, TraceLevel::Info, "x", "one".into());
            log.log(
                SimTime::from_millis(1),
                TraceLevel::Debug,
                "y",
                "two".into(),
            );
        }
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = TraceLog::new(TraceLevel::Debug);
        c.log(
            SimTime::from_millis(1),
            TraceLevel::Debug,
            "y",
            "two".into(),
        );
        c.log(SimTime::ZERO, TraceLevel::Info, "x", "one".into());
        assert_ne!(a.fingerprint(), c.fingerprint(), "order must matter");

        let mut d = TraceLog::new(TraceLevel::Debug);
        d.log(SimTime::ZERO, TraceLevel::Info, "x", "one".into());
        assert_ne!(a.fingerprint(), d.fingerprint(), "length must matter");
        assert_eq!(
            TraceLog::disabled().fingerprint(),
            TraceLog::default().fingerprint()
        );
    }

    #[test]
    fn display_format() {
        let e = TraceEntry {
            time: SimTime::from_millis(1),
            level: TraceLevel::Info,
            component: "gls",
            message: "hi".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gls") && s.contains("hi"));
    }
}
