//! Run-time scenario adaptation (paper §3.1: "the information's
//! replication scenario should adapt to changes in its popularity").
//!
//! The [`AdaptiveController`] plays the role the paper assigns to
//! future automated management: it watches per-object, per-region
//! demand counters and, when a region's demand for an object crosses a
//! threshold, commands that region's object server to create an
//! additional slave replica — exactly what a moderator would do by hand
//! with the moderator tool. Experiment E7 (flash crowd) compares runs
//! with and without it.
//!
//! The controller also closes the replica-health loop: client runtimes
//! publish `health.cold.h{host}` counters (one tick per failure
//! observed against a replica their [`HealthLedger`] classifies cold —
//! see `globe_rts::health`), and a region whose object-server host
//! keeps accumulating them is declared *sick*. Slave replicas the
//! controller placed there are evicted (`adapt.evictions`) and
//! re-placed on the healthiest region (`adapt.replaced_sick`), with the
//! sick region quarantined against demand-driven re-placement for a few
//! intervals.
//!
//! [`HealthLedger`]: globe_rts::HealthLedger

use std::collections::{BTreeMap, BTreeSet};

use gdn_core::PACKAGE_IMPL;
use globe_gls::ObjectId;
use globe_net::{
    impl_service_any, ns_token, owns_token, ConnEvent, ConnId, Endpoint, Service, ServiceCtx,
};
use globe_rts::{protocol_id, GlobeRuntime, GosCmd, GosResp, ImplId, RoleSpec, RtConn};
use globe_sim::{SimDuration, SimTime};

const CTRL_NS: u16 = 0x7722;
const TICK: u64 = 1;

/// One managed object.
#[derive(Clone, Debug)]
pub struct ManagedObject {
    /// Catalog index (matches the `load.pkg<idx>.region<r>` counters).
    pub index: usize,
    /// The object id.
    pub oid: ObjectId,
    /// The master's GRP endpoint.
    pub master: Endpoint,
    /// The object's class — replicas the controller creates must
    /// instantiate the same implementation (any registered DSO class,
    /// not just packages).
    pub impl_id: ImplId,
}

impl ManagedObject {
    /// A managed package DSO (the common case).
    pub fn package(index: usize, oid: ObjectId, master: Endpoint) -> ManagedObject {
        ManagedObject {
            index,
            oid,
            master,
            impl_id: PACKAGE_IMPL,
        }
    }
}

/// The adaptation daemon.
pub struct AdaptiveController {
    runtime: GlobeRuntime,
    objects: Vec<ManagedObject>,
    /// Regional object servers: `region → GOS control endpoint`.
    region_gos: Vec<Endpoint>,
    /// Check interval.
    interval: SimDuration,
    /// Requests per interval per region that trigger a replica.
    threshold: u64,
    /// Counter values at the previous tick, keyed by (object, region).
    last_seen: BTreeMap<(usize, usize), u64>,
    /// Replicas already created, keyed by (object, region).
    placed: BTreeSet<(usize, usize)>,
    /// In-flight `CreateReplica` commands: `req → (key, deadline)`.
    /// Entries that outlive their deadline (the target object server
    /// was down, or the reply was lost to a crash) are un-placed so a
    /// later tick retries — without this, one kill window would
    /// permanently cost the region its replica.
    pending: BTreeMap<u64, ((usize, usize), SimTime)>,
    /// Expired placements still awaiting a verdict, with their expiry
    /// time: an acknowledgment that limps in after the deadline (e.g.
    /// delivered when the target recovers) re-arms `placed`, so the
    /// controller does not re-issue `CreateReplica` against a live,
    /// freshly synced replica and wipe it. Entries whose ack never
    /// comes are pruned after a few intervals.
    expired: BTreeMap<u64, ((usize, usize), SimTime)>,
    next_req: u64,
    /// `health.cold.h{host}` counter values at the previous tick, keyed
    /// by region index (the counter is world-global; every client
    /// runtime feeds it).
    cold_seen: BTreeMap<usize, u64>,
    /// Consecutive ticks in which each region's object-server host
    /// accumulated fresh cold-failure observations.
    sick_streak: BTreeMap<usize, u32>,
    /// Regions quarantined after an eviction, with expiry: demand-driven
    /// placement skips them so the next tick does not re-place straight
    /// onto the host that was just declared sick.
    quarantined: BTreeMap<usize, SimTime>,
    /// Replica creations this controller has commanded (policy
    /// switches, counting retries of failed placements).
    pub replicas_added: u64,
    /// Creations the object servers acknowledged.
    pub replicas_confirmed: u64,
    /// Replicas evicted from chronically cold hosts.
    pub evictions: u64,
    /// Evicted replicas re-placed on a healthy host.
    pub replaced_sick: u64,
}

impl AdaptiveController {
    /// Creates a controller with moderator credentials in `runtime`.
    pub fn new(
        runtime: GlobeRuntime,
        objects: Vec<ManagedObject>,
        region_gos: Vec<Endpoint>,
        interval: SimDuration,
        threshold: u64,
    ) -> AdaptiveController {
        AdaptiveController {
            runtime,
            objects,
            region_gos,
            interval,
            threshold,
            last_seen: BTreeMap::new(),
            placed: BTreeSet::new(),
            pending: BTreeMap::new(),
            expired: BTreeMap::new(),
            next_req: 1,
            cold_seen: BTreeMap::new(),
            sick_streak: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            replicas_added: 0,
            replicas_confirmed: 0,
            evictions: 0,
            replaced_sick: 0,
        }
    }

    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Expire unacknowledged placements first: the command (or its
        // reply) died with a crashed host, so the slot reopens and the
        // demand check below may re-issue it.
        let now = ctx.now();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(&req, _)| req)
            .collect();
        for req in expired {
            let ((index, region), _) = self.pending.remove(&req).expect("pending entry");
            self.placed.remove(&(index, region));
            self.expired.insert(req, ((index, region), now));
            ctx.metrics().inc("adapt.placements_expired", 1);
            ctx.trace_info(
                "adapt",
                format!("placement of pkg{index} in region {region} timed out; will retry"),
            );
        }
        // Acks that never came stop being awaited eventually.
        let horizon = self.interval * 8;
        self.expired
            .retain(|_, (_, at)| now.saturating_sub(*at) < horizon);
        let num_regions = self.region_gos.len();
        let mut actions: Vec<(usize, usize)> = Vec::new();
        for obj in &self.objects {
            for region in 0..num_regions {
                let key = (obj.index, region);
                let counter_key = format!("load.pkg{}.region{region}", obj.index);
                let now_count = ctx.metrics().counter(&counter_key);
                let prev = self.last_seen.insert(key, now_count).unwrap_or(0);
                let delta = now_count - prev;
                let already_home = self.region_gos[region].host == obj.master.host
                    || ctx.topo().region_of_host(self.region_gos[region].host)
                        == ctx.topo().region_of_host(obj.master.host);
                if delta >= self.threshold
                    && !already_home
                    && !self.placed.contains(&key)
                    && !self.quarantined.contains_key(&region)
                {
                    actions.push(key);
                }
            }
        }
        for (index, region) in actions {
            let obj = self
                .objects
                .iter()
                .find(|o| o.index == index)
                .expect("managed object")
                .clone();
            self.placed.insert((index, region));
            let gos = self.region_gos[region];
            let req = self.next_req;
            self.next_req += 1;
            let cmd = GosCmd::CreateReplica {
                req,
                oid: obj.oid.0,
                impl_id: obj.impl_id.0,
                protocol: protocol_id::MASTER_SLAVE,
                role: RoleSpec::Slave { master: obj.master },
            };
            let conn = self.runtime.open_app_conn(ctx, gos);
            self.runtime.send_app(ctx, conn, &cmd.encode());
            self.pending
                .insert(req, ((index, region), ctx.now() + self.interval * 2));
            self.replicas_added += 1;
            ctx.metrics().inc("adapt.replicas_added", 1);
            ctx.trace_info(
                "adapt",
                format!("replicating pkg{index} into region {region}"),
            );
        }
        self.heal(ctx);
        ctx.set_timer(self.interval, ns_token(CTRL_NS, TICK));
    }

    /// The self-healing pass: evict placed replicas from regions whose
    /// object-server host keeps failing clients while classified cold,
    /// and re-place them on the healthiest region.
    fn heal(&mut self, ctx: &mut ServiceCtx<'_>) {
        /// Consecutive ticks of fresh cold-failure observations before a
        /// region counts as chronically sick (one bad tick is a blip).
        const SICK_TICKS: u32 = 2;
        let now = ctx.now();
        self.quarantined.retain(|_, until| *until > now);
        let num_regions = self.region_gos.len();
        for region in 0..num_regions {
            let host = self.region_gos[region].host;
            let count = ctx.metrics().counter(&format!("health.cold.h{}", host.0));
            let prev = self.cold_seen.insert(region, count).unwrap_or(0);
            let streak = self.sick_streak.entry(region).or_insert(0);
            if count > prev {
                *streak += 1;
            } else {
                *streak = 0;
            }
        }
        let sick: Vec<usize> = (0..num_regions)
            .filter(|r| self.sick_streak.get(r).copied().unwrap_or(0) >= SICK_TICKS)
            .collect();
        if sick.is_empty() {
            return;
        }
        // The healthiest destination: no active streak, fewest cold
        // observations ever, not itself quarantined.
        let healthy = (0..num_regions)
            .filter(|r| !sick.contains(r) && !self.quarantined.contains_key(r))
            .filter(|r| self.sick_streak.get(r).copied().unwrap_or(0) == 0)
            .min_by_key(|r| (self.cold_seen.get(r).copied().unwrap_or(0), *r));
        for region in sick {
            // Only confirmed placements move; a still-pending creation
            // keeps its retry machinery.
            let in_flight: BTreeSet<(usize, usize)> = self
                .pending
                .values()
                .chain(self.expired.values())
                .map(|(key, _)| *key)
                .collect();
            let moved: Vec<usize> = self
                .placed
                .iter()
                .filter(|&&(_, r)| r == region)
                .filter(|key| !in_flight.contains(key))
                .map(|&(index, _)| index)
                .collect();
            if moved.is_empty() {
                // Nothing of ours there; keep watching.
                continue;
            }
            let gos = self.region_gos[region];
            for index in moved {
                let obj = self
                    .objects
                    .iter()
                    .find(|o| o.index == index)
                    .expect("managed object")
                    .clone();
                self.placed.remove(&(index, region));
                let req = self.next_req;
                self.next_req += 1;
                // Fire-and-forget: a lost delete against a sick host is
                // retried implicitly by staying quarantined (and the
                // stray ack matches no pending entry).
                let cmd = GosCmd::DeleteReplica {
                    req,
                    oid: obj.oid.0,
                };
                let conn = self.runtime.open_app_conn(ctx, gos);
                self.runtime.send_app(ctx, conn, &cmd.encode());
                self.evictions += 1;
                ctx.metrics().inc("adapt.evictions", 1);
                ctx.trace_info(
                    "adapt",
                    format!("evicting pkg{index} replica from sick region {region}"),
                );
                let Some(dst) = healthy else {
                    continue;
                };
                // Re-place unless the destination already has one (or is
                // the master's home region, which the master serves).
                let home = self.region_gos[dst].host == obj.master.host
                    || ctx.topo().region_of_host(self.region_gos[dst].host)
                        == ctx.topo().region_of_host(obj.master.host);
                if dst == region || home || self.placed.contains(&(index, dst)) {
                    continue;
                }
                self.placed.insert((index, dst));
                let req = self.next_req;
                self.next_req += 1;
                let cmd = GosCmd::CreateReplica {
                    req,
                    oid: obj.oid.0,
                    impl_id: obj.impl_id.0,
                    protocol: protocol_id::MASTER_SLAVE,
                    role: RoleSpec::Slave { master: obj.master },
                };
                let conn = self.runtime.open_app_conn(ctx, self.region_gos[dst]);
                self.runtime.send_app(ctx, conn, &cmd.encode());
                self.pending
                    .insert(req, ((index, dst), now + self.interval * 2));
                self.replicas_added += 1;
                self.replaced_sick += 1;
                ctx.metrics().inc("adapt.replicas_added", 1);
                ctx.metrics().inc("adapt.replaced_sick", 1);
                ctx.trace_info(
                    "adapt",
                    format!("re-placing pkg{index} on healthy region {dst}"),
                );
            }
            self.quarantined.insert(region, now + self.interval * 8);
            self.sick_streak.insert(region, 0);
        }
    }
}

impl Service for AdaptiveController {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.set_timer(self.interval, ns_token(CTRL_NS, TICK));
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if owns_token(CTRL_NS, token) {
            self.tick(ctx);
            return;
        }
        self.runtime.handle_timer(ctx, token);
    }

    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        self.runtime.handle_datagram(ctx, from, &payload);
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if let RtConn::AppData { frames, .. } = self.runtime.handle_conn_event(ctx, conn, ev) {
            for f in frames {
                match GosResp::decode(&f) {
                    Ok(GosResp::Ok { req, .. }) => {
                        if self.pending.remove(&req).is_some() {
                            self.replicas_confirmed += 1;
                            ctx.metrics().inc("adapt.replicas_confirmed", 1);
                        } else if let Some((key, _)) = self.expired.remove(&req) {
                            // The replica exists after all: close the
                            // slot again so the next tick does not
                            // recreate (and wipe) it. If a retry
                            // already took (or holds) the slot, that
                            // attempt carries the confirmation count —
                            // one replica, one count.
                            if self.placed.insert(key) {
                                self.replicas_confirmed += 1;
                                ctx.metrics().inc("adapt.replicas_confirmed", 1);
                            }
                        }
                    }
                    Ok(GosResp::Err { req, msg }) => {
                        // Reopen the slot: a later tick retries while
                        // the demand persists.
                        if let Some((key, _)) = self.pending.remove(&req) {
                            self.placed.remove(&key);
                        }
                        self.expired.remove(&req);
                        ctx.metrics().inc("adapt.failures", 1);
                        ctx.trace_info("adapt", format!("replica creation failed: {msg}"));
                    }
                    Err(_) => {}
                }
            }
        }
    }

    impl_service_any!();
}
