//! Zipf-distributed sampling.
//!
//! Web-object popularity is classically Zipf-like; the paper's case
//! study [Pierre et al. 1999] rests on exactly the resulting skew: a few
//! hot documents deserve wide replication, the long tail does not. The
//! sampler precomputes the CDF and draws by binary search.

use globe_sim::Rng;

/// A sampler over ranks `0..n` with probability `∝ 1/(rank+1)^s`.
///
/// # Examples
///
/// ```
/// use globe_sim::Rng;
/// use globe_workloads::zipf::ZipfSampler;
///
/// let z = ZipfSampler::new(100, 1.0);
/// let mut rng = Rng::new(7);
/// let mut hits0 = 0;
/// for _ in 0..1000 {
///     if z.sample(&mut rng) == 0 {
///         hits0 += 1;
///     }
/// }
/// assert!(hits0 > 100, "rank 0 must dominate, got {hits0}");
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of `rank`.
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masses_sum_to_one() {
        let z = ZipfSampler::new(50, 0.9);
        let total: f64 = (0..50).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_increases_with_exponent() {
        let flat = ZipfSampler::new(100, 0.0);
        let skewed = ZipfSampler::new(100, 1.2);
        assert!((flat.mass(0) - 0.01).abs() < 1e-9);
        assert!(skewed.mass(0) > 0.1);
        assert!(skewed.mass(99) < skewed.mass(0));
    }

    #[test]
    fn empirical_frequency_matches_mass() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = Rng::new(3);
        let n = 200_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            let expect = z.mass(r);
            assert!(
                (emp - expect).abs() < 0.01,
                "rank {r}: empirical {emp:.4} vs {expect:.4}"
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(3, 2.0);
        let mut rng = Rng::new(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
