//! Shared machinery for delta-capable DSO classes.
//!
//! A semantics subobject that wants to ship state *deltas* (see
//! [`globe_rts::SemanticsObject::take_delta`]) records each locally
//! executed mutation into a [`MutationLog`]; the replication layer
//! drains the log once per write. The log is a plain encode buffer —
//! ops are appended in wire form so `take` is a move, not a re-encode —
//! and it is bounded: a representative nobody drains (an active-mode
//! slave re-executing writes, say) overflows the cap and from then on
//! reports "no delta", which makes every consumer fall back to full
//! state transfer. Overflow degrades performance, never correctness.

use globe_net::WireWriter;

/// Byte cap on undrained mutations; past this the log overflows.
const LOG_CAP_BYTES: usize = 256 << 10;

/// A bounded encode buffer of mutations since the last drain.
pub(crate) struct MutationLog {
    buf: WireWriter,
    overflowed: bool,
}

impl Default for MutationLog {
    fn default() -> MutationLog {
        MutationLog {
            buf: WireWriter::new(),
            overflowed: false,
        }
    }
}

impl MutationLog {
    /// Appends one op (encoded by `f`) unless the log already
    /// overflowed.
    pub fn record(&mut self, f: impl FnOnce(&mut WireWriter)) {
        if self.overflowed {
            return;
        }
        f(&mut self.buf);
        if self.buf.len() > LOG_CAP_BYTES {
            self.overflowed = true;
            self.buf = WireWriter::new();
        }
    }

    /// Drains the log: the encoded ops since the last drain, or `None`
    /// after an overflow (which this call clears — recording starts
    /// afresh from the caller's new baseline).
    pub fn take(&mut self) -> Option<Vec<u8>> {
        if self.overflowed {
            self.overflowed = false;
            self.buf = WireWriter::new();
            return None;
        }
        Some(std::mem::replace(&mut self.buf, WireWriter::new()).finish())
    }

    /// Discards everything (full-state installs reset the baseline).
    pub fn reset(&mut self) {
        self.buf = WireWriter::new();
        self.overflowed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains() {
        let mut log = MutationLog::default();
        log.record(|w| w.put_u8(1));
        log.record(|w| w.put_u8(2));
        assert_eq!(log.take(), Some(vec![1, 2]));
        assert_eq!(log.take(), Some(vec![]));
    }

    #[test]
    fn overflow_reports_none_once_then_recovers() {
        let mut log = MutationLog::default();
        log.record(|w| w.put_raw(&vec![0u8; LOG_CAP_BYTES + 1]));
        log.record(|w| w.put_u8(7)); // ignored while overflowed
        assert_eq!(log.take(), None);
        log.record(|w| w.put_u8(9));
        assert_eq!(log.take(), Some(vec![9]));
    }

    #[test]
    fn reset_clears_overflow() {
        let mut log = MutationLog::default();
        log.record(|w| w.put_raw(&vec![0u8; LOG_CAP_BYTES + 1]));
        log.reset();
        assert_eq!(log.take(), Some(vec![]));
    }
}
