//! The Globe Name Service (GNS) and its DNS substrate.
//!
//! The paper's GNS prototype (§5) is "based on the Domain Name System":
//! symbolic Globe object names map one-to-one onto DNS names whose TXT
//! records carry the encoded object identifier; resolution uses ordinary
//! DNS machinery; updates flow through a *Naming Authority* that issues
//! DNS UPDATE messages protected by BIND's TSIG. This crate rebuilds the
//! whole stack:
//!
//! - [`name`] — DNS names, Globe names and the reversing/zone-prefixing
//!   mapping between them (the *GDN Zone* trick that hides DNS suffixes
//!   from users).
//! - [`records`] — resource records (A/NS/TXT/SOA) and authoritative
//!   zones with delegations, TTLs and serials.
//! - [`proto`] — queries, responses, dynamic updates and TSIG MACs.
//! - [`server`] — authoritative servers with primary→secondary update
//!   replication.
//! - [`resolver`] — per-site caching resolvers doing iterative
//!   resolution from root hints (the scalability engine of §5;
//!   experiment E6).
//! - [`client`] — the embeddable stub resolver.
//! - [`authority`] — the Naming Authority: moderator-authenticated,
//!   batching, TSIG-signing (§6.1 requirement 3).
//! - [`gns`] — deployment planning and the name→object-id client.

pub mod authority;
pub mod client;
pub mod gns;
pub mod name;
pub mod proto;
pub mod records;
pub mod resolver;
pub mod server;

pub use authority::{
    oid_to_txt, txt_to_oid, NaClient, NaEvent, NaRequest, NaResponse, NamingAuthority,
};
pub use client::{DnsError, DnsEvent, DnsStub};
pub use gns::{GnsClient, GnsConfig, GnsDeployment, GnsError, GnsEvent, RESOLVER_PORT};
pub use name::{DnsName, GlobeName, NameError};
pub use records::{RData, RecordType, ResourceRecord, Zone, ZoneAnswer};
pub use resolver::Resolver;
pub use server::AuthServer;
