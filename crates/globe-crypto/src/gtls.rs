//! gTLS: a TLS-like secure channel protocol (handshake + record layer).
//!
//! Reproduces the structure of the paper's security scheme (§6.3,
//! Figure 4): channels between GDN hosts are *two-way* authenticated;
//! channels from GDN hosts to user machines are *one-way* authenticated
//! (server only); and the record layer offers integrity protection with
//! or without the confidentiality the paper notes it "does not need".
//!
//! Three modes:
//!
//! - [`Mode::Null`] — plaintext with the same message flow (baseline).
//! - [`Mode::AuthOnly`] — HMAC-SHA256 record integrity, no encryption
//!   (what the paper wishes it could buy).
//! - [`Mode::AuthEncrypt`] — ChaCha20 + HMAC, encrypt-then-MAC (what
//!   TLS/SSL actually gave them).
//!
//! Handshake (simplified TLS 1.x, 1.5 round trips):
//!
//! ```text
//! Client                                   Server
//!   ClientHello {nonce_c, dh_c, mode}  ───▶
//!        ◀─── ServerHello {nonce_s, dh_s, cert_s, sig_s(th1),
//!                          finished_s, need_client_auth}
//!   ClientFinish {cert_c, sig_c(th2), finished_c} ───▶   (two-way only)
//! ```
//!
//! Virtual CPU cost: every operation charges a [`CostModel`]-determined
//! amount of virtual time, drained by the caller via
//! [`TlsSession::take_cost`] and charged to the simulation timeline with
//! `ServiceCtx::send_delayed`. Defaults are calibrated to late-1990s
//! server hardware so that the handshake/record cost ratios match what
//! the paper's authors would have seen with JSSE.
//!
//! Security caveat: authentication rests on the simulation-grade
//! 61-bit Schnorr group (see [`crate::group`]); the structure is real,
//! the key sizes are not.

use std::error::Error;
use std::fmt;

use globe_net::{WireError, WireReader, WireWriter};
use globe_sim::{Rng, SimDuration};

use crate::cert::{CertError, Certificate, Credentials};
use crate::chacha20::chacha20_xor;
use crate::hmac::{hkdf, hmac_sha256, verify_tag};
use crate::sha256::Sha256;
use crate::sig::{dh_keygen, dh_shared, sign, verify, DhPublic, DhSecret};

/// Protection level of a gTLS channel.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Mode {
    /// No protection; same message flow as the secure modes.
    Null,
    /// Authentication and integrity (HMAC records), no encryption.
    AuthOnly,
    /// Authentication, integrity and confidentiality
    /// (ChaCha20 + HMAC, encrypt-then-MAC).
    AuthEncrypt,
}

impl Mode {
    fn tag(self) -> u8 {
        match self {
            Mode::Null => 0,
            Mode::AuthOnly => 1,
            Mode::AuthEncrypt => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Mode, TlsError> {
        Ok(match t {
            0 => Mode::Null,
            1 => Mode::AuthOnly,
            2 => Mode::AuthEncrypt,
            other => return Err(TlsError::Wire(WireError::BadTag(other))),
        })
    }

    /// Short name for metrics keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Null => "null",
            Mode::AuthOnly => "auth",
            Mode::AuthEncrypt => "auth+enc",
        }
    }
}

/// Virtual CPU cost of cryptographic operations, in nanoseconds.
///
/// Defaults approximate a late-1990s server CPU: ~40 MB/s SHA-256,
/// ~25 MB/s bulk cipher, milliseconds for public-key operations.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Per-byte MAC cost.
    pub mac_ns_per_byte: u64,
    /// Per-byte encryption cost.
    pub enc_ns_per_byte: u64,
    /// Cost of creating one signature.
    pub sign_ns: u64,
    /// Cost of verifying one signature (and of validating one
    /// certificate).
    pub verify_ns: u64,
    /// Cost of one modular exponentiation (DH key-gen or shared-secret).
    pub dh_ns: u64,
    /// Fixed cost per record (framing, key schedule cache, syscall).
    pub per_record_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mac_ns_per_byte: 25,
            enc_ns_per_byte: 40,
            sign_ns: 4_000_000,
            verify_ns: 5_000_000,
            dh_ns: 3_000_000,
            per_record_ns: 5_000,
        }
    }
}

impl CostModel {
    /// A zero-cost model, for experiments isolating protocol structure
    /// from CPU cost.
    pub fn free() -> CostModel {
        CostModel {
            mac_ns_per_byte: 0,
            enc_ns_per_byte: 0,
            sign_ns: 0,
            verify_ns: 0,
            dh_ns: 0,
            per_record_ns: 0,
        }
    }
}

/// Server policy toward client certificates.
///
/// The GDN needs all three (paper Figure 4): internal channels *require*
/// mutual authentication, user-facing replica ports *request* a
/// certificate so privileged clients (moderators, GDN hosts) can prove
/// themselves while anonymous users still connect, and plain web traffic
/// asks for none.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ClientAuth {
    /// Never ask for a client certificate.
    None,
    /// Ask; clients without credentials proceed anonymously.
    Request,
    /// Demand; clients without valid credentials are rejected.
    Require,
}

/// Configuration for one side of a gTLS session.
#[derive(Clone)]
pub struct TlsConfig {
    /// Protection level. Client proposes; server enforces equality.
    pub mode: Mode,
    /// This side's certificate and key. Required for servers in secure
    /// modes and for clients when the server demands client auth.
    pub credentials: Option<Credentials>,
    /// Trust anchors for validating the peer's certificate.
    pub trusted_roots: Vec<Certificate>,
    /// Server only: policy toward client certificates.
    pub client_auth: ClientAuth,
    /// Virtual CPU cost model.
    pub cost: CostModel,
}

impl TlsConfig {
    /// Anonymous plaintext configuration.
    pub fn null() -> TlsConfig {
        TlsConfig {
            mode: Mode::Null,
            credentials: None,
            trusted_roots: Vec::new(),
            client_auth: ClientAuth::None,
            cost: CostModel::default(),
        }
    }

    /// Client configuration trusting `roots` (one-way auth — Figure 4
    /// labels 1 and 2).
    pub fn client(mode: Mode, roots: Vec<Certificate>) -> TlsConfig {
        TlsConfig {
            mode,
            credentials: None,
            trusted_roots: roots,
            client_auth: ClientAuth::None,
            cost: CostModel::default(),
        }
    }

    /// Client configuration that also carries credentials, offered when
    /// the server requests or requires them (moderator tools, GDN
    /// hosts dialing each other).
    pub fn client_with_identity(
        mode: Mode,
        creds: Credentials,
        roots: Vec<Certificate>,
    ) -> TlsConfig {
        TlsConfig {
            mode,
            credentials: Some(creds),
            trusted_roots: roots,
            client_auth: ClientAuth::None,
            cost: CostModel::default(),
        }
    }

    /// Mutually authenticated configuration for GDN hosts (Figure 4
    /// label 3).
    pub fn mutual(mode: Mode, creds: Credentials, roots: Vec<Certificate>) -> TlsConfig {
        TlsConfig {
            mode,
            credentials: Some(creds),
            trusted_roots: roots,
            client_auth: ClientAuth::Require,
            cost: CostModel::default(),
        }
    }

    /// Server configuration that authenticates itself but not its
    /// clients (user-facing endpoints).
    pub fn server_auth(mode: Mode, creds: Credentials, roots: Vec<Certificate>) -> TlsConfig {
        TlsConfig {
            mode,
            credentials: Some(creds),
            trusted_roots: roots,
            client_auth: ClientAuth::Request,
            cost: CostModel::default(),
        }
    }
}

/// Errors raised by the gTLS state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlsError {
    /// A message arrived that is invalid in the current state.
    BadState(&'static str),
    /// Decoding failure.
    Wire(WireError),
    /// Client and server are configured for different modes.
    ModeMismatch,
    /// A record MAC failed to verify.
    BadMac,
    /// A handshake signature failed to verify.
    BadSignature,
    /// Certificate validation failed.
    Cert(CertError),
    /// The server demands a client certificate the client does not have.
    ClientCertRequired,
    /// This side needs credentials (e.g. secure-mode server) but has none.
    NoCredentials,
    /// The peer's Diffie–Hellman share was invalid.
    BadDh,
    /// A record arrived out of sequence.
    BadSeq,
    /// A handshake "finished" check failed (key agreement mismatch).
    BadFinished,
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::BadState(s) => write!(f, "unexpected message in state {s}"),
            TlsError::Wire(e) => write!(f, "malformed handshake message: {e}"),
            TlsError::ModeMismatch => write!(f, "client/server mode mismatch"),
            TlsError::BadMac => write!(f, "record MAC verification failed"),
            TlsError::BadSignature => write!(f, "handshake signature invalid"),
            TlsError::Cert(e) => write!(f, "peer certificate rejected: {e}"),
            TlsError::ClientCertRequired => write!(f, "server requires a client certificate"),
            TlsError::NoCredentials => write!(f, "local credentials required but absent"),
            TlsError::BadDh => write!(f, "invalid Diffie-Hellman share"),
            TlsError::BadSeq => write!(f, "record out of sequence"),
            TlsError::BadFinished => write!(f, "handshake finished check failed"),
        }
    }
}

impl Error for TlsError {}

impl From<WireError> for TlsError {
    fn from(e: WireError) -> Self {
        TlsError::Wire(e)
    }
}

impl From<CertError> for TlsError {
    fn from(e: CertError) -> Self {
        TlsError::Cert(e)
    }
}

/// Events surfaced to the application by [`TlsSession::on_message`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlsEvent {
    /// The handshake completed. `peer` carries the authenticated remote
    /// certificate (None for anonymous peers: Null mode, or clients in
    /// one-way auth).
    Established {
        /// The peer's validated certificate, if it presented one.
        peer: Option<Certificate>,
    },
    /// One decrypted/verified application message.
    Data(Vec<u8>),
}

/// Counters for one session, used by experiment E5.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Application bytes MAC'd (both directions as seen by this side).
    pub bytes_maced: u64,
    /// Application bytes encrypted or decrypted.
    pub bytes_encrypted: u64,
    /// Records sealed by this side.
    pub records_sealed: u64,
    /// Records opened by this side.
    pub records_opened: u64,
    /// Handshake messages processed or produced.
    pub handshake_msgs: u64,
    /// Total virtual CPU nanoseconds charged.
    pub cpu_ns: u64,
}

const TAG_CLIENT_HELLO: u8 = 1;
const TAG_SERVER_HELLO: u8 = 2;
const TAG_CLIENT_FINISH: u8 = 3;
const TAG_RECORD: u8 = 4;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum State {
    /// Client: ClientHello sent, awaiting ServerHello.
    WaitServerHello,
    /// Server: awaiting ClientHello.
    WaitClientHello,
    /// Server: awaiting ClientFinish (two-way auth only).
    WaitClientFinish,
    /// Handshake complete; records flow.
    Established,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Side {
    Client,
    Server,
}

struct Keys {
    mac_c2s: [u8; 32],
    mac_s2c: [u8; 32],
    enc_c2s: [u8; 32],
    enc_s2c: [u8; 32],
    fin_s: [u8; 32],
    fin_c: [u8; 32],
}

fn derive_keys(shared: u64, nonce_c: &[u8; 32], nonce_s: &[u8; 32]) -> Keys {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(nonce_c);
    salt.extend_from_slice(nonce_s);
    let okm = hkdf(&shared.to_be_bytes(), &salt, b"gtls-keys-v1", 192);
    let mut keys = Keys {
        mac_c2s: [0; 32],
        mac_s2c: [0; 32],
        enc_c2s: [0; 32],
        enc_s2c: [0; 32],
        fin_s: [0; 32],
        fin_c: [0; 32],
    };
    keys.mac_c2s.copy_from_slice(&okm[0..32]);
    keys.mac_s2c.copy_from_slice(&okm[32..64]);
    keys.enc_c2s.copy_from_slice(&okm[64..96]);
    keys.enc_s2c.copy_from_slice(&okm[96..128]);
    keys.fin_s.copy_from_slice(&okm[128..160]);
    keys.fin_c.copy_from_slice(&okm[160..192]);
    keys
}

fn gen_nonce(rng: &mut Rng) -> [u8; 32] {
    let mut n = [0u8; 32];
    for chunk in n.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_be_bytes());
    }
    n
}

/// One side of a gTLS session.
///
/// The session is a pure state machine: it consumes and produces byte
/// messages and never touches the network itself, so it can sit on any
/// reliable, ordered, message-framed transport.
///
/// # Examples
///
/// ```
/// use globe_crypto::cert::{CertAuthority, Credentials, Role};
/// use globe_crypto::gtls::{Mode, TlsConfig, TlsEvent, TlsSession};
/// use globe_sim::Rng;
///
/// let ca = CertAuthority::new("gdn-root", 1);
/// let server_creds = Credentials::issue(&ca, "gos-1", Role::Host, 11);
/// let roots = vec![ca.root_cert().clone()];
///
/// let mut rng = Rng::new(42);
/// let (mut client, hello) =
///     TlsSession::client(TlsConfig::client(Mode::AuthOnly, roots.clone()), &mut rng).unwrap();
/// let mut server = TlsSession::server(TlsConfig::server_auth(
///     Mode::AuthOnly,
///     server_creds,
///     roots,
/// ));
///
/// let out = server.on_message(&hello, &mut rng).unwrap();
/// let out = client.on_message(&out.replies[0], &mut rng).unwrap();
/// assert!(matches!(out.events[0], TlsEvent::Established { .. }));
/// // The server *requested* a client certificate; deliver the
/// // (anonymous) ClientFinish to finish its side of the handshake.
/// let _ = server.on_message(&out.replies[0], &mut rng).unwrap();
///
/// let record = client.seal(b"GET /pkg/apps/graphics/Gimp").unwrap();
/// let out = server.on_message(&record, &mut rng).unwrap();
/// assert_eq!(out.events, vec![TlsEvent::Data(b"GET /pkg/apps/graphics/Gimp".to_vec())]);
/// ```
pub struct TlsSession {
    side: Side,
    state: State,
    config: TlsConfig,
    keys: Option<Keys>,
    nonce_c: [u8; 32],
    dh_secret: Option<DhSecret>,
    client_hello: Vec<u8>,
    th1: [u8; 32],
    peer: Option<Certificate>,
    send_seq: u64,
    recv_seq: u64,
    pending_cost_ns: u64,
    stats: SessionStats,
}

/// Result of feeding one inbound message to a session.
#[derive(Debug, Default)]
pub struct TlsOutput {
    /// Application-visible events.
    pub events: Vec<TlsEvent>,
    /// Protocol messages that must be sent to the peer, in order.
    pub replies: Vec<Vec<u8>>,
}

impl TlsSession {
    /// Creates a client session and the initial ClientHello message.
    ///
    /// Fails with [`TlsError::NoCredentials`] only via the server path;
    /// clients without credentials are fine unless the server later
    /// demands one.
    pub fn client(config: TlsConfig, rng: &mut Rng) -> Result<(TlsSession, Vec<u8>), TlsError> {
        let nonce_c = gen_nonce(rng);
        let mut w = WireWriter::new();
        w.put_u8(TAG_CLIENT_HELLO);
        w.put_u8(config.mode.tag());
        let mut session = TlsSession {
            side: Side::Client,
            state: State::WaitServerHello,
            keys: None,
            nonce_c,
            dh_secret: None,
            client_hello: Vec::new(),
            th1: [0; 32],
            peer: None,
            send_seq: 0,
            recv_seq: 0,
            pending_cost_ns: 0,
            stats: SessionStats::default(),
            config,
        };
        if session.config.mode != Mode::Null {
            let (dh_sec, dh_pub) = dh_keygen(rng);
            session.dh_secret = Some(dh_sec);
            session.charge(session.config.cost.dh_ns);
            w.put_raw(&nonce_c);
            w.put_u64(dh_pub.0);
        }
        let hello = w.finish();
        session.client_hello = hello.clone();
        session.stats.handshake_msgs += 1;
        Ok((session, hello))
    }

    /// Creates a server session awaiting a ClientHello.
    pub fn server(config: TlsConfig) -> TlsSession {
        TlsSession {
            side: Side::Server,
            state: State::WaitClientHello,
            keys: None,
            nonce_c: [0; 32],
            dh_secret: None,
            client_hello: Vec::new(),
            th1: [0; 32],
            peer: None,
            send_seq: 0,
            recv_seq: 0,
            pending_cost_ns: 0,
            stats: SessionStats::default(),
            config,
        }
    }

    /// Whether the handshake has completed.
    pub fn established(&self) -> bool {
        self.state == State::Established
    }

    /// The authenticated peer certificate, if any.
    pub fn peer_identity(&self) -> Option<&Certificate> {
        self.peer.as_ref()
    }

    /// The negotiated mode.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// Per-session statistics.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Drains the virtual CPU time accumulated since the last call.
    /// Callers charge it to the timeline (e.g. via `send_delayed`).
    pub fn take_cost(&mut self) -> SimDuration {
        let ns = self.pending_cost_ns;
        self.pending_cost_ns = 0;
        SimDuration::from_nanos(ns)
    }

    fn charge(&mut self, ns: u64) {
        self.pending_cost_ns += ns;
        self.stats.cpu_ns += ns;
    }

    /// Processes one inbound protocol message.
    ///
    /// `rng` supplies server-side handshake randomness; it is unused once
    /// the session is established.
    pub fn on_message(&mut self, msg: &[u8], rng: &mut Rng) -> Result<TlsOutput, TlsError> {
        let mut r = WireReader::new(msg);
        let tag = r.u8()?;
        match (tag, self.state, self.side) {
            (TAG_CLIENT_HELLO, State::WaitClientHello, Side::Server) => {
                self.handle_client_hello(msg, &mut r, rng)
            }
            (TAG_SERVER_HELLO, State::WaitServerHello, Side::Client) => {
                self.handle_server_hello(&mut r)
            }
            (TAG_CLIENT_FINISH, State::WaitClientFinish, Side::Server) => {
                self.handle_client_finish(&mut r)
            }
            (TAG_RECORD, State::Established, _) => {
                let data = self.open_record(&mut r)?;
                self.stats.records_opened += 1;
                Ok(TlsOutput {
                    events: vec![TlsEvent::Data(data)],
                    replies: vec![],
                })
            }
            (TAG_RECORD, _, _) => Err(TlsError::BadState("record before establishment")),
            _ => Err(TlsError::BadState("handshake")),
        }
    }

    fn handle_client_hello(
        &mut self,
        raw: &[u8],
        r: &mut WireReader<'_>,
        rng: &mut Rng,
    ) -> Result<TlsOutput, TlsError> {
        self.stats.handshake_msgs += 1;
        let mode = Mode::from_tag(r.u8()?)?;
        if mode != self.config.mode {
            return Err(TlsError::ModeMismatch);
        }
        if mode == Mode::Null {
            r.expect_end()?;
            let mut w = WireWriter::new();
            w.put_u8(TAG_SERVER_HELLO);
            w.put_u8(Mode::Null.tag());
            self.state = State::Established;
            self.stats.handshake_msgs += 1;
            return Ok(TlsOutput {
                events: vec![TlsEvent::Established { peer: None }],
                replies: vec![w.finish()],
            });
        }
        let creds = self
            .config
            .credentials
            .clone()
            .ok_or(TlsError::NoCredentials)?;
        let mut nonce_c = [0u8; 32];
        nonce_c.copy_from_slice(r.raw(32)?);
        let dh_c = DhPublic(r.u64()?);
        r.expect_end()?;
        self.nonce_c = nonce_c;

        let (dh_sec, dh_pub) = dh_keygen(rng);
        self.charge(self.config.cost.dh_ns);
        let shared = dh_shared(&dh_sec, &dh_c).ok_or(TlsError::BadDh)?;
        self.charge(self.config.cost.dh_ns);
        let nonce_s = gen_nonce(rng);
        let keys = derive_keys(shared, &nonce_c, &nonce_s);

        // Transcript hash th1 covers everything up to the signature.
        let cert_bytes = creds.cert.encode();
        let mut th = Sha256::new();
        th.update(b"gtls-th1");
        th.update(raw);
        th.update(&nonce_s);
        th.update(&dh_pub.0.to_be_bytes());
        th.update(&cert_bytes);
        let th1 = th.finish();
        self.th1 = th1;

        let sig = sign(&creds.secret, &th1);
        self.charge(self.config.cost.sign_ns);
        let finished = hmac_sha256(&keys.fin_s, &th1);
        self.charge(self.config.cost.per_record_ns);

        let mut w = WireWriter::new();
        w.put_u8(TAG_SERVER_HELLO);
        w.put_u8(mode.tag());
        w.put_raw(&nonce_s);
        w.put_u64(dh_pub.0);
        w.put_bytes(&cert_bytes);
        w.put_u64(sig.e);
        w.put_u64(sig.s);
        w.put_u8(match self.config.client_auth {
            ClientAuth::None => 0,
            ClientAuth::Request => 1,
            ClientAuth::Require => 2,
        });
        w.put_raw(&finished);
        self.keys = Some(keys);
        self.stats.handshake_msgs += 1;

        if self.config.client_auth != ClientAuth::None {
            self.state = State::WaitClientFinish;
            Ok(TlsOutput {
                events: vec![],
                replies: vec![w.finish()],
            })
        } else {
            self.state = State::Established;
            Ok(TlsOutput {
                events: vec![TlsEvent::Established { peer: None }],
                replies: vec![w.finish()],
            })
        }
    }

    fn handle_server_hello(&mut self, r: &mut WireReader<'_>) -> Result<TlsOutput, TlsError> {
        self.stats.handshake_msgs += 1;
        let mode = Mode::from_tag(r.u8()?)?;
        if mode != self.config.mode {
            return Err(TlsError::ModeMismatch);
        }
        if mode == Mode::Null {
            r.expect_end()?;
            self.state = State::Established;
            return Ok(TlsOutput {
                events: vec![TlsEvent::Established { peer: None }],
                replies: vec![],
            });
        }
        let mut nonce_s = [0u8; 32];
        nonce_s.copy_from_slice(r.raw(32)?);
        let dh_s = DhPublic(r.u64()?);
        let cert_bytes = r.bytes()?.to_vec();
        let sig = crate::sig::Signature {
            e: r.u64()?,
            s: r.u64()?,
        };
        let client_auth = match r.u8()? {
            0 => ClientAuth::None,
            1 => ClientAuth::Request,
            2 => ClientAuth::Require,
            other => return Err(TlsError::Wire(WireError::BadTag(other))),
        };
        let mut finished = [0u8; 32];
        finished.copy_from_slice(r.raw(32)?);
        r.expect_end()?;

        let cert = Certificate::decode(&cert_bytes)?;
        cert.verify_against(&self.config.trusted_roots)?;
        self.charge(self.config.cost.verify_ns);

        // Recompute th1 and check the server's signature over it.
        let mut th = Sha256::new();
        th.update(b"gtls-th1");
        th.update(&self.client_hello);
        th.update(&nonce_s);
        th.update(&dh_s.0.to_be_bytes());
        th.update(&cert_bytes);
        let th1 = th.finish();
        if !verify(&cert.public_key, &th1, &sig) {
            return Err(TlsError::BadSignature);
        }
        self.charge(self.config.cost.verify_ns);

        let dh_sec = self.dh_secret.take().expect("client generated a DH key");
        let shared = dh_shared(&dh_sec, &dh_s).ok_or(TlsError::BadDh)?;
        self.charge(self.config.cost.dh_ns);
        let keys = derive_keys(shared, &self.nonce_c, &nonce_s);
        if !verify_tag(&hmac_sha256(&keys.fin_s, &th1), &finished) {
            return Err(TlsError::BadFinished);
        }
        self.charge(self.config.cost.per_record_ns);
        self.th1 = th1;

        let mut replies = Vec::new();
        if client_auth != ClientAuth::None {
            let creds = match (&self.config.credentials, client_auth) {
                (Some(c), _) => Some(c.clone()),
                (None, ClientAuth::Require) => return Err(TlsError::ClientCertRequired),
                (None, _) => None,
            };
            let ccert_bytes = creds.as_ref().map(|c| c.cert.encode()).unwrap_or_default();
            let mut th2h = Sha256::new();
            th2h.update(b"gtls-th2");
            th2h.update(&th1);
            th2h.update(&ccert_bytes);
            let th2 = th2h.finish();
            let mut w = WireWriter::new();
            w.put_u8(TAG_CLIENT_FINISH);
            match &creds {
                Some(c) => {
                    w.put_bool(true);
                    w.put_bytes(&ccert_bytes);
                    let csig = sign(&c.secret, &th2);
                    self.charge(self.config.cost.sign_ns);
                    w.put_u64(csig.e);
                    w.put_u64(csig.s);
                }
                None => w.put_bool(false),
            }
            let cfin = hmac_sha256(&keys.fin_c, &th2);
            self.charge(self.config.cost.per_record_ns);
            w.put_raw(&cfin);
            replies.push(w.finish());
            self.stats.handshake_msgs += 1;
        }
        self.keys = Some(keys);
        self.state = State::Established;
        self.peer = Some(cert.clone());
        Ok(TlsOutput {
            events: vec![TlsEvent::Established { peer: Some(cert) }],
            replies,
        })
    }

    fn handle_client_finish(&mut self, r: &mut WireReader<'_>) -> Result<TlsOutput, TlsError> {
        self.stats.handshake_msgs += 1;
        let has_cert = r.bool()?;
        let (ccert_bytes, csig) = if has_cert {
            let bytes = r.bytes()?.to_vec();
            let sig = crate::sig::Signature {
                e: r.u64()?,
                s: r.u64()?,
            };
            (bytes, Some(sig))
        } else {
            (Vec::new(), None)
        };
        let mut cfin = [0u8; 32];
        cfin.copy_from_slice(r.raw(32)?);
        r.expect_end()?;

        if !has_cert && self.config.client_auth == ClientAuth::Require {
            return Err(TlsError::ClientCertRequired);
        }
        let cert = if has_cert {
            let cert = Certificate::decode(&ccert_bytes)?;
            cert.verify_against(&self.config.trusted_roots)?;
            self.charge(self.config.cost.verify_ns);
            Some(cert)
        } else {
            None
        };

        let mut th2h = Sha256::new();
        th2h.update(b"gtls-th2");
        th2h.update(&self.th1);
        th2h.update(&ccert_bytes);
        let th2 = th2h.finish();
        if let (Some(cert), Some(csig)) = (&cert, &csig) {
            if !verify(&cert.public_key, &th2, csig) {
                return Err(TlsError::BadSignature);
            }
            self.charge(self.config.cost.verify_ns);
        }
        let keys = self.keys.as_ref().expect("server derived keys at SH");
        if !verify_tag(&hmac_sha256(&keys.fin_c, &th2), &cfin) {
            return Err(TlsError::BadFinished);
        }
        self.charge(self.config.cost.per_record_ns);
        self.state = State::Established;
        self.peer = cert.clone();
        Ok(TlsOutput {
            events: vec![TlsEvent::Established { peer: cert }],
            replies: vec![],
        })
    }

    /// Protects one application message for transmission.
    ///
    /// Must only be called once [`TlsSession::established`] is true.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, TlsError> {
        if self.state != State::Established {
            return Err(TlsError::BadState("seal before establishment"));
        }
        let seq = self.send_seq;
        self.send_seq += 1;
        self.stats.records_sealed += 1;
        self.charge(self.config.cost.per_record_ns);
        let mut w = WireWriter::new();
        w.put_u8(TAG_RECORD);
        w.put_u64(seq);
        match self.config.mode {
            Mode::Null => {
                w.put_bytes(plaintext);
            }
            Mode::AuthOnly => {
                let keys = self.keys.as_ref().expect("established implies keys");
                let key = match self.side {
                    Side::Client => keys.mac_c2s,
                    Side::Server => keys.mac_s2c,
                };
                let mac = record_mac(&key, seq, plaintext);
                self.stats.bytes_maced += plaintext.len() as u64;
                self.charge(self.config.cost.mac_ns_per_byte * plaintext.len() as u64);
                w.put_bytes(plaintext);
                w.put_raw(&mac);
            }
            Mode::AuthEncrypt => {
                let keys = self.keys.as_ref().expect("established implies keys");
                let (enc_key, mac_key) = match self.side {
                    Side::Client => (keys.enc_c2s, keys.mac_c2s),
                    Side::Server => (keys.enc_s2c, keys.mac_s2c),
                };
                let mut ct = plaintext.to_vec();
                chacha20_xor(&enc_key, &record_nonce(self.side, seq), 0, &mut ct);
                let mac = record_mac(&mac_key, seq, &ct);
                self.stats.bytes_encrypted += plaintext.len() as u64;
                self.stats.bytes_maced += plaintext.len() as u64;
                self.charge(
                    (self.config.cost.mac_ns_per_byte + self.config.cost.enc_ns_per_byte)
                        * plaintext.len() as u64,
                );
                w.put_bytes(&ct);
                w.put_raw(&mac);
            }
        }
        Ok(w.finish())
    }

    fn open_record(&mut self, r: &mut WireReader<'_>) -> Result<Vec<u8>, TlsError> {
        let seq = r.u64()?;
        if seq != self.recv_seq {
            return Err(TlsError::BadSeq);
        }
        self.recv_seq += 1;
        self.charge(self.config.cost.per_record_ns);
        let body = r.bytes()?;
        match self.config.mode {
            Mode::Null => {
                r.expect_end()?;
                Ok(body.to_vec())
            }
            Mode::AuthOnly => {
                let mac_wire = r.raw(32)?;
                r.expect_end()?;
                let keys = self.keys.as_ref().expect("established implies keys");
                let key = match self.side {
                    Side::Client => keys.mac_s2c,
                    Side::Server => keys.mac_c2s,
                };
                self.stats.bytes_maced += body.len() as u64;
                self.charge(self.config.cost.mac_ns_per_byte * body.len() as u64);
                if !verify_tag(&record_mac(&key, seq, body), mac_wire) {
                    return Err(TlsError::BadMac);
                }
                Ok(body.to_vec())
            }
            Mode::AuthEncrypt => {
                let mac_wire = r.raw(32)?;
                r.expect_end()?;
                let keys = self.keys.as_ref().expect("established implies keys");
                let (enc_key, mac_key, peer_side) = match self.side {
                    Side::Client => (keys.enc_s2c, keys.mac_s2c, Side::Server),
                    Side::Server => (keys.enc_c2s, keys.mac_c2s, Side::Client),
                };
                self.stats.bytes_maced += body.len() as u64;
                self.charge(self.config.cost.mac_ns_per_byte * body.len() as u64);
                if !verify_tag(&record_mac(&mac_key, seq, body), mac_wire) {
                    return Err(TlsError::BadMac);
                }
                let mut pt = body.to_vec();
                chacha20_xor(&enc_key, &record_nonce(peer_side, seq), 0, &mut pt);
                self.stats.bytes_encrypted += pt.len() as u64;
                self.charge(self.config.cost.enc_ns_per_byte * pt.len() as u64);
                Ok(pt)
            }
        }
    }
}

fn record_mac(key: &[u8; 32], seq: u64, body: &[u8]) -> [u8; 32] {
    let mut data = Vec::with_capacity(8 + body.len());
    data.extend_from_slice(&seq.to_be_bytes());
    data.extend_from_slice(body);
    hmac_sha256(key, &data)
}

fn record_nonce(sender: Side, seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[0] = match sender {
        Side::Client => 0,
        Side::Server => 1,
    };
    n[4..12].copy_from_slice(&seq.to_be_bytes());
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertAuthority, Role};

    fn setup() -> (CertAuthority, Credentials, Credentials, Vec<Certificate>) {
        let ca = CertAuthority::new("gdn-root", 1);
        let server = Credentials::issue(&ca, "gos-1", Role::Host, 11);
        let client = Credentials::issue(&ca, "modtool:alice", Role::Moderator, 12);
        let roots = vec![ca.root_cert().clone()];
        (ca, server, client, roots)
    }

    fn handshake(
        client_cfg: TlsConfig,
        server_cfg: TlsConfig,
    ) -> Result<(TlsSession, TlsSession), TlsError> {
        let mut rng = Rng::new(99);
        let (mut c, hello) = TlsSession::client(client_cfg, &mut rng)?;
        let mut s = TlsSession::server(server_cfg);
        let mut out_s = s.on_message(&hello, &mut rng)?;
        while !(c.established() && s.established()) {
            let mut next_c = TlsOutput::default();
            for m in out_s.replies.drain(..) {
                let o = c.on_message(&m, &mut rng)?;
                next_c.replies.extend(o.replies);
            }
            out_s = TlsOutput::default();
            for m in next_c.replies.drain(..) {
                let o = s.on_message(&m, &mut rng)?;
                out_s.replies.extend(o.replies);
            }
            if out_s.replies.is_empty() && !(c.established() && s.established()) {
                panic!("handshake stalled");
            }
        }
        Ok((c, s))
    }

    #[test]
    fn null_mode_handshake_and_data() {
        let (mut c, mut s) = handshake(TlsConfig::null(), TlsConfig::null()).unwrap();
        let rec = c.seal(b"hello").unwrap();
        let mut rng = Rng::new(0);
        let out = s.on_message(&rec, &mut rng).unwrap();
        assert_eq!(out.events, vec![TlsEvent::Data(b"hello".to_vec())]);
        assert!(c.peer_identity().is_none());
        assert!(s.peer_identity().is_none());
    }

    #[test]
    fn one_way_auth_identifies_server_only() {
        let (_, server, _, roots) = setup();
        let (c, s) = handshake(
            TlsConfig::client(Mode::AuthOnly, roots.clone()),
            TlsConfig::server_auth(Mode::AuthOnly, server, roots),
        )
        .unwrap();
        assert_eq!(c.peer_identity().unwrap().subject, "gos-1");
        assert!(s.peer_identity().is_none());
    }

    #[test]
    fn two_way_auth_identifies_both() {
        let (_, server, client, roots) = setup();
        let (c, s) = handshake(
            TlsConfig::mutual(Mode::AuthEncrypt, client, roots.clone()),
            TlsConfig::mutual(Mode::AuthEncrypt, server, roots),
        )
        .unwrap();
        assert_eq!(c.peer_identity().unwrap().subject, "gos-1");
        assert_eq!(s.peer_identity().unwrap().subject, "modtool:alice");
        assert_eq!(s.peer_identity().unwrap().role, Role::Moderator);
    }

    #[test]
    fn data_round_trips_in_all_modes() {
        let (_, server, client, roots) = setup();
        for mode in [Mode::Null, Mode::AuthOnly, Mode::AuthEncrypt] {
            let (c_cfg, s_cfg) = if mode == Mode::Null {
                (TlsConfig::null(), TlsConfig::null())
            } else {
                (
                    TlsConfig::mutual(mode, client.clone(), roots.clone()),
                    TlsConfig::mutual(mode, server.clone(), roots.clone()),
                )
            };
            let (mut c, mut s) = handshake(c_cfg, s_cfg).unwrap();
            let mut rng = Rng::new(0);
            for (i, msg) in [b"alpha".as_slice(), b"beta", b""].iter().enumerate() {
                let rec = c.seal(msg).unwrap();
                let out = s.on_message(&rec, &mut rng).unwrap();
                assert_eq!(
                    out.events,
                    vec![TlsEvent::Data(msg.to_vec())],
                    "mode {mode:?} msg {i}"
                );
                let back = s.seal(msg).unwrap();
                let out = c.on_message(&back, &mut rng).unwrap();
                assert_eq!(out.events, vec![TlsEvent::Data(msg.to_vec())]);
            }
        }
    }

    #[test]
    fn encrypted_record_hides_plaintext() {
        let (_, server, client, roots) = setup();
        let (mut c, _) = handshake(
            TlsConfig::mutual(Mode::AuthEncrypt, client, roots.clone()),
            TlsConfig::mutual(Mode::AuthEncrypt, server, roots),
        )
        .unwrap();
        let plaintext = b"TOP-SECRET-PACKAGE-CONTENTS-0123456789";
        let rec = c.seal(plaintext).unwrap();
        assert!(
            !rec.windows(plaintext.len()).any(|w| w == plaintext),
            "ciphertext must not contain the plaintext"
        );
        // AuthOnly, by contrast, sends plaintext in the clear.
        let (_, server2, client2, roots2) = setup();
        let (mut c2, _) = handshake(
            TlsConfig::mutual(Mode::AuthOnly, client2, roots2.clone()),
            TlsConfig::mutual(Mode::AuthOnly, server2, roots2),
        )
        .unwrap();
        let rec2 = c2.seal(plaintext).unwrap();
        assert!(rec2.windows(plaintext.len()).any(|w| w == plaintext));
    }

    #[test]
    fn tampered_record_rejected() {
        let (_, server, client, roots) = setup();
        let (mut c, mut s) = handshake(
            TlsConfig::mutual(Mode::AuthOnly, client, roots.clone()),
            TlsConfig::mutual(Mode::AuthOnly, server, roots),
        )
        .unwrap();
        let mut rec = c.seal(b"transfer 100 guilders").unwrap();
        let n = rec.len();
        rec[n - 40] ^= 0x01; // flip a payload bit
        let mut rng = Rng::new(0);
        assert_eq!(s.on_message(&rec, &mut rng).unwrap_err(), TlsError::BadMac);
    }

    #[test]
    fn replayed_record_rejected() {
        let (_, server, client, roots) = setup();
        let (mut c, mut s) = handshake(
            TlsConfig::mutual(Mode::AuthOnly, client, roots.clone()),
            TlsConfig::mutual(Mode::AuthOnly, server, roots),
        )
        .unwrap();
        let rec = c.seal(b"add moderator mallory").unwrap();
        let mut rng = Rng::new(0);
        s.on_message(&rec, &mut rng).unwrap();
        assert_eq!(s.on_message(&rec, &mut rng).unwrap_err(), TlsError::BadSeq);
    }

    #[test]
    fn untrusted_server_cert_rejected() {
        let (_, _, _, roots) = setup();
        let rogue_ca = CertAuthority::new("rogue", 666);
        let rogue_creds = Credentials::issue(&rogue_ca, "evil-gos", Role::Host, 13);
        let mut rng = Rng::new(1);
        let (mut c, hello) =
            TlsSession::client(TlsConfig::client(Mode::AuthOnly, roots), &mut rng).unwrap();
        let mut s = TlsSession::server(TlsConfig::server_auth(
            Mode::AuthOnly,
            rogue_creds,
            vec![rogue_ca.root_cert().clone()],
        ));
        let out = s.on_message(&hello, &mut rng).unwrap();
        let err = c.on_message(&out.replies[0], &mut rng).unwrap_err();
        assert!(matches!(err, TlsError::Cert(_)), "got {err:?}");
    }

    #[test]
    fn server_demands_client_cert() {
        let (_, server, _, roots) = setup();
        let mut rng = Rng::new(1);
        // Client has no credentials but server requires them.
        let (mut c, hello) =
            TlsSession::client(TlsConfig::client(Mode::AuthOnly, roots.clone()), &mut rng).unwrap();
        let mut s = TlsSession::server(TlsConfig::mutual(Mode::AuthOnly, server, roots));
        let out = s.on_message(&hello, &mut rng).unwrap();
        assert_eq!(
            c.on_message(&out.replies[0], &mut rng).unwrap_err(),
            TlsError::ClientCertRequired
        );
    }

    #[test]
    fn mode_mismatch_rejected() {
        let (_, server, _, roots) = setup();
        let mut rng = Rng::new(1);
        let (_, hello) =
            TlsSession::client(TlsConfig::client(Mode::AuthOnly, roots.clone()), &mut rng).unwrap();
        let mut s = TlsSession::server(TlsConfig::server_auth(Mode::AuthEncrypt, server, roots));
        assert_eq!(
            s.on_message(&hello, &mut rng).unwrap_err(),
            TlsError::ModeMismatch
        );
    }

    #[test]
    fn data_before_establishment_rejected() {
        let (_, _, _, roots) = setup();
        let mut rng = Rng::new(1);
        let (mut c, _hello) =
            TlsSession::client(TlsConfig::client(Mode::AuthOnly, roots), &mut rng).unwrap();
        assert!(matches!(c.seal(b"x"), Err(TlsError::BadState(_))));
    }

    #[test]
    fn garbage_handshake_rejected() {
        let (_, server, _, roots) = setup();
        let mut rng = Rng::new(1);
        let mut s = TlsSession::server(TlsConfig::server_auth(Mode::AuthOnly, server, roots));
        assert!(s.on_message(&[], &mut rng).is_err());
        assert!(s.on_message(&[0xFF, 0x00], &mut rng).is_err());
        assert!(s.on_message(&[TAG_SERVER_HELLO, 0], &mut rng).is_err());
    }

    #[test]
    fn costs_accumulate_and_drain() {
        let (_, server, client, roots) = setup();
        let (mut c, mut s) = handshake(
            TlsConfig::mutual(Mode::AuthEncrypt, client, roots.clone()),
            TlsConfig::mutual(Mode::AuthEncrypt, server, roots),
        )
        .unwrap();
        // Handshake charged public-key costs on both sides.
        assert!(c.take_cost() >= SimDuration::from_millis(10));
        assert!(s.take_cost() >= SimDuration::from_millis(10));
        // Draining resets the accumulator.
        assert_eq!(c.take_cost(), SimDuration::ZERO);
        // Record costs scale with payload size.
        let small = c.seal(&[0u8; 100]).unwrap();
        let cost_small = c.take_cost();
        let big = c.seal(&vec![0u8; 100_000]).unwrap();
        let cost_big = c.take_cost();
        assert!(cost_big > cost_small * 100);
        let mut rng = Rng::new(0);
        s.on_message(&small, &mut rng).unwrap();
        s.on_message(&big, &mut rng).unwrap();
        assert!(s.stats().bytes_encrypted >= 100_100);
    }

    #[test]
    fn auth_only_cheaper_than_auth_encrypt() {
        let (_, server, client, roots) = setup();
        let payload = vec![0u8; 1 << 20];
        let cost = |mode: Mode| {
            let (mut c, _) = handshake(
                TlsConfig::mutual(mode, client.clone(), roots.clone()),
                TlsConfig::mutual(mode, server.clone(), roots.clone()),
            )
            .unwrap();
            let _ = c.take_cost();
            let _ = c.seal(&payload).unwrap();
            c.take_cost()
        };
        let auth = cost(Mode::AuthOnly);
        let enc = cost(Mode::AuthEncrypt);
        assert!(
            enc.as_nanos() > auth.as_nanos() * 2,
            "auth {auth}, enc {enc}"
        );
    }
}
