//! Structured per-object operation traces, layered over [`TraceLog`].
//!
//! The schedule-fuzzing auditor replays a run's operation history
//! against a global specification of the replication protocol. Rather
//! than invent a second logging channel, the history rides in the
//! existing trace as single-line records under one component
//! ([`COMPONENT`]): the emitting layers (the replication runtime for
//! server-side serve/commit events, the workload driver for client-side
//! invocation begin/end events) render an [`OpRecord`] to its line
//! format, and the auditor parses the lines back. Both directions live
//! in this module so the format has exactly one home; the round-trip
//! `parse(render(r)) == r` is part of the test suite.
//!
//! The line format is `<verb> k=v k=v ...` with space-separated fields
//! in a fixed order. Values never contain spaces (write tags are
//! caller-chosen and must respect this). Unknown verbs or malformed
//! lines parse to `None`, so foreign entries sharing the component are
//! skipped rather than tripping the auditor.

use crate::time::SimTime;
use crate::trace::{TraceLevel, TraceLog};

/// The trace component all op-trace records are logged under.
pub const COMPONENT: &str = "optrace";

/// The role a representative played when it served or committed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Write-serializing master replica.
    Master,
    /// Consistent slave replica.
    Slave,
    /// TTL-based cache.
    Cache,
    /// Forwarding-only proxy.
    Proxy,
    /// Single standalone copy.
    Standalone,
}

impl ReplicaRole {
    /// Wire name of the role.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaRole::Master => "master",
            ReplicaRole::Slave => "slave",
            ReplicaRole::Cache => "cache",
            ReplicaRole::Proxy => "proxy",
            ReplicaRole::Standalone => "standalone",
        }
    }

    fn parse(s: &str) -> Option<ReplicaRole> {
        Some(match s {
            "master" => ReplicaRole::Master,
            "slave" => ReplicaRole::Slave,
            "cache" => ReplicaRole::Cache,
            "proxy" => ReplicaRole::Proxy,
            "standalone" => ReplicaRole::Standalone,
            _ => return None,
        })
    }
}

/// Whether a client operation reads or writes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Read-only invocation.
    Read,
    /// State-changing invocation.
    Write,
}

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }

    fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            _ => return None,
        })
    }
}

/// One op-trace record. `host`/`port` pairs stand in for endpoints
/// (this crate sits below the network layer and has no endpoint type).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpRecord {
    /// A representative answered one dispatch that contained reads.
    Serve {
        /// Object the reads were served against.
        oid: u128,
        /// Serving host.
        host: u32,
        /// Serving GRP port.
        port: u16,
        /// Role of the representative at serve time.
        role: ReplicaRole,
        /// Local version the reads observed.
        version: u64,
        /// Epoch (version lineage) the reads observed.
        epoch: u64,
        /// Globally latest committed version at serve time (the
        /// freshness oracle's view).
        oracle: u64,
        /// Oracle-fresh reads in the dispatch.
        fresh: u64,
        /// Oracle-stale reads in the dispatch.
        stale: u64,
    },
    /// A write-serializing representative committed a new version.
    Commit {
        /// Object written.
        oid: u128,
        /// Committing host.
        host: u32,
        /// Committing GRP port.
        port: u16,
        /// Role of the representative at commit time.
        role: ReplicaRole,
        /// The version the commit produced.
        version: u64,
        /// Epoch the version belongs to.
        epoch: u64,
    },
    /// A client session issued an invocation.
    Begin {
        /// Session identifier (driver-chosen, unique per run).
        session: u32,
        /// Per-session operation sequence number.
        op: u64,
        /// Target object.
        oid: u128,
        /// Read or write.
        kind: OpKind,
        /// Caller tag: for writes, the identity of the written unit
        /// (e.g. the file name a listing would show); empty for reads.
        /// Must not contain spaces.
        tag: String,
    },
    /// A client session observed an invocation's completion.
    End {
        /// Session identifier (matches the [`OpRecord::Begin`]).
        session: u32,
        /// Per-session operation sequence number.
        op: u64,
        /// Whether the invocation succeeded.
        ok: bool,
        /// For successful listing reads: number of units observed;
        /// `-1` when not applicable.
        listing: i64,
        /// For successful listing reads: how many of this session's own
        /// committed writes the listing contained; `-1` when not
        /// applicable.
        own: i64,
    },
}

impl OpRecord {
    /// Renders the record to its single-line wire form.
    pub fn render(&self) -> String {
        match self {
            OpRecord::Serve {
                oid,
                host,
                port,
                role,
                version,
                epoch,
                oracle,
                fresh,
                stale,
            } => format!(
                "serve oid={oid:032x} at=h{host}:{port} role={} v={version} e={epoch} \
                 oracle={oracle} fresh={fresh} stale={stale}",
                role.name()
            ),
            OpRecord::Commit {
                oid,
                host,
                port,
                role,
                version,
                epoch,
            } => format!(
                "commit oid={oid:032x} at=h{host}:{port} role={} v={version} e={epoch}",
                role.name()
            ),
            OpRecord::Begin {
                session,
                op,
                oid,
                kind,
                tag,
            } => {
                debug_assert!(!tag.contains(' '), "op tag must not contain spaces");
                format!(
                    "begin session={session} op={op} oid={oid:032x} kind={} tag={tag}",
                    kind.name()
                )
            }
            OpRecord::End {
                session,
                op,
                ok,
                listing,
                own,
            } => format!("end session={session} op={op} ok={ok} listing={listing} own={own}"),
        }
    }

    /// Parses a line produced by [`OpRecord::render`]. Returns `None`
    /// for anything else.
    pub fn parse(line: &str) -> Option<OpRecord> {
        let mut parts = line.split(' ');
        let verb = parts.next()?;
        let mut f = Fields::new(parts);
        Some(match verb {
            "serve" => OpRecord::Serve {
                oid: f.hex_u128("oid")?,
                host: f.host("at")?.0,
                port: f.last_endpoint.1,
                role: ReplicaRole::parse(f.str("role")?)?,
                version: f.num("v")?,
                epoch: f.num("e")?,
                oracle: f.num("oracle")?,
                fresh: f.num("fresh")?,
                stale: f.num("stale")?,
            },
            "commit" => OpRecord::Commit {
                oid: f.hex_u128("oid")?,
                host: f.host("at")?.0,
                port: f.last_endpoint.1,
                role: ReplicaRole::parse(f.str("role")?)?,
                version: f.num("v")?,
                epoch: f.num("e")?,
            },
            "begin" => OpRecord::Begin {
                session: f.num("session")? as u32,
                op: f.num("op")?,
                oid: f.hex_u128("oid")?,
                kind: OpKind::parse(f.str("kind")?)?,
                tag: f.str("tag").unwrap_or("").to_owned(),
            },
            "end" => OpRecord::End {
                session: f.num("session")? as u32,
                op: f.num("op")?,
                ok: match f.str("ok")? {
                    "true" => true,
                    "false" => false,
                    _ => return None,
                },
                listing: f.signed("listing")?,
                own: f.signed("own")?,
            },
            _ => return None,
        })
    }
}

/// Sequential field reader over `k=v` tokens in declaration order.
struct Fields<'a, I: Iterator<Item = &'a str>> {
    parts: I,
    /// `(host, port)` of the most recent `at=h<host>:<port>` field;
    /// lets the builder read host and port as two struct fields.
    last_endpoint: (u32, u16),
}

impl<'a, I: Iterator<Item = &'a str>> Fields<'a, I> {
    fn new(parts: I) -> Self {
        Fields {
            parts,
            last_endpoint: (0, 0),
        }
    }

    fn str(&mut self, key: &str) -> Option<&'a str> {
        let token = self.parts.next()?;
        let (k, v) = token.split_once('=')?;
        (k == key).then_some(v)
    }

    fn num(&mut self, key: &str) -> Option<u64> {
        self.str(key)?.parse().ok()
    }

    fn signed(&mut self, key: &str) -> Option<i64> {
        self.str(key)?.parse().ok()
    }

    fn hex_u128(&mut self, key: &str) -> Option<u128> {
        u128::from_str_radix(self.str(key)?, 16).ok()
    }

    fn host(&mut self, key: &str) -> Option<(u32, u16)> {
        let v = self.str(key)?.strip_prefix('h')?;
        let (h, p) = v.split_once(':')?;
        self.last_endpoint = (h.parse().ok()?, p.parse().ok()?);
        Some(self.last_endpoint)
    }
}

/// Appends `record` to `trace` at `time` (no-op on a disabled log).
pub fn emit(trace: &mut TraceLog, time: SimTime, record: &OpRecord) {
    if trace.enabled(TraceLevel::Info) {
        trace.log(time, TraceLevel::Info, COMPONENT, record.render());
    }
}

/// Extracts every op-trace record from `trace`, in log order, paired
/// with its virtual timestamp. Malformed or foreign lines under the
/// component are skipped.
pub fn extract(trace: &TraceLog) -> Vec<(SimTime, OpRecord)> {
    trace
        .entries()
        .iter()
        .filter(|e| e.component == COMPONENT)
        .filter_map(|e| OpRecord::parse(&e.message).map(|r| (e.time, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<OpRecord> {
        vec![
            OpRecord::Serve {
                oid: 0xdead_beef,
                host: 7,
                port: 7007,
                role: ReplicaRole::Slave,
                version: 12,
                epoch: 3,
                oracle: 14,
                fresh: 0,
                stale: 2,
            },
            OpRecord::Commit {
                oid: u128::MAX,
                host: 0,
                port: 1,
                role: ReplicaRole::Master,
                version: 1,
                epoch: 0,
            },
            OpRecord::Begin {
                session: 3,
                op: 44,
                oid: 5,
                kind: OpKind::Write,
                tag: "w-s3-44".into(),
            },
            OpRecord::End {
                session: 3,
                op: 44,
                ok: true,
                listing: -1,
                own: -1,
            },
            OpRecord::End {
                session: 9,
                op: 2,
                ok: false,
                listing: 17,
                own: 4,
            },
        ]
    }

    #[test]
    fn render_parse_round_trip() {
        for r in samples() {
            let line = r.render();
            assert_eq!(OpRecord::parse(&line).as_ref(), Some(&r), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for line in [
            "",
            "serve",
            "serve oid=xyz",
            "frob oid=00000000000000000000000000000005",
            "end session=1 op=2 ok=maybe listing=0 own=0",
            "commit oid=5 at=h1:2 role=viceroy v=1 e=0",
            "serve at=h1:2 oid=5 role=slave v=1 e=0 oracle=1 fresh=1 stale=0",
        ] {
            assert_eq!(OpRecord::parse(line), None, "line: {line}");
        }
    }

    #[test]
    fn emit_and_extract() {
        let mut log = TraceLog::new(TraceLevel::Info);
        let t = SimTime::from_millis(5);
        let rec = samples().remove(0);
        emit(&mut log, t, &rec);
        log.log(t, TraceLevel::Info, COMPONENT, "not a record".into());
        log.log(t, TraceLevel::Info, "other", "serve oid=5".into());
        let out = extract(&log);
        assert_eq!(out, vec![(t, rec)]);
    }

    #[test]
    fn emit_to_disabled_log_is_a_noop() {
        let mut log = TraceLog::disabled();
        emit(&mut log, SimTime::ZERO, &samples()[0]);
        assert!(log.entries().is_empty());
    }
}
