//! The GLS domain hierarchy and its deployment onto hosts.
//!
//! The paper (§3.5, Figure 2) organizes the Internet into a hierarchy of
//! domains — leaf domains around moderately-sized networks, recursively
//! combined up to a root spanning everything — with a directory node per
//! domain. Higher-level nodes are partitioned into *subnodes*, each
//! responsible for a slice of the object-identifier space, so the root
//! does not become a bottleneck.
//!
//! [`GlsDeployment::plan`] derives the domain tree from the network
//! [`Topology`] (site → country → region → root) and assigns each
//! directory subnode to a host inside its own domain — spread across the
//! domain's children so that partitioning actually buys independent
//! capacity.

use std::sync::Arc;

use globe_net::{Endpoint, HostId, SiteId, Topology, Transport};
use globe_sim::SimDuration;

use crate::node::DirectoryNode;
use crate::types::{Level, ObjectId};

/// Identifies a GLS domain (an index into the deployment's domain table).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u32);

/// Base port for directory-node services. Each `(domain, subnode)` pair
/// gets `GLS_PORT_BASE + domain * PORTS_PER_DOMAIN + subnode`, keeping
/// every directory node addressable even when several land on one host.
pub const GLS_PORT_BASE: u16 = 10_000;
/// Maximum subnodes per domain (port-space stride).
pub const PORTS_PER_DOMAIN: u16 = 16;

/// Per-level GLS configuration.
#[derive(Clone, Debug)]
pub struct GlsConfig {
    /// Number of subnodes per domain, indexed by [`Level::index`].
    /// The paper partitions only the higher-level nodes; the default
    /// keeps one subnode everywhere (partitioning experiments override
    /// the root entry).
    pub subnodes: [u32; 4],
    /// Whether directory nodes persist their tables to stable storage
    /// (enables crash recovery, costs per-mutation writes).
    pub persist: bool,
    /// Soft-state lease on contact addresses: registrations expire
    /// unless re-registered, so addresses of crashed servers age out
    /// (`None` = permanent registrations). The paper leaves fault
    /// tolerance open (§6.1); leases are the Globe project's own later
    /// answer.
    pub address_ttl: Option<SimDuration>,
}

impl Default for GlsConfig {
    fn default() -> Self {
        GlsConfig {
            subnodes: [1, 1, 1, 1],
            persist: false,
            address_ttl: None,
        }
    }
}

impl GlsConfig {
    /// Overrides the root-domain subnode count.
    pub fn with_root_subnodes(mut self, k: u32) -> Self {
        assert!(k >= 1 && k <= PORTS_PER_DOMAIN as u32, "1..=16 subnodes");
        self.subnodes[Level::Root.index()] = k;
        self
    }

    /// Enables stable-storage persistence of directory tables.
    pub fn with_persistence(mut self) -> Self {
        self.persist = true;
        self
    }

    /// Enables soft-state address leases with the given TTL.
    pub fn with_address_ttl(mut self, ttl: SimDuration) -> Self {
        self.address_ttl = Some(ttl);
        self
    }
}

#[derive(Clone, Debug)]
struct DomainInfo {
    level: Level,
    parent: Option<DomainId>,
    name: String,
    /// One endpoint per subnode.
    subnodes: Vec<Endpoint>,
}

/// The planned GLS: domain tree plus subnode placement.
///
/// Shared immutably (via [`Arc`]) between every directory node and every
/// GLS client, standing in for the static configuration a real
/// deployment would distribute.
#[derive(Debug)]
pub struct GlsDeployment {
    domains: Vec<DomainInfo>,
    /// Leaf (site-level) domain of each topology site.
    site_domain: Vec<DomainId>,
    root: DomainId,
    persist: bool,
    address_ttl: Option<SimDuration>,
}

impl GlsDeployment {
    /// Plans a deployment over `topo`: one domain per site, country and
    /// region plus a root, with `cfg.subnodes[level]` directory subnodes
    /// each, placed on hosts within their own domain.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn plan(topo: &Topology, cfg: &GlsConfig) -> Arc<GlsDeployment> {
        assert!(topo.num_hosts() > 0, "topology has no hosts");
        let mut domains = Vec::new();

        // Representative host of a site: its first host. Sites without
        // hosts fall back to the first host of the country (rare, only
        // in hand-built topologies).
        let site_rep = |site: SiteId| -> HostId {
            topo.hosts_in_site(site)
                .first()
                .copied()
                .unwrap_or(HostId(0))
        };

        // Root domain is index 0; regions, countries, sites follow.
        let root_id = DomainId(0);
        domains.push(DomainInfo {
            level: Level::Root,
            parent: None,
            name: "root".to_owned(),
            subnodes: Vec::new(),
        });

        let mut region_dom = Vec::with_capacity(topo.num_regions());
        for r in topo.regions() {
            let id = DomainId(domains.len() as u32);
            domains.push(DomainInfo {
                level: Level::Region,
                parent: Some(root_id),
                name: topo.region_name(r).to_owned(),
                subnodes: Vec::new(),
            });
            region_dom.push(id);
        }
        let mut country_dom = Vec::with_capacity(topo.num_countries());
        for c in topo.countries() {
            let id = DomainId(domains.len() as u32);
            domains.push(DomainInfo {
                level: Level::Country,
                parent: Some(region_dom[topo.region_of(c).0 as usize]),
                name: topo.country_name(c).to_owned(),
                subnodes: Vec::new(),
            });
            country_dom.push(id);
        }
        let mut site_domain = Vec::with_capacity(topo.num_sites());
        for s in topo.sites() {
            let id = DomainId(domains.len() as u32);
            domains.push(DomainInfo {
                level: Level::Site,
                parent: Some(country_dom[topo.country_of(s).0 as usize]),
                name: topo.site_name(s).to_owned(),
                subnodes: Vec::new(),
            });
            site_domain.push(id);
        }

        // Candidate hosts per domain, in a stable order that spreads
        // subnodes across the domain's children.
        for (idx, dom) in domains.iter_mut().enumerate() {
            let did = DomainId(idx as u32);
            let k = cfg.subnodes[dom.level.index()].max(1);
            let mut candidates: Vec<HostId> = match dom.level {
                Level::Site => {
                    let site = site_domain
                        .iter()
                        .position(|&d| d == did)
                        .map(|i| SiteId(i as u32))
                        .expect("site domain maps to a site");
                    topo.hosts_in_site(site).to_vec()
                }
                Level::Country => {
                    let country = country_dom
                        .iter()
                        .position(|&d| d == did)
                        .expect("country domain maps to a country");
                    topo.sites()
                        .filter(|&s| topo.country_of(s).0 == country as u32)
                        .map(site_rep)
                        .collect()
                }
                Level::Region => {
                    let region = region_dom
                        .iter()
                        .position(|&d| d == did)
                        .expect("region domain maps to a region");
                    topo.countries()
                        .filter(|&c| topo.region_of(c).0 == region as u32)
                        .flat_map(|c| {
                            topo.sites()
                                .filter(move |&s| topo.country_of(s) == c)
                                .take(1)
                        })
                        .map(site_rep)
                        .collect()
                }
                Level::Root => topo
                    .regions()
                    .flat_map(|r| {
                        topo.countries()
                            .filter(move |&c| topo.region_of(c) == r)
                            .take(1)
                    })
                    .flat_map(|c| {
                        topo.sites()
                            .filter(move |&s| topo.country_of(s) == c)
                            .take(1)
                    })
                    .map(site_rep)
                    .collect(),
            };
            if candidates.is_empty() {
                candidates.push(HostId(0));
            }
            let base = GLS_PORT_BASE + (idx as u16) * PORTS_PER_DOMAIN;
            dom.subnodes = (0..k)
                .map(|i| Endpoint::new(candidates[i as usize % candidates.len()], base + i as u16))
                .collect();
        }

        Arc::new(GlsDeployment {
            domains,
            site_domain,
            root: root_id,
            persist: cfg.persist,
            address_ttl: cfg.address_ttl,
        })
    }

    /// Installs one [`DirectoryNode`] service per subnode into the
    /// transport (the simulated world or a real-socket process).
    pub fn install(self: &Arc<Self>, world: &mut dyn Transport) {
        for (idx, dom) in self.domains.iter().enumerate() {
            for (sub, ep) in dom.subnodes.iter().enumerate() {
                world.add_service(
                    ep.host,
                    ep.port,
                    DirectoryNode::new(Arc::clone(self), DomainId(idx as u32), sub as u32),
                );
            }
        }
    }

    /// The root domain.
    pub fn root(&self) -> DomainId {
        self.root
    }

    /// The site-level (leaf) domain containing `host`.
    pub fn leaf_domain(&self, topo: &Topology, host: HostId) -> DomainId {
        self.site_domain[topo.site_of(host).0 as usize]
    }

    /// The parent domain, or `None` for the root.
    pub fn parent(&self, d: DomainId) -> Option<DomainId> {
        self.domains[d.0 as usize].parent
    }

    /// The domain's level.
    pub fn level(&self, d: DomainId) -> Level {
        self.domains[d.0 as usize].level
    }

    /// The domain's display name.
    pub fn name(&self, d: DomainId) -> &str {
        &self.domains[d.0 as usize].name
    }

    /// The directory subnode responsible for `oid` within domain `d`
    /// (the paper's hashing technique, §3.5).
    pub fn route(&self, d: DomainId, oid: ObjectId) -> Endpoint {
        let subs = &self.domains[d.0 as usize].subnodes;
        subs[oid.subnode_index(subs.len() as u32) as usize]
    }

    /// All subnode endpoints of a domain.
    pub fn subnodes(&self, d: DomainId) -> &[Endpoint] {
        &self.domains[d.0 as usize].subnodes
    }

    /// Number of domains (including the root).
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Iterates all domain ids.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> {
        (0..self.domains.len() as u32).map(DomainId)
    }

    /// The ancestor of `d` at `level` (or `d` itself if already there).
    ///
    /// # Panics
    ///
    /// Panics if `level` is below `d`'s level (no such ancestor).
    pub fn ancestor_at(&self, d: DomainId, level: Level) -> DomainId {
        let mut cur = d;
        loop {
            let l = self.level(cur);
            if l == level {
                return cur;
            }
            assert!(
                l < level,
                "domain {cur:?} at {l:?} has no ancestor at lower level {level:?}"
            );
            cur = self.parent(cur).expect("non-root domains have parents");
        }
    }

    /// Whether directory nodes persist their tables.
    pub fn persist(&self) -> bool {
        self.persist
    }

    /// The soft-state address lease, if enabled.
    pub fn address_ttl(&self) -> Option<SimDuration> {
        self.address_ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globe_sim::Rng;

    fn topo() -> Topology {
        Topology::grid(2, 2, 2, 2)
    }

    #[test]
    fn domain_counts() {
        let t = topo();
        let d = GlsDeployment::plan(&t, &GlsConfig::default());
        // 1 root + 2 regions + 4 countries + 8 sites.
        assert_eq!(d.num_domains(), 15);
        assert_eq!(d.level(d.root()), Level::Root);
        assert!(d.parent(d.root()).is_none());
    }

    #[test]
    fn leaf_chain_reaches_root() {
        let t = topo();
        let d = GlsDeployment::plan(&t, &GlsConfig::default());
        for h in t.hosts() {
            let mut dom = d.leaf_domain(&t, h);
            assert_eq!(d.level(dom), Level::Site);
            let mut levels = vec![d.level(dom)];
            while let Some(p) = d.parent(dom) {
                dom = p;
                levels.push(d.level(dom));
            }
            assert_eq!(
                levels,
                vec![Level::Site, Level::Country, Level::Region, Level::Root]
            );
            assert_eq!(dom, d.root());
        }
    }

    #[test]
    fn subnodes_live_inside_their_domain() {
        let t = topo();
        let cfg = GlsConfig::default().with_root_subnodes(4);
        let d = GlsDeployment::plan(&t, &cfg);
        for dom in d.domain_ids() {
            for ep in d.subnodes(dom) {
                // A directory node's host must be inside the domain it
                // serves: check via the leaf-domain ancestor chain.
                let leaf = d.leaf_domain(&t, ep.host);
                let anc = d.ancestor_at(leaf, d.level(dom));
                assert_eq!(anc, dom, "node for {:?} placed outside", d.name(dom));
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let t = topo();
        let cfg = GlsConfig::default().with_root_subnodes(3);
        let d = GlsDeployment::plan(&t, &cfg);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let oid = ObjectId::generate(&mut rng);
            let a = d.route(d.root(), oid);
            let b = d.route(d.root(), oid);
            assert_eq!(a, b);
            assert!(d.subnodes(d.root()).contains(&a));
        }
    }

    #[test]
    fn root_subnodes_spread_over_hosts() {
        let t = topo();
        let cfg = GlsConfig::default().with_root_subnodes(2);
        let d = GlsDeployment::plan(&t, &cfg);
        let subs = d.subnodes(d.root());
        assert_eq!(subs.len(), 2);
        // With 2 regions available the two root subnodes must not share
        // a host.
        assert_ne!(subs[0].host, subs[1].host);
    }

    #[test]
    fn ancestor_at_identity_and_climb() {
        let t = topo();
        let d = GlsDeployment::plan(&t, &GlsConfig::default());
        let leaf = d.leaf_domain(&t, HostId(0));
        assert_eq!(d.ancestor_at(leaf, Level::Site), leaf);
        assert_eq!(d.ancestor_at(leaf, Level::Root), d.root());
        assert_eq!(d.level(d.ancestor_at(leaf, Level::Country)), Level::Country);
    }

    #[test]
    fn unique_ports_per_subnode() {
        let t = topo();
        let cfg = GlsConfig {
            subnodes: [2, 2, 2, 4],
            persist: false,
            address_ttl: None,
        };
        let d = GlsDeployment::plan(&t, &cfg);
        let mut seen = std::collections::HashSet::new();
        for dom in d.domain_ids() {
            for ep in d.subnodes(dom) {
                assert!(seen.insert(*ep), "duplicate endpoint {ep}");
            }
        }
    }
}
