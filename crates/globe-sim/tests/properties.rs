//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;

use globe_sim::{EventQueue, Histogram, Rng, SimDuration, SimTime};

proptest! {
    /// The queue pops every scheduled event in nondecreasing time order,
    /// with FIFO order among equal timestamps.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((t, (orig, idx))) = q.pop() {
            prop_assert_eq!(t, SimTime::from_micros(orig));
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Histogram quantiles always lie within [min, max] and are
    /// monotone in q.
    #[test]
    fn histogram_quantiles_are_bounded_and_monotone(
        values in prop::collection::vec(0u64..10_000_000, 1..500)
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().expect("nonempty");
        let hi = *values.iter().max().expect("nonempty");
        let mut prev = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= lo && q <= hi, "q out of range: {q} not in [{lo},{hi}]");
            prop_assert!(q >= prev, "quantiles not monotone");
            prev = q;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
    }

    /// Histogram merge is equivalent to recording the union.
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0u64..100_000, 0..100),
        b in prop::collection::vec(0u64..100_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        let mut hu = Histogram::new();
        for &v in a.iter().chain(&b) { hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.sum(), hu.sum());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for i in 0..=4 {
            prop_assert_eq!(ha.quantile(i as f64 / 4.0), hu.quantile(i as f64 / 4.0));
        }
    }

    /// gen_range stays in range and hits both halves of the interval.
    #[test]
    fn rng_range_bounds(seed: u64, lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// Forked streams are independent of sibling draw order.
    #[test]
    fn rng_fork_is_order_independent(seed: u64) {
        let mut parent1 = Rng::new(seed);
        let mut a1 = parent1.fork(1);
        let mut b1 = parent1.fork(2);
        let va1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let vb1: Vec<u64> = (0..8).map(|_| b1.next_u64()).collect();

        let mut parent2 = Rng::new(seed);
        let mut a2 = parent2.fork(1);
        let mut b2 = parent2.fork(2);
        // Draw from b first this time.
        let vb2: Vec<u64> = (0..8).map(|_| b2.next_u64()).collect();
        let va2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();

        prop_assert_eq!(va1, va2);
        prop_assert_eq!(vb1, vb2);
    }

    /// Duration arithmetic respects the nanosecond representation.
    #[test]
    fn duration_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        let t = SimTime::from_nanos(a) + db;
        prop_assert_eq!(t.as_nanos(), a + b);
    }
}
