//! `gdn-node` — a real-socket GDN process.
//!
//! Boots the GOS/GLS/GNS/HTTPD share of one topology host over a
//! [`TcpTransport`], from a config file shared by every process of the
//! deployment (see [`config`]). The protocol stack is exactly the code
//! the simulated experiments run; only the substrate differs.
//!
//! Subcommands:
//!
//! - `serve <config> <host> [secs]` — run one node (forever, or for
//!   `secs` seconds, printing its metric counters to stderr on exit).
//!   Prints `READY` once its services are listening.
//! - `publish [--chunked] <config> <driver-host> <name> <content>
//!   <gos-host>...` — drive a moderator publish of a one-file package
//!   replicated on the given object servers (first is the master);
//!   prints the object id. With `--chunked` the replicas propagate by
//!   content-addressed chunk announcements instead of full states.
//! - `addfile <config> <driver-host> <oid> <file> <content> [bytes]` —
//!   add or replace one file in a published package (the oid a publish
//!   printed), with `content` cycled out to `bytes` length when given.
//! - `get <config> <client-host> <server-host> <path> [expect]` — fetch
//!   `path` from a node's HTTPD with a plain TCP client; prints the
//!   body, exits non-zero unless the status is 200 (and the body
//!   contains `expect`, when given).

mod config;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gdn_core::{
    GdnDeployment, GdnOptions, HttpRequest, HttpResponse, ModEvent, ModOp, ObjectId, Scenario,
};
use globe_net::tcp::{encode_source, frame};
use globe_net::{ports, Endpoint, HostId, TcpTransport, Transport};
use globe_rts::PropagationMode;
use globe_sim::{SimDuration, TraceLevel, TraceLog};

use config::NodeConfig;

const USAGE: &str = "\
usage: gdn-node serve   <config> <host> [secs]
       gdn-node publish [--chunked] <config> <driver-host> <name> <content> <gos-host>...
       gdn-node addfile <config> <driver-host> <oid> <file> <content> [bytes]
       gdn-node get     <config> <client-host> <server-host> <path> [expect]
hosts may be numeric ids or names from the config file";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("publish") => cmd_publish(&args[1..]),
        Some("addfile") => cmd_addfile(&args[1..]),
        Some("get") => cmd_get(&args[1..]),
        _ => Err(USAGE.to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gdn-node: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the deployment options a config implies. Every process must
/// derive identical options or the (pure) planners would disagree on
/// placement and credentials.
fn options_for(cfg: &NodeConfig) -> GdnOptions {
    let mut options = GdnOptions {
        tls_mode: cfg.mode,
        cache_ttl: SimDuration::from_secs(cfg.cache_ttl_secs),
        seed: cfg.seed,
        gos_hosts: cfg.gos_hosts.clone(),
        ..GdnOptions::default()
    };
    if let Some(n) = cfg.gns_secondaries {
        options.gns.gdn_secondaries = n;
    }
    if let Some(s) = cfg.gns_batch_secs {
        options.gns.batch_interval = SimDuration::from_secs(s);
    }
    if let Some(t) = cfg.gns_negative_ttl {
        options.gns.negative_ttl = t;
    }
    options
}

fn transport_for(cfg: &NodeConfig, local: HostId) -> TcpTransport {
    TcpTransport::new(cfg.topo.clone(), cfg.seed, cfg.addrs.clone(), [local])
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let [cfg_path, host, rest @ ..] = args else {
        return Err(USAGE.to_owned());
    };
    let secs: Option<u64> = match rest {
        [] => None,
        [s] => Some(s.parse().map_err(|_| format!("bad seconds {s:?}"))?),
        _ => return Err(USAGE.to_owned()),
    };
    let cfg = NodeConfig::load(Path::new(cfg_path))?;
    let host = cfg.resolve_host(host)?;

    let mut transport = transport_for(&cfg, host);
    // GDN_NODE_TRACE=info|debug streams protocol traces to stderr.
    let tracing = match std::env::var("GDN_NODE_TRACE").as_deref() {
        Ok("info") => Some(TraceLevel::Info),
        Ok("debug") => Some(TraceLevel::Debug),
        _ => None,
    };
    if let Some(level) = tracing {
        transport.set_trace(TraceLog::new(level));
    }
    let gdn = GdnDeployment::install(&mut transport, options_for(&cfg));
    transport.start();
    let addr = &cfg.addrs[&host.0];
    println!(
        "serving host {} ({}) at {}, ports {}..; {} object server(s), {} httpd(s) deployment-wide",
        host.0,
        cfg.topo.host_name(host),
        addr.socket_addr(0),
        addr.socket_addr(0).port(),
        gdn.gos_endpoints.len(),
        gdn.httpd_endpoints.len(),
    );
    println!("READY");
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let started = Instant::now();
    loop {
        transport.run_for(SimDuration::from_millis(250));
        if tracing.is_some() {
            for e in transport.trace_mut().entries() {
                eprintln!("{e}");
            }
            transport.trace_mut().clear();
        }
        if let Some(secs) = secs {
            if started.elapsed() >= Duration::from_secs(secs) {
                for (k, v) in transport.metrics().counters() {
                    eprintln!("metric {k} = {v}");
                }
                return Ok(());
            }
        }
    }
}

/// Drives one moderator operation to completion over the transport and
/// returns its event. The moderator needs the serve processes up:
/// binds, replica creation and the name registration all cross real
/// sockets.
fn run_mod_op(cfg: &NodeConfig, driver: HostId, op: ModOp) -> Result<ModEvent, String> {
    let mut transport = transport_for(cfg, driver);
    let gdn = GdnDeployment::install(&mut transport, options_for(cfg));
    let tool = gdn.moderator_tool(transport.topology(), driver, "gdn-node", vec![op]);
    (&mut transport as &mut dyn Transport).add_service(driver, ports::DRIVER, tool);
    transport.start();
    transport.run_while(Duration::from_secs(60), |t| {
        t.service::<gdn_core::ModeratorTool>(driver, ports::DRIVER)
            .is_some_and(|tool| tool.results.is_empty())
    });
    let tool = transport
        .service::<gdn_core::ModeratorTool>(driver, ports::DRIVER)
        .expect("moderator tool installed above");
    tool.results
        .first()
        .cloned()
        .ok_or_else(|| "moderator operation timed out after 60s".to_owned())
}

fn cmd_publish(args: &[String]) -> Result<(), String> {
    let (chunked, args) = match args.first().map(String::as_str) {
        Some("--chunked") => (true, &args[1..]),
        _ => (false, args),
    };
    let [cfg_path, driver, name, content, gos @ ..] = args else {
        return Err(USAGE.to_owned());
    };
    if gos.is_empty() {
        return Err(USAGE.to_owned());
    }
    let cfg = NodeConfig::load(Path::new(cfg_path))?;
    let driver = cfg.resolve_host(driver)?;
    let replicas: Vec<Endpoint> = gos
        .iter()
        .map(|g| {
            cfg.resolve_host(g)
                .map(|h| Endpoint::new(h, ports::GOS_CTL))
        })
        .collect::<Result<_, _>>()?;

    let mode = if chunked {
        PropagationMode::PushChunks
    } else {
        PropagationMode::PushState
    };
    let scenario = if replicas.len() == 1 {
        Scenario::single(replicas[0])
    } else {
        Scenario::master_slave(replicas, mode)
    };
    let op = ModOp::Publish {
        name: name.clone(),
        description: format!("{name} (published by gdn-node)"),
        files: vec![("index.txt".to_owned(), content.clone().into_bytes())],
        scenario,
    };
    match run_mod_op(&cfg, driver, op)? {
        ModEvent::PublishDone {
            result: Ok(oid), ..
        } => {
            println!("published {name} as {oid}");
            Ok(())
        }
        ModEvent::PublishDone { result: Err(e), .. } => Err(format!("publish failed: {e}")),
        other => Err(format!("unexpected moderator event: {other:?}")),
    }
}

fn cmd_addfile(args: &[String]) -> Result<(), String> {
    let [cfg_path, driver, oid, file, content, rest @ ..] = args else {
        return Err(USAGE.to_owned());
    };
    let size: Option<usize> = match rest {
        [] => None,
        [s] => Some(s.parse().map_err(|_| format!("bad byte count {s:?}"))?),
        _ => return Err(USAGE.to_owned()),
    };
    let cfg = NodeConfig::load(Path::new(cfg_path))?;
    let driver = cfg.resolve_host(driver)?;
    let oid = u128::from_str_radix(oid, 16)
        .map(ObjectId)
        .map_err(|_| format!("bad object id {oid:?} (expect the hex a publish printed)"))?;
    if content.is_empty() {
        return Err("content must be non-empty".to_owned());
    }
    let mut data = Vec::new();
    let target = size.unwrap_or(content.len());
    while data.len() < target {
        data.extend_from_slice(content.as_bytes());
    }
    data.truncate(target);

    let op = ModOp::AddFile {
        oid,
        file: file.clone(),
        data,
    };
    match run_mod_op(&cfg, driver, op)? {
        ModEvent::OpDone { result: Ok(()) } => {
            println!("added {file} ({target} bytes) to {oid}");
            Ok(())
        }
        ModEvent::OpDone { result: Err(e) } => Err(format!("addFile failed: {e}")),
        other => Err(format!("unexpected moderator event: {other:?}")),
    }
}

fn cmd_get(args: &[String]) -> Result<(), String> {
    let [cfg_path, client, server, path, rest @ ..] = args else {
        return Err(USAGE.to_owned());
    };
    let expect = match rest {
        [] => None,
        [e] => Some(e.as_str()),
        _ => return Err(USAGE.to_owned()),
    };
    let cfg = NodeConfig::load(Path::new(cfg_path))?;
    let client = cfg.resolve_host(client)?;
    let server = cfg.resolve_host(server)?;

    // A plain TCP client speaking the transport's wire framing: hello
    // frame identifying the caller, one frame per message. This is
    // exactly what a `ConnEvent::Msg` round trip looks like on the wire.
    let addr = cfg.addrs[&server.0].socket_addr(ports::HTTP);
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout is representable");
    let hello = encode_source(Endpoint::new(client, ports::DRIVER));
    stream
        .write_all(&frame(&hello))
        .and_then(|()| stream.write_all(&frame(&HttpRequest::get(path))))
        .map_err(|e| format!("send to {addr}: {e}"))?;

    let msg = read_frame(&mut stream).map_err(|e| format!("read from {addr}: {e}"))?;
    let resp = HttpResponse::parse(&msg).ok_or("malformed HTTP response")?;
    let body = String::from_utf8_lossy(&resp.body);
    println!(
        "{} {} ({} bytes)",
        resp.status,
        resp.content_type,
        resp.body.len()
    );
    println!("{body}");
    if resp.status != 200 {
        return Err(format!("HTTP status {}", resp.status));
    }
    if let Some(needle) = expect {
        if !body.contains(needle) {
            return Err(format!("body does not contain {needle:?}"));
        }
    }
    Ok(())
}

/// Reads one length-prefixed frame (the peer's reply message).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}
