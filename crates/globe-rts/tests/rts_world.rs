//! End-to-end tests of the Globe runtime: moderator-driven object
//! creation on Globe Object Servers, GLS registration, worldwide
//! binding, all four replication protocols, the write-access gate and
//! crash recovery from stable storage.

use std::sync::Arc;

use globe_crypto::cert::{CertAuthority, Credentials, Role};
use globe_crypto::gtls::{Mode, TlsConfig};
use globe_gls::{GlsConfig, GlsDeployment, ObjectId};
use globe_net::{
    impl_service_any, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams, Service, ServiceCtx,
    Topology, World,
};
use globe_rts::{
    protocol_id, ClassSpec, GlobeObjectServer, GlobeRuntime, GosCmd, GosResp, ImplId,
    ImplRepository, Invocation, InvokeError, MethodId, MethodKind, PropagationMode, RoleSpec,
    RtConn, RtEvent, RuntimeConfig, SemError, SemanticsObject,
};
use globe_sim::{SimDuration, SimTime};

// ---------------------------------------------------------------- Counter

/// A minimal DSO class: method 0 reads the value, method 1 adds the
/// 8-byte argument.
struct Counter(u64);

const M_GET: MethodId = MethodId(0);
const M_ADD: MethodId = MethodId(1);
const COUNTER_IMPL: ImplId = ImplId(1);

impl SemanticsObject for Counter {
    fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError> {
        match inv.method {
            M_GET => Ok(self.0.to_be_bytes().to_vec()),
            M_ADD => {
                let delta = u64::from_be_bytes(
                    inv.args
                        .as_slice()
                        .try_into()
                        .map_err(|_| SemError::BadArguments)?,
                );
                self.0 += delta;
                Ok(self.0.to_be_bytes().to_vec())
            }
            m => Err(SemError::NoSuchMethod(m)),
        }
    }
    fn get_state(&self) -> Vec<u8> {
        self.0.to_be_bytes().to_vec()
    }
    fn set_state(&mut self, state: &[u8]) -> Result<(), SemError> {
        self.0 = u64::from_be_bytes(state.try_into().map_err(|_| SemError::BadState)?);
        Ok(())
    }
}

fn counter_repo() -> Arc<ImplRepository> {
    let mut repo = ImplRepository::new();
    repo.register(
        COUNTER_IMPL,
        ClassSpec {
            name: "counter",
            factory: || Box::new(Counter(0)),
            kind_of: |m| match m {
                M_GET => Some(MethodKind::Read),
                M_ADD => Some(MethodKind::Write),
                _ => None,
            },
        },
    );
    Arc::new(repo)
}

fn add(delta: u64) -> Invocation {
    Invocation::new(M_ADD, delta.to_be_bytes().to_vec())
}

fn get() -> Invocation {
    Invocation::new(M_GET, Vec::new())
}

// ------------------------------------------------------------------ rig

struct Rig {
    world: World,
    gls: Arc<GlsDeployment>,
    ca: CertAuthority,
    repo: Arc<ImplRepository>,
}

const SEED: u64 = 77;

fn rig() -> Rig {
    // 2 regions × 2 countries × 2 sites × 3 hosts.
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), SEED);
    let gls = GlsDeployment::plan(world.topology(), &GlsConfig::default().with_persistence());
    gls.install(&mut world);
    Rig {
        world,
        gls,
        ca: CertAuthority::new("gdn-root", SEED),
        repo: counter_repo(),
    }
}

impl Rig {
    fn host_tls_server(&self, host: HostId) -> TlsConfig {
        let creds = Credentials::issue(
            &self.ca,
            &format!("gos-{}", host.0),
            Role::Host,
            1000 + host.0 as u64,
        );
        TlsConfig::server_auth(Mode::AuthEncrypt, creds, vec![self.ca.root_cert().clone()])
    }

    fn host_tls_client(&self, host: HostId) -> TlsConfig {
        let creds = Credentials::issue(
            &self.ca,
            &format!("gos-{}", host.0),
            Role::Host,
            1000 + host.0 as u64,
        );
        TlsConfig::client_with_identity(Mode::AuthEncrypt, creds, vec![self.ca.root_cert().clone()])
    }

    fn gos_config(&self, host: HostId) -> RuntimeConfig {
        RuntimeConfig {
            grp_port: ports::GOS_CTL,
            tls_server: self.host_tls_server(host),
            tls_client: self.host_tls_client(host),
            accept_incoming: true,
            cache_ttl: SimDuration::from_secs(30),
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: true,
        }
    }

    fn add_gos(&mut self, host: HostId) {
        let gos = GlobeObjectServer::new(
            self.gos_config(host),
            Arc::clone(&self.repo),
            Arc::clone(&self.gls),
            host,
            100,
        );
        self.world.add_service(host, ports::GOS_CTL, gos);
    }

    fn client_config(&self, identity: Option<(Role, &str, u64)>) -> RuntimeConfig {
        let roots = vec![self.ca.root_cert().clone()];
        let tls_client = match identity {
            Some((role, name, seed)) => TlsConfig::client_with_identity(
                Mode::AuthEncrypt,
                Credentials::issue(&self.ca, name, role, seed),
                roots.clone(),
            ),
            None => TlsConfig::client(Mode::AuthEncrypt, roots.clone()),
        };
        RuntimeConfig {
            grp_port: ports::DRIVER,
            tls_server: TlsConfig::client(Mode::AuthEncrypt, roots),
            tls_client,
            accept_incoming: false,
            cache_ttl: SimDuration::from_secs(30),
            writer_roles: RuntimeConfig::default_writer_roles(),
            open_writes: false,
            persist: false,
        }
    }
}

// ----------------------------------------------------------- mod driver

/// Moderator tool: sends a script of GOS commands, recording responses.
struct ModDriver {
    runtime: GlobeRuntime,
    gos: Endpoint,
    script: Vec<GosCmd>,
    cursor: usize,
    conn: Option<ConnId>,
    pub responses: Vec<GosResp>,
}

impl ModDriver {
    fn new(runtime: GlobeRuntime, gos: Endpoint, script: Vec<GosCmd>) -> ModDriver {
        ModDriver {
            runtime,
            gos,
            script,
            cursor: 0,
            conn: None,
            responses: Vec::new(),
        }
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let conn = match self.conn {
            Some(c) => c,
            None => {
                let c = self.runtime.open_app_conn(ctx, self.gos);
                self.conn = Some(c);
                c
            }
        };
        let cmd = self.script[self.cursor].clone();
        self.cursor += 1;
        self.runtime.send_app(ctx, conn, &cmd.encode());
    }
}

impl Service for ModDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        self.runtime.handle_datagram(ctx, from, &payload);
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        if let RtConn::AppData { frames, .. } = self.runtime.handle_conn_event(ctx, conn, ev) {
            for f in frames {
                if let Ok(resp) = GosResp::decode(&f) {
                    self.responses.push(resp);
                    self.kick(ctx);
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        self.runtime.handle_timer(ctx, token);
    }
    impl_service_any!();
}

// -------------------------------------------------------- client driver

#[derive(Clone)]
enum ClientOp {
    Bind(ObjectId),
    Invoke(ObjectId, Invocation),
}

/// A Globe client: binds and invokes per script, recording completions.
struct ClientDriver {
    runtime: GlobeRuntime,
    script: Vec<ClientOp>,
    cursor: usize,
    pub results: Vec<RtEvent>,
    /// Virtual time of each completion, for latency assertions.
    pub completed_at: Vec<SimTime>,
}

impl ClientDriver {
    fn new(runtime: GlobeRuntime, script: Vec<ClientOp>) -> ClientDriver {
        ClientDriver {
            runtime,
            script,
            cursor: 0,
            results: Vec::new(),
            completed_at: Vec::new(),
        }
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let token = self.cursor as u64;
        match self.script[self.cursor].clone() {
            ClientOp::Bind(oid) => self.runtime.bind(ctx, oid, token),
            ClientOp::Invoke(oid, inv) => self.runtime.invoke(ctx, oid, inv, token),
        }
        self.cursor += 1;
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        let events = self.runtime.take_events();
        if events.is_empty() {
            return;
        }
        for ev in events {
            self.results.push(ev);
            self.completed_at.push(ctx.now());
        }
        self.kick(ctx);
    }
}

impl Service for ClientDriver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
        }
    }
    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(_) => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
        }
    }
    impl_service_any!();
}

// --------------------------------------------------------------- helpers

fn moderator_runtime(rig: &Rig, host: HostId) -> GlobeRuntime {
    let cfg = rig.client_config(Some((Role::Moderator, "modtool:alice", 555)));
    GlobeRuntime::new(cfg, Arc::clone(&rig.repo), Arc::clone(&rig.gls), host, 100)
}

fn anon_runtime(rig: &Rig, host: HostId) -> GlobeRuntime {
    let cfg = rig.client_config(None);
    GlobeRuntime::new(cfg, Arc::clone(&rig.repo), Arc::clone(&rig.gls), host, 100)
}

fn create_object(rig: &mut Rig, gos_host: HostId, protocol: u16, role: RoleSpec) -> ObjectId {
    rig.add_gos(gos_host);
    let rt = moderator_runtime(rig, HostId(1));
    let driver = ModDriver::new(
        rt,
        Endpoint::new(gos_host, ports::GOS_CTL),
        vec![GosCmd::CreateObject {
            req: 1,
            impl_id: COUNTER_IMPL.0,
            protocol,
            role,
        }],
    );
    rig.world.add_service(HostId(1), 9990, driver);
    if !rig.world_started() {
        rig.world.start();
    }
    rig.world.run_for(SimDuration::from_secs(10));
    let d = rig
        .world
        .service::<ModDriver>(HostId(1), 9990)
        .expect("mod driver");
    match d.responses.first() {
        Some(GosResp::Ok { oid, .. }) => ObjectId(*oid),
        other => panic!("object creation failed: {other:?}"),
    }
}

impl Rig {
    fn world_started(&self) -> bool {
        // `World::start` panics when called twice; the rig tracks it by
        // virtual time instead (start happens at t=0 before any run).
        self.world.now() > SimTime::ZERO
    }
}

fn run_client(
    rig: &mut Rig,
    host: HostId,
    port: u16,
    runtime: GlobeRuntime,
    script: Vec<ClientOp>,
) {
    rig.world
        .add_service(host, port, ClientDriver::new(runtime, script));
}

fn invoke_results(world: &World, host: HostId, port: u16) -> Vec<RtEvent> {
    world
        .service::<ClientDriver>(host, port)
        .expect("client driver")
        .results
        .clone()
}

fn expect_value(ev: &RtEvent) -> u64 {
    match ev {
        RtEvent::InvokeDone {
            result: Ok(data), ..
        } => u64::from_be_bytes(data.as_slice().try_into().expect("8-byte counter")),
        other => panic!("expected successful invocation, got {other:?}"),
    }
}

// ----------------------------------------------------------------- tests

#[test]
fn client_server_end_to_end() {
    let mut rig = rig();
    let gos_host = HostId(0);
    let oid = create_object(
        &mut rig,
        gos_host,
        protocol_id::CLIENT_SERVER,
        RoleSpec::Standalone,
    );

    // A moderator-credentialed client in the other region writes.
    let rt = moderator_runtime(&rig, HostId(13));
    run_client(
        &mut rig,
        HostId(13),
        ports::DRIVER,
        rt,
        vec![
            ClientOp::Bind(oid),
            ClientOp::Invoke(oid, add(5)),
            ClientOp::Invoke(oid, add(2)),
            ClientOp::Invoke(oid, get()),
        ],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(13), ports::DRIVER);
    assert_eq!(rs.len(), 4, "{rs:?}");
    assert!(matches!(&rs[0], RtEvent::BindDone { result: Ok(info), .. }
        if info.protocol == protocol_id::CLIENT_SERVER));
    assert_eq!(expect_value(&rs[1]), 5);
    assert_eq!(expect_value(&rs[2]), 7);
    assert_eq!(expect_value(&rs[3]), 7);

    // An anonymous client reads the same value.
    let rt = anon_runtime(&rig, HostId(14));
    run_client(
        &mut rig,
        HostId(14),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, get())],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(14), ports::DRIVER);
    assert_eq!(expect_value(&rs[1]), 7);
}

#[test]
fn anonymous_writes_are_denied() {
    let mut rig = rig();
    let oid = create_object(
        &mut rig,
        HostId(0),
        protocol_id::CLIENT_SERVER,
        RoleSpec::Standalone,
    );
    let rt = anon_runtime(&rig, HostId(13));
    run_client(
        &mut rig,
        HostId(13),
        ports::DRIVER,
        rt,
        vec![
            ClientOp::Bind(oid),
            ClientOp::Invoke(oid, add(99)),
            ClientOp::Invoke(oid, get()),
        ],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(13), ports::DRIVER);
    assert!(matches!(
        &rs[1],
        RtEvent::InvokeDone {
            result: Err(InvokeError::AccessDenied),
            ..
        }
    ));
    // The write did not happen.
    assert_eq!(expect_value(&rs[2]), 0);
    assert!(rig.world.metrics().counter("rts.writes_denied") >= 1);
}

#[test]
fn master_slave_push_replication() {
    let mut rig = rig();
    let master_host = HostId(0);
    let slave_host = HostId(12); // other region
    let oid = create_object(
        &mut rig,
        master_host,
        protocol_id::MASTER_SLAVE,
        RoleSpec::Master {
            mode: PropagationMode::PushState,
        },
    );
    // Second replica on the far GOS.
    rig.add_gos(slave_host);
    let rt = moderator_runtime(&rig, HostId(2));
    let driver = ModDriver::new(
        rt,
        Endpoint::new(slave_host, ports::GOS_CTL),
        vec![GosCmd::CreateReplica {
            req: 1,
            oid: oid.0,
            impl_id: COUNTER_IMPL.0,
            protocol: protocol_id::MASTER_SLAVE,
            role: RoleSpec::Slave {
                master: Endpoint::new(master_host, ports::GOS_CTL),
            },
        }],
    );
    rig.world.add_service(HostId(2), ports::DRIVER, driver);
    rig.world.run_for(SimDuration::from_secs(10));

    // Write through a moderator client; the push must reach the slave.
    let rt = moderator_runtime(&rig, HostId(1));
    run_client(
        &mut rig,
        HostId(1),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, add(42))],
    );
    rig.world.run_for(SimDuration::from_secs(30));

    let slave = rig
        .world
        .service::<GlobeObjectServer>(slave_host, ports::GOS_CTL)
        .expect("slave gos");
    assert_eq!(slave.runtime.replica_version(oid), Some(1));

    // An anonymous reader near the slave sees the new value, served by
    // the nearest (slave) replica.
    let rt = anon_runtime(&rig, HostId(13));
    run_client(
        &mut rig,
        HostId(13),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, get())],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(13), ports::DRIVER);
    assert_eq!(expect_value(&rs[1]), 42);
    // The read was served locally in region 1: no world-tier GRP bytes
    // for it beyond what replication itself moved. (Sanity: the proxy's
    // chosen read target is in its own region.)
}

#[test]
fn master_slave_invalidate_replication() {
    let mut rig = rig();
    let master_host = HostId(0);
    let slave_host = HostId(3);
    let oid = create_object(
        &mut rig,
        master_host,
        protocol_id::MASTER_SLAVE,
        RoleSpec::Master {
            mode: PropagationMode::Invalidate,
        },
    );
    rig.add_gos(slave_host);
    let rt = moderator_runtime(&rig, HostId(2));
    let driver = ModDriver::new(
        rt,
        Endpoint::new(slave_host, ports::GOS_CTL),
        vec![GosCmd::CreateReplica {
            req: 1,
            oid: oid.0,
            impl_id: COUNTER_IMPL.0,
            protocol: protocol_id::MASTER_SLAVE,
            role: RoleSpec::Slave {
                master: Endpoint::new(master_host, ports::GOS_CTL),
            },
        }],
    );
    rig.world.add_service(HostId(2), ports::DRIVER, driver);
    rig.world.run_for(SimDuration::from_secs(10));

    // Write, then read via the slave: the slave must refetch.
    let rt = moderator_runtime(&rig, HostId(4));
    run_client(
        &mut rig,
        HostId(4),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, add(7))],
    );
    rig.world.run_for(SimDuration::from_secs(30));

    let rt = anon_runtime(&rig, HostId(5)); // same site as slave host 3
    run_client(
        &mut rig,
        HostId(5),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, get())],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(5), ports::DRIVER);
    assert_eq!(expect_value(&rs[1]), 7);
}

#[test]
fn active_replication_reexecutes_writes() {
    let mut rig = rig();
    let master_host = HostId(0);
    let slave_host = HostId(6);
    let oid = create_object(
        &mut rig,
        master_host,
        protocol_id::ACTIVE,
        RoleSpec::Master {
            mode: PropagationMode::ApplyOps,
        },
    );
    rig.add_gos(slave_host);
    let rt = moderator_runtime(&rig, HostId(2));
    let driver = ModDriver::new(
        rt,
        Endpoint::new(slave_host, ports::GOS_CTL),
        vec![GosCmd::CreateReplica {
            req: 1,
            oid: oid.0,
            impl_id: COUNTER_IMPL.0,
            protocol: protocol_id::ACTIVE,
            role: RoleSpec::Slave {
                master: Endpoint::new(master_host, ports::GOS_CTL),
            },
        }],
    );
    rig.world.add_service(HostId(2), ports::DRIVER, driver);
    rig.world.run_for(SimDuration::from_secs(10));

    let rt = moderator_runtime(&rig, HostId(1));
    run_client(
        &mut rig,
        HostId(1),
        ports::DRIVER,
        rt,
        vec![
            ClientOp::Bind(oid),
            ClientOp::Invoke(oid, add(3)),
            ClientOp::Invoke(oid, add(4)),
        ],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let slave = rig
        .world
        .service::<GlobeObjectServer>(slave_host, ports::GOS_CTL)
        .expect("slave gos");
    assert_eq!(slave.runtime.replica_version(oid), Some(2));
}

#[test]
fn cache_proxy_serves_repeat_reads_locally() {
    let mut rig = rig();
    let oid = create_object(
        &mut rig,
        HostId(0),
        protocol_id::CACHE_TTL,
        RoleSpec::Standalone,
    );
    let rt = anon_runtime(&rig, HostId(13));
    run_client(
        &mut rig,
        HostId(13),
        ports::DRIVER,
        rt,
        vec![
            ClientOp::Bind(oid),
            ClientOp::Invoke(oid, get()),
            ClientOp::Invoke(oid, get()),
            ClientOp::Invoke(oid, get()),
        ],
    );
    rig.world.run_for(SimDuration::from_secs(60));
    let d = rig
        .world
        .service::<ClientDriver>(HostId(13), ports::DRIVER)
        .expect("client");
    assert_eq!(d.results.len(), 4);
    // First read fills the cache (slow); repeats are local (fast).
    let first_read = d.completed_at[1] - d.completed_at[0];
    let second_read = d.completed_at[2] - d.completed_at[1];
    assert!(
        second_read.as_nanos() * 10 < first_read.as_nanos(),
        "cached read not faster: first {first_read}, second {second_read}"
    );
    assert!(rig.world.metrics().counter("rts.cache.hits") >= 2);
    assert_eq!(rig.world.metrics().counter("rts.cache.misses"), 1);
}

#[test]
fn gos_commands_require_moderator_role() {
    let mut rig = rig();
    rig.add_gos(HostId(0));
    // A mere host certificate tries to create an object.
    let cfg = rig.client_config(Some((Role::Host, "sneaky-host", 666)));
    let rt = GlobeRuntime::new(
        cfg,
        Arc::clone(&rig.repo),
        Arc::clone(&rig.gls),
        HostId(1),
        100,
    );
    let driver = ModDriver::new(
        rt,
        Endpoint::new(HostId(0), ports::GOS_CTL),
        vec![GosCmd::CreateObject {
            req: 1,
            impl_id: COUNTER_IMPL.0,
            protocol: protocol_id::CLIENT_SERVER,
            role: RoleSpec::Standalone,
        }],
    );
    rig.world.add_service(HostId(1), ports::DRIVER, driver);
    rig.world.start();
    rig.world.run_for(SimDuration::from_secs(10));
    let d = rig
        .world
        .service::<ModDriver>(HostId(1), ports::DRIVER)
        .expect("driver");
    assert!(matches!(
        d.responses.first(),
        Some(GosResp::Err { msg, .. }) if msg.contains("moderator")
    ));
}

#[test]
fn bind_to_unknown_object_fails() {
    let mut rig = rig();
    rig.add_gos(HostId(0));
    let rt = anon_runtime(&rig, HostId(4));
    run_client(
        &mut rig,
        HostId(4),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(ObjectId(0xDEAD_BEEF))],
    );
    rig.world.start();
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(4), ports::DRIVER);
    assert!(matches!(
        &rs[0],
        RtEvent::BindDone {
            result: Err(globe_rts::BindError::NotFound),
            ..
        }
    ));
}

#[test]
fn gos_recovers_replicas_from_stable_storage() {
    let mut rig = rig();
    let gos_host = HostId(0);
    let oid = create_object(
        &mut rig,
        gos_host,
        protocol_id::CLIENT_SERVER,
        RoleSpec::Standalone,
    );
    let rt = moderator_runtime(&rig, HostId(1));
    run_client(
        &mut rig,
        HostId(1),
        9100,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, add(11))],
    );
    rig.world.run_for(SimDuration::from_secs(30));

    // Crash and recover the object server.
    rig.world.crash_host(gos_host);
    rig.world.run_for(SimDuration::from_secs(1));
    rig.world.recover_host(gos_host);
    rig.world.run_for(SimDuration::from_secs(1));
    let gos = rig
        .world
        .service::<GlobeObjectServer>(gos_host, ports::GOS_CTL)
        .expect("gos");
    assert_eq!(gos.stats.replicas_restored, 1);
    assert_eq!(gos.runtime.replica_version(oid), Some(1));

    // A fresh client still reads the pre-crash state.
    let rt = anon_runtime(&rig, HostId(14));
    run_client(
        &mut rig,
        HostId(14),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid), ClientOp::Invoke(oid, get())],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    let rs = invoke_results(&rig.world, HostId(14), ports::DRIVER);
    assert_eq!(expect_value(&rs[1]), 11);
}

#[test]
fn first_bind_pays_class_loading() {
    let mut rig = rig();
    let oid = create_object(
        &mut rig,
        HostId(0),
        protocol_id::CLIENT_SERVER,
        RoleSpec::Standalone,
    );
    // Two sequential binds from the same host: only the first loads the
    // implementation (paper §3.4 / experiment E9).
    let rt = anon_runtime(&rig, HostId(4));
    run_client(
        &mut rig,
        HostId(4),
        ports::DRIVER,
        rt,
        vec![ClientOp::Bind(oid)],
    );
    rig.world.run_for(SimDuration::from_secs(30));
    assert_eq!(rig.world.metrics().counter("rts.impl_loads"), 1);

    let d = rig
        .world
        .service::<ClientDriver>(HostId(4), ports::DRIVER)
        .expect("client");
    let first_bind_done = d.completed_at[0];
    // Class load delay (150 ms default) dominates a site-local lookup.
    assert!(
        first_bind_done
            >= rig.world.now() - SimDuration::from_secs(30) + SimDuration::from_millis(150),
        "bind at {first_bind_done} did not include the load delay"
    );
}
