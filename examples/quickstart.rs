//! Quickstart: stand up a world-spanning GDN, publish one package, and
//! download it from the other side of the world through a standard
//! browser — the end-to-end path of paper Figure 3.
//!
//! Run with: `cargo run --example quickstart`

use globe::gdn::{Browser, GdnDeployment, GdnOptions, ModEvent, ModOp, ModeratorTool, Scenario};
use globe::net::{ports, HostId, NetParams, Topology, World};
use globe::sim::SimDuration;

fn main() {
    // Two regions, two countries each, two sites per country, three
    // hosts per site: a small world.
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), 42);
    let gdn = GdnDeployment::install(&mut world, GdnOptions::default());
    println!(
        "installed: {} object servers, {} HTTPDs, GLS over {} domains",
        gdn.gos_endpoints.len(),
        gdn.httpd_endpoints.len(),
        gdn.gls.num_domains()
    );

    // Moderator alice publishes the Gimp from region 0.
    let gos = gdn.gos_for(world.topology(), HostId(0));
    let tool = gdn.moderator_tool(
        world.topology(),
        HostId(1),
        "alice",
        vec![ModOp::Publish {
            name: "/apps/graphics/gimp".into(),
            description: "GNU Image Manipulation Program".into(),
            files: vec![
                ("README".into(), b"The GIMP. Free as in freedom.".to_vec()),
                ("gimp-1.0.tar".into(), vec![0xAB; 300_000]),
            ],
            scenario: Scenario::single(gos),
        }],
    );
    world.add_service(HostId(1), ports::DRIVER, tool);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    let tool = world
        .service::<ModeratorTool>(HostId(1), ports::DRIVER)
        .expect("moderator tool");
    match tool.results.first() {
        Some(ModEvent::PublishDone {
            result: Ok(oid), ..
        }) => {
            println!("published /apps/graphics/gimp as {oid:?}");
        }
        other => panic!("publish failed: {other:?}"),
    }

    // A user in the other region browses and downloads.
    let user = HostId(13);
    let access_point = gdn.httpd_for(world.topology(), user);
    println!(
        "user on host {} uses access point {} (its site-local GDN-HTTPD)",
        user.0, access_point
    );
    let browser = Browser::new(
        access_point,
        vec![
            "/pkg/apps/graphics/gimp".into(),
            "/pkg/apps/graphics/gimp?file=README".into(),
            "/pkg/apps/graphics/gimp?file=gimp-1.0.tar".into(),
        ],
    )
    .keeping_bodies();
    world.add_service(user, ports::DRIVER, browser);
    world.run_for(SimDuration::from_secs(120));

    let b = world
        .service::<Browser>(user, ports::DRIVER)
        .expect("browser");
    for r in &b.results {
        println!(
            "GET {:<45} -> {} ({} bytes, {})",
            r.path, r.status, r.body_len, r.latency
        );
    }
    assert!(b.results.iter().all(|r| r.status == 200));
    println!(
        "\nlisting excerpt: {}",
        String::from_utf8_lossy(&b.results[0].body)
            .lines()
            .next()
            .unwrap_or("")
    );
    println!("\nwide-area bytes moved: {}", {
        let m = world.metrics();
        m.counter("net.bytes.country")
            + m.counter("net.bytes.region")
            + m.counter("net.bytes.world")
    });
}
