//! Property-based tests of the GDN application layer: the package DSO's
//! semantics behave like a keyed store, state transfer is lossless, the
//! HTTP codec is total — and the typed interface layer round-trips every
//! declared method's arguments and results while its derived `kind_of`
//! table matches the declarations.

use proptest::prelude::*;

use gdn_core::catalog::{CatalogDso, CatalogEntry, CatalogInterface, Query, Unregister};
use gdn_core::package::{
    AddFile, FileBlob, FileInfo, GetFile, Meta, PackageDso, PackageInterface, RemoveFile,
};
use gdn_core::stats::{DownloadStatsDso, DownloadStatsInterface, RecordDownload, StatQuery};
use gdn_core::{HttpRequest, HttpResponse};
use globe_rts::interface::DsoInterface;
use globe_rts::{MethodDef, SemanticsObject, WireCodec};

const FNAME: &str = "[a-zA-Z][a-zA-Z0-9._-]{0,20}";

/// One method's args and result must survive the typed wire codecs.
fn assert_method_round_trip<A, R>(method: &MethodDef<A, R>, args: A, result: R)
where
    A: WireCodec + PartialEq + std::fmt::Debug,
    R: WireCodec + PartialEq + std::fmt::Debug,
{
    let inv = method.invocation(&args);
    assert_eq!(inv.method, method.id());
    assert_eq!(method.decode_args(&inv).unwrap(), args, "{}", method.name());
    assert_eq!(
        method.decode_result(&result.to_bytes()).unwrap(),
        result,
        "{}",
        method.name()
    );
}

proptest! {
    /// addFile/getFile behave like map insert/lookup, digests verify,
    /// and full state transfer reproduces the object exactly — the
    /// invariant replication (push, fetch, recovery) depends on.
    #[test]
    fn package_is_a_consistent_store(
        files in prop::collection::btree_map(FNAME, prop::collection::vec(any::<u8>(), 0..512), 1..10),
        description in "[ -~]{0,64}",
    ) {
        let mut pkg = PackageDso::new();
        pkg.dispatch(&PackageInterface::SET_META.invocation(&Meta {
            description: description.clone(),
        })).unwrap();
        for (name, data) in &files {
            pkg.dispatch(&PackageInterface::ADD_FILE.invocation(&AddFile {
                name: name.clone(),
                data: data.clone(),
            })).unwrap();
        }
        // Listing reflects exactly the inserted keys and sizes.
        let listing = PackageInterface::LIST_CONTENTS.decode_result(
            &pkg.dispatch(&PackageInterface::LIST_CONTENTS.invocation(&())).unwrap(),
        ).unwrap();
        prop_assert_eq!(listing.len(), files.len());
        for info in &listing {
            prop_assert_eq!(info.size as usize, files[&info.name].len());
        }
        // Every file reads back identically (digest-verified).
        for (name, data) in &files {
            let blob = PackageInterface::GET_FILE.decode_result(
                &pkg.dispatch(&PackageInterface::GET_FILE.invocation(&GetFile {
                    name: name.clone(),
                })).unwrap(),
            ).unwrap();
            prop_assert_eq!(&blob.verified().unwrap(), data);
        }
        // State transfer: a blank replica fed the state blob is
        // indistinguishable.
        let mut replica = PackageDso::new();
        replica.set_state(&pkg.get_state()).unwrap();
        prop_assert_eq!(replica.get_state(), pkg.get_state());
        let meta = PackageInterface::GET_META.decode_result(
            &replica.dispatch(&PackageInterface::GET_META.invocation(&())).unwrap(),
        ).unwrap();
        prop_assert_eq!(meta.description, description);
        // Removal empties the store.
        for name in files.keys() {
            replica.dispatch(&PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
                name: name.clone(),
            })).unwrap();
        }
        prop_assert_eq!(replica.num_files(), 0);
    }

    /// The generated dispatchers are total over arbitrary method ids and
    /// argument bytes (paper §6.3: survive bogus protocol messages).
    #[test]
    fn generated_dispatch_is_total(
        method: u32,
        args in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let inv = globe_rts::Invocation::new(globe_rts::MethodId(method), args);
        let mut pkg = PackageDso::new();
        let _ = pkg.dispatch(&inv);
        let _ = pkg.set_state(&[0xFF, 0x00, 0x01]);
        let mut cat = CatalogDso::new();
        let _ = cat.dispatch(&inv);
        let _ = cat.set_state(&[0xFF, 0x00, 0x01]);
    }

    /// Every PackageInterface method's arguments and results round-trip
    /// through the typed WireCodec layer.
    #[test]
    fn package_methods_round_trip(
        name in FNAME,
        data in prop::collection::vec(any::<u8>(), 0..512),
        description in "[ -~]{0,64}",
        size: u64,
        digest in prop::array::uniform32(any::<u8>()),
        listing_len in 0usize..5,
    ) {
        assert_method_round_trip(
            &PackageInterface::ADD_FILE,
            AddFile { name: name.clone(), data: data.clone() },
            (),
        );
        assert_method_round_trip(
            &PackageInterface::REMOVE_FILE,
            RemoveFile { name: name.clone() },
            (),
        );
        let entry = FileInfo { name: name.clone(), size, digest };
        assert_method_round_trip(
            &PackageInterface::LIST_CONTENTS,
            (),
            vec![entry; listing_len],
        );
        assert_method_round_trip(
            &PackageInterface::GET_FILE,
            GetFile { name: name.clone() },
            FileBlob { data, digest },
        );
        assert_method_round_trip(&PackageInterface::GET_META, (), Meta {
            description: description.clone(),
        });
        assert_method_round_trip(&PackageInterface::SET_META, Meta { description }, ());
    }

    /// Every CatalogInterface method's arguments and results round-trip
    /// through the typed WireCodec layer.
    #[test]
    fn catalog_methods_round_trip(
        name in "/[a-z0-9/._-]{0,40}",
        description in "[ -~]{0,64}",
        term in "[ -~]{0,16}",
        listing_len in 0usize..5,
    ) {
        let entry = CatalogEntry { name: name.clone(), description };
        assert_method_round_trip(&CatalogInterface::REGISTER, entry.clone(), ());
        assert_method_round_trip(
            &CatalogInterface::UNREGISTER,
            Unregister { name },
            (),
        );
        assert_method_round_trip(
            &CatalogInterface::LIST,
            (),
            vec![entry.clone(); listing_len],
        );
        assert_method_round_trip(
            &CatalogInterface::SEARCH,
            Query { term },
            vec![entry; listing_len],
        );
    }

    /// Delta replication of the package DSO: draining a delta after a
    /// run of writes and splicing it into a replica holding the
    /// predecessor state is indistinguishable from a full
    /// `set_state(get_state())` transfer — the invariant `PushDelta`
    /// propagation and `Refresh` catch-up depend on.
    #[test]
    fn package_delta_equals_full_state_transfer(
        baseline in prop::collection::btree_map(FNAME, prop::collection::vec(any::<u8>(), 0..64), 0..4),
        ops in prop::collection::vec(
            (0u32..3, FNAME, prop::collection::vec(any::<u8>(), 0..64)),
            1..12,
        ),
    ) {
        let mut a = PackageDso::new();
        for (name, data) in &baseline {
            a.dispatch(&PackageInterface::ADD_FILE.invocation(&AddFile {
                name: name.clone(),
                data: data.clone(),
            })).unwrap();
        }
        // A replica installs the baseline; the master's log restarts
        // from the same point.
        let mut b = PackageDso::new();
        b.set_state(&a.get_state()).unwrap();
        let _ = SemanticsObject::take_delta(&mut a);

        for (kind, name, data) in &ops {
            let inv = match kind {
                0 => PackageInterface::ADD_FILE.invocation(&AddFile {
                    name: name.clone(),
                    data: data.clone(),
                }),
                1 => PackageInterface::REMOVE_FILE.invocation(&RemoveFile {
                    name: name.clone(),
                }),
                _ => PackageInterface::SET_META.invocation(&Meta {
                    description: name.clone(),
                }),
            };
            let _ = a.dispatch(&inv); // removals of absent files no-op
        }

        let delta = SemanticsObject::take_delta(&mut a).expect("log never overflows here");
        SemanticsObject::apply_delta(&mut b, &delta).unwrap();
        prop_assert_eq!(b.get_state(), a.get_state());

        // Equivalence with the full-state path.
        let mut c = PackageDso::new();
        c.set_state(&a.get_state()).unwrap();
        prop_assert_eq!(b.get_state(), c.get_state());
    }

    /// Delta replication of the catalog DSO (see the package property).
    #[test]
    fn catalog_delta_equals_full_state_transfer(
        ops in prop::collection::vec(
            (0u32..2, "/[a-z]{1,8}", "[ -~]{0,16}"),
            1..12,
        ),
    ) {
        let mut a = CatalogDso::new();
        a.dispatch(&CatalogInterface::REGISTER.invocation(&CatalogEntry {
            name: "/seed".into(),
            description: "seed entry".into(),
        })).unwrap();
        let mut b = CatalogDso::new();
        b.set_state(&a.get_state()).unwrap();
        let _ = SemanticsObject::take_delta(&mut a);

        for (kind, name, description) in &ops {
            let inv = match kind {
                0 => CatalogInterface::REGISTER.invocation(&CatalogEntry {
                    name: name.clone(),
                    description: description.clone(),
                }),
                _ => CatalogInterface::UNREGISTER.invocation(&Unregister {
                    name: name.clone(),
                }),
            };
            let _ = a.dispatch(&inv);
        }

        let delta = SemanticsObject::take_delta(&mut a).expect("log never overflows here");
        SemanticsObject::apply_delta(&mut b, &delta).unwrap();
        prop_assert_eq!(b.get_state(), a.get_state());
    }

    /// Delta replication of the download-stats DSO, including the
    /// concatenation property `Refresh` catch-up relies on: applying
    /// `d1 ++ d2` equals applying `d1` then `d2`.
    #[test]
    fn stats_delta_equals_full_state_transfer(
        ops in prop::collection::vec(("/[a-z]{1,6}", 0u64..10_000), 1..16),
        split in 0usize..16,
    ) {
        let mut a = DownloadStatsDso::new();
        let mut b = DownloadStatsDso::new();
        b.set_state(&a.get_state()).unwrap();
        let _ = SemanticsObject::take_delta(&mut a);

        let split = split.min(ops.len());
        for (name, bytes) in &ops[..split] {
            a.dispatch(&DownloadStatsInterface::RECORD.invocation(&RecordDownload {
                name: name.clone(),
                bytes: *bytes,
            })).unwrap();
        }
        let d1 = SemanticsObject::take_delta(&mut a).expect("under the cap");
        for (name, bytes) in &ops[split..] {
            a.dispatch(&DownloadStatsInterface::RECORD.invocation(&RecordDownload {
                name: name.clone(),
                bytes: *bytes,
            })).unwrap();
        }
        let d2 = SemanticsObject::take_delta(&mut a).expect("under the cap");

        let mut joined = d1.clone();
        joined.extend_from_slice(&d2);
        SemanticsObject::apply_delta(&mut b, &joined).unwrap();
        prop_assert_eq!(b.get_state(), a.get_state());

        // Stepwise application agrees with the spliced one.
        let mut c = DownloadStatsDso::new();
        SemanticsObject::apply_delta(&mut c, &d1).unwrap();
        SemanticsObject::apply_delta(&mut c, &d2).unwrap();
        prop_assert_eq!(c.get_state(), a.get_state());

        // And per-name reads agree between master and replica.
        for (name, _) in &ops {
            let raw_a = a.dispatch(&DownloadStatsInterface::GET_STAT.invocation(&StatQuery {
                name: name.clone(),
            })).unwrap();
            let raw_b = b.dispatch(&DownloadStatsInterface::GET_STAT.invocation(&StatQuery {
                name: name.clone(),
            })).unwrap();
            prop_assert_eq!(raw_a, raw_b);
        }
    }

    /// Malformed deltas are rejected atomically: the replica's state is
    /// untouched, so the protocol's full-state fallback starts clean.
    #[test]
    fn malformed_deltas_rejected(
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut pkg = PackageDso::new();
        pkg.dispatch(&PackageInterface::ADD_FILE.invocation(&AddFile {
            name: "f".into(),
            data: vec![1, 2, 3],
        })).unwrap();
        let before = pkg.get_state();
        if SemanticsObject::apply_delta(&mut pkg, &garbage).is_err() {
            prop_assert_eq!(pkg.get_state(), before);
        }

        let mut stats = DownloadStatsDso::new();
        let before = stats.get_state();
        if SemanticsObject::apply_delta(&mut stats, &garbage).is_err() {
            prop_assert_eq!(stats.get_state(), before);
        }
    }

    /// HTTP requests and responses round-trip; parsers are total.
    #[test]
    fn http_codec(
        path in "/[a-z0-9/._?=-]{0,60}",
        status in prop::sample::select(vec![200u16, 400, 403, 404, 500, 502, 504]),
        body in prop::collection::vec(any::<u8>(), 0..512),
        garbage in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let req = HttpRequest::parse(&HttpRequest::get(&path)).unwrap();
        prop_assert_eq!(req.method, "GET");
        prop_assert_eq!(req.path, path);

        let resp = HttpResponse::parse(&HttpResponse::build(status, "application/octet-stream", &body)).unwrap();
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.body, body);

        let _ = HttpRequest::parse(&garbage);
        let _ = HttpResponse::parse(&garbage);
    }
}

/// The derived `kind_of` tables agree with each method's declared
/// `MethodKind`, both directly and through repository registration.
#[test]
fn kind_tables_match_declarations() {
    fn check<I: DsoInterface>() {
        let mut repo = globe_rts::ImplRepository::new();
        I::register(&mut repo);
        assert!(!I::methods().is_empty());
        for spec in I::methods() {
            assert_eq!(I::kind_of(spec.id), Some(spec.kind), "{}", spec.name);
            assert_eq!(I::method_name(spec.id), Some(spec.name));
            assert_eq!(repo.kind_of(I::IMPL, spec.id), Some(spec.kind));
        }
        // Ids unknown to the table classify as unknown.
        let unknown = globe_rts::MethodId(0xDEAD);
        assert_eq!(I::kind_of(unknown), None);
        assert_eq!(repo.kind_of(I::IMPL, unknown), None);
    }
    check::<PackageInterface>();
    check::<CatalogInterface>();

    // The typed constants carry the same classification as the table.
    use globe_rts::MethodKind;
    assert_eq!(PackageInterface::ADD_FILE.kind(), MethodKind::Write);
    assert_eq!(PackageInterface::LIST_CONTENTS.kind(), MethodKind::Read);
    assert_eq!(PackageInterface::GET_FILE.kind(), MethodKind::Read);
    assert_eq!(CatalogInterface::REGISTER.kind(), MethodKind::Write);
    assert_eq!(CatalogInterface::LIST.kind(), MethodKind::Read);
    assert_eq!(CatalogInterface::SEARCH.kind(), MethodKind::Read);
}
