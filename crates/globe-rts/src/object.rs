//! The Globe object model: opaque invocations and the semantics
//! subobject.
//!
//! The paper's reflective separation (§3.3) is enforced here at the type
//! level: replication and communication subobjects only ever see
//! [`Invocation`] frames — "opaque invocation messages in which method
//! identifiers and parameters have been encoded" — while the
//! application's behaviour lives behind the [`SemanticsObject`] trait.
//! The *control subobject* of the paper is the typed wrapper each
//! application defines on top of [`Invocation`] (see the package DSO in
//! `gdn-core` for the canonical example); it owns marshalling and talks
//! to the runtime, bridging user-defined interfaces to the standard
//! replication interface.

use std::error::Error;
use std::fmt;

use globe_net::{WireError, WireReader, WireWriter};

/// Identifies a method of a distributed shared object's interface.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MethodId(pub u32);

/// Whether a method only observes state or may modify it.
///
/// The replication subobjects route invocations by this classification
/// (reads may execute at any replica; writes go to the master), and the
/// GDN's access control gates on it (§6.1: only moderators may modify).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MethodKind {
    /// Observes state only.
    Read,
    /// May modify state.
    Write,
}

/// A marshalled method invocation: the opaque frame replication and
/// communication subobjects operate on (paper §3.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Invocation {
    /// Which method to invoke.
    pub method: MethodId,
    /// Marshalled parameters (wire format is the control subobject's
    /// business; subobjects never look inside).
    pub args: Vec<u8>,
}

impl Invocation {
    /// Creates an invocation frame.
    pub fn new(method: MethodId, args: Vec<u8>) -> Invocation {
        Invocation { method, args }
    }

    /// Serializes into `w`.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.method.0);
        w.put_bytes(&self.args);
    }

    /// Deserializes from `r`.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Invocation, WireError> {
        Ok(Invocation {
            method: MethodId(r.u32()?),
            args: r.bytes()?.to_vec(),
        })
    }

    /// Total marshalled size in bytes, derived from the actual encoding
    /// so byte accounting can never drift from the wire format.
    pub fn size(&self) -> usize {
        let mut w = WireWriter::with_capacity(8 + self.args.len());
        self.encode(&mut w);
        w.len()
    }
}

/// Errors raised while executing semantics code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemError {
    /// The method id is not part of this object's interface.
    NoSuchMethod(MethodId),
    /// The marshalled arguments did not decode.
    BadArguments,
    /// An application-level failure, carried back to the caller.
    Application(String),
    /// A state blob did not decode during replica installation.
    BadState,
    /// The semantics class does not implement the delta API (callers
    /// fall back to full state transfer).
    DeltaUnsupported,
    /// The semantics class does not implement the chunked-state API, or
    /// a referenced chunk is missing from the store (callers fall back
    /// to full state transfer).
    ChunksUnsupported,
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::NoSuchMethod(m) => write!(f, "no method {}", m.0),
            SemError::BadArguments => write!(f, "malformed arguments"),
            SemError::Application(e) => write!(f, "application error: {e}"),
            SemError::BadState => write!(f, "malformed state"),
            SemError::DeltaUnsupported => write!(f, "class does not support deltas"),
            SemError::ChunksUnsupported => write!(f, "class does not support chunked state"),
        }
    }
}

impl Error for SemError {}

/// The semantics subobject: the application's behaviour and state
/// (paper §3.3), independent of all distribution and replication
/// concerns.
///
/// Implementations must be deterministic functions of `(state, args)` —
/// the active-replication protocol re-executes writes at every replica
/// and relies on all replicas converging.
pub trait SemanticsObject: 'static {
    /// Executes one marshalled invocation, returning the marshalled
    /// result.
    fn dispatch(&mut self, inv: &Invocation) -> Result<Vec<u8>, SemError>;

    /// Serializes the full object state (for state transfer between
    /// replicas and for Globe Object Server persistence).
    fn get_state(&self) -> Vec<u8>;

    /// Replaces the object state from a serialized blob.
    fn set_state(&mut self, state: &[u8]) -> Result<(), SemError>;

    // ---- optional delta API (default: full-state fallback) ----
    //
    // Classes that maintain a mutation log can ship *deltas* between
    // replicas instead of whole state, and let the runtime gate
    // persistence on a cheap change marker. The defaults make every
    // existing class behave exactly as before: no deltas, digest
    // computed by hashing the full state blob.

    /// A cheap value that changes whenever the object state changes —
    /// the runtime's persistence gate. A content hash and a mutation
    /// counter both qualify; the default hashes the full state blob
    /// (correct but pays the encode).
    fn state_digest(&self) -> u64 {
        fnv64(&self.get_state())
    }

    /// Drains and returns the mutations applied since the last call (or
    /// since the last `set_state`), encoded so that concatenating
    /// consecutive deltas yields a valid delta. Returns `None` when the
    /// class keeps no log or the log overflowed — callers must then fall
    /// back to full state transfer.
    fn take_delta(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Applies a delta produced by `take_delta` on a replica holding
    /// the exact predecessor state.
    fn apply_delta(&mut self, _delta: &[u8]) -> Result<(), SemError> {
        Err(SemError::DeltaUnsupported)
    }

    // ---- optional chunked-state API (default: full-state fallback) ----
    //
    // Classes whose state is dominated by bulk content (package files)
    // can keep that content in the per-runtime content-addressed
    // [`crate::chunks::ChunkStore`] and describe themselves as a small
    // *skeleton* plus an ordered chunk manifest. Replication protocols
    // then propagate versions compactly: announce the manifest, ship
    // only chunks the receiver lacks. The defaults opt a class out —
    // protocols fall back to full state transfer.

    /// Hands the class the runtime's shared chunk store. Called once by
    /// the runtime right after instantiation, before any state is
    /// installed. Classes that don't use chunked state ignore it.
    fn attach_chunk_store(&mut self, _store: &crate::chunks::ChunkStoreRef) {}

    /// Serializes the object as `(skeleton, manifest)`: a small
    /// structural blob referencing chunks by manifest index, plus the
    /// ordered chunk references resolving those indexes. All manifest
    /// chunks are retained in the attached store. `None` when the class
    /// keeps no chunked state.
    fn save_chunked(&self) -> Option<(Vec<u8>, Vec<crate::chunks::ChunkRef>)> {
        None
    }

    /// Replaces the object state from a skeleton + manifest pair whose
    /// chunks are all present in the attached store (the protocol layer
    /// guarantees that before calling).
    fn restore_chunked(
        &mut self,
        _skeleton: &[u8],
        _manifest: &[crate::chunks::ChunkRef],
    ) -> Result<(), SemError> {
        Err(SemError::ChunksUnsupported)
    }
}

/// FNV-1a, the default state-digest hash (speed over collision
/// resistance: a collision only costs one skipped persistence write of
/// identical-looking state, never correctness of replication).
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A class descriptor in the implementation repository: how to make a
/// blank instance, plus interface metadata the runtime needs without an
/// instance (proxies classify methods they never execute locally).
pub struct ClassSpec {
    /// Human-readable class name (diagnostics only).
    pub name: &'static str,
    /// Creates a blank semantics subobject.
    pub factory: fn() -> Box<dyn SemanticsObject>,
    /// Classifies a method as read or write; `None` if unknown.
    pub kind_of: fn(MethodId) -> Option<MethodKind>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_round_trip() {
        let inv = Invocation::new(MethodId(7), vec![1, 2, 3]);
        let mut w = WireWriter::new();
        inv.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(Invocation::decode(&mut r).unwrap(), inv);
        r.expect_end().unwrap();
        assert_eq!(inv.size(), 11);
    }

    #[test]
    fn size_matches_encoded_length() {
        for args in [vec![], vec![0u8], vec![7u8; 1000]] {
            let inv = Invocation::new(MethodId(9), args);
            let mut w = WireWriter::new();
            inv.encode(&mut w);
            assert_eq!(inv.size(), w.finish().len());
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut r = WireReader::new(&[0, 0]);
        assert!(Invocation::decode(&mut r).is_err());
    }

    #[test]
    fn sem_error_display() {
        assert!(SemError::NoSuchMethod(MethodId(3))
            .to_string()
            .contains('3'));
        assert!(SemError::Application("boom".into())
            .to_string()
            .contains("boom"));
        assert!(SemError::BadState.to_string().contains("state"));
    }
}
