//! End-to-end tests of the Globe Location Service running in a simulated
//! world: registration, locality-aware lookup, pointer maintenance,
//! datagram-loss retries, persistence across crashes and subnode
//! partitioning.

use std::sync::Arc;

use globe_gls::{
    ContactAddress, DirectoryNode, GlsClient, GlsConfig, GlsDeployment, GlsError, GlsEvent, Level,
    ObjectId,
};
use globe_net::{
    impl_service_any, ports, ConnEvent, ConnId, Endpoint, HostId, NetParams, Service, ServiceCtx,
    Topology, World,
};
use globe_sim::{SimDuration, SimTime};

/// A scripted driver embedding a `GlsClient`: executes a queue of
/// operations sequentially and records every completion event.
struct Driver {
    gls: GlsClient,
    script: Vec<DriverOp>,
    results: Vec<GlsEvent>,
    cursor: usize,
}

#[derive(Clone)]
enum DriverOp {
    Insert(ObjectId, ContactAddress, Level),
    Lookup(ObjectId),
    Delete(ObjectId, ContactAddress, Level),
}

impl Driver {
    fn new(deploy: Arc<GlsDeployment>, host: HostId, script: Vec<DriverOp>) -> Driver {
        Driver {
            gls: GlsClient::new(deploy, host, 1),
            script,
            results: Vec::new(),
            cursor: 0,
        }
    }

    fn kick(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.cursor >= self.script.len() {
            return;
        }
        let token = self.cursor as u64;
        match self.script[self.cursor].clone() {
            DriverOp::Insert(oid, addr, lvl) => self.gls.insert(ctx, oid, addr, lvl, token),
            DriverOp::Lookup(oid) => self.gls.lookup(ctx, oid, token),
            DriverOp::Delete(oid, addr, lvl) => self.gls.delete(ctx, oid, addr, lvl, token),
        }
        self.cursor += 1;
    }

    fn drive(&mut self, ctx: &mut ServiceCtx<'_>) {
        let events = self.gls.take_events();
        let progressed = !events.is_empty();
        self.results.extend(events);
        if progressed {
            self.kick(ctx);
        }
    }
}

impl Service for Driver {
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        self.kick(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.gls.handle_datagram(ctx, from, &payload) {
            self.drive(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.gls.handle_timer(ctx, token) {
            self.drive(ctx);
        }
    }
    fn on_conn_event(&mut self, _ctx: &mut ServiceCtx<'_>, _c: ConnId, _e: ConnEvent) {}
    impl_service_any!();
}

fn addr_on(host: HostId) -> ContactAddress {
    ContactAddress::new(Endpoint::new(host, ports::GRP), 1, 1)
}

fn build(world_seed: u64, cfg: GlsConfig) -> (World, Arc<GlsDeployment>) {
    // 2 regions × 2 countries × 2 sites × 3 hosts = 24 hosts.
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), world_seed);
    let deploy = GlsDeployment::plan(world.topology(), &cfg);
    deploy.install(&mut world);
    (world, deploy)
}

fn run_driver(world: &mut World, host: HostId, script: Vec<DriverOp>, deploy: &Arc<GlsDeployment>) {
    world.add_service(
        host,
        ports::DRIVER,
        Driver::new(Arc::clone(deploy), host, script),
    );
}

fn results(world: &World, host: HostId) -> &[GlsEvent] {
    &world
        .service::<Driver>(host, ports::DRIVER)
        .expect("driver installed")
        .results
}

#[test]
fn register_then_lookup_from_same_site() {
    let (mut world, deploy) = build(1, GlsConfig::default());
    let replica_host = HostId(2); // same site as host 0..2
    let client_host = HostId(0);
    let oid = ObjectId(0xABCD);
    run_driver(
        &mut world,
        client_host,
        vec![
            DriverOp::Insert(oid, addr_on(replica_host), Level::Site),
            DriverOp::Lookup(oid),
        ],
        &deploy,
    );
    world.start();
    world.run_to_quiescence();
    let rs = results(&world, client_host);
    assert_eq!(rs.len(), 2);
    match &rs[1] {
        GlsEvent::LookupDone { result, hops, .. } => {
            assert_eq!(result.as_ref().unwrap(), &vec![addr_on(replica_host)]);
            // Same-site lookup resolves at the leaf node: 1 hop.
            assert_eq!(*hops, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn lookup_cost_grows_with_distance() {
    // Replica in site 0 (host 0); clients at increasing distance.
    // Distances: same site (host 1), same country (host 3+),
    // same region other country, other region.
    let (mut world, deploy) = build(2, GlsConfig::default());
    let oid = ObjectId(0x1234_5678);
    let replica = addr_on(HostId(0));

    // Host indices in Topology::grid(2,2,2,3): host = ((r*2+c)*2+s)*3+h.
    let same_site = HostId(1);
    let same_country = HostId(3); // r0 c0 s1
    let same_region = HostId(6); // r0 c1 s0
    let other_region = HostId(12); // r1 c0 s0

    run_driver(
        &mut world,
        HostId(2),
        vec![DriverOp::Insert(oid, replica, Level::Site)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));

    for host in [same_site, same_country, same_region, other_region] {
        run_driver(&mut world, host, vec![DriverOp::Lookup(oid)], &deploy);
    }
    world.run_to_quiescence();

    let mut hops_by_distance = Vec::new();
    let mut latency_by_distance = Vec::new();
    for host in [same_site, same_country, same_region, other_region] {
        match &results(&world, host)[0] {
            GlsEvent::LookupDone {
                result,
                hops,
                latency,
                ..
            } => {
                assert!(result.is_ok(), "lookup from {host:?} failed: {result:?}");
                hops_by_distance.push(*hops);
                latency_by_distance.push(*latency);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // The paper's claim (§3.5): cost proportional to distance to the
    // nearest replica. Hops and latency must be strictly increasing.
    for w in hops_by_distance.windows(2) {
        assert!(w[0] < w[1], "hops not increasing: {hops_by_distance:?}");
    }
    for w in latency_by_distance.windows(2) {
        assert!(
            w[0] < w[1],
            "latency not increasing: {latency_by_distance:?}"
        );
    }
}

#[test]
fn lookup_unknown_object_is_not_found() {
    let (mut world, deploy) = build(3, GlsConfig::default());
    run_driver(
        &mut world,
        HostId(0),
        vec![DriverOp::Lookup(ObjectId(0xDEAD))],
        &deploy,
    );
    world.start();
    world.run_to_quiescence();
    match &results(&world, HostId(0))[0] {
        GlsEvent::LookupDone { result, hops, .. } => {
            assert_eq!(result.as_ref().unwrap_err(), &GlsError::NotFound);
            // Climbed all four levels: site, country, region, root.
            assert_eq!(*hops, 4);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn delete_removes_registration_and_pointers() {
    let (mut world, deploy) = build(4, GlsConfig::default());
    let oid = ObjectId(0xFEED);
    let a = addr_on(HostId(0));
    run_driver(
        &mut world,
        HostId(0),
        vec![
            DriverOp::Insert(oid, a, Level::Site),
            DriverOp::Delete(oid, a, Level::Site),
            DriverOp::Lookup(oid),
        ],
        &deploy,
    );
    world.start();
    world.run_to_quiescence();
    let rs = results(&world, HostId(0));
    assert_eq!(rs.len(), 3);
    assert!(matches!(
        &rs[2],
        GlsEvent::LookupDone {
            result: Err(GlsError::NotFound),
            ..
        }
    ));
    // All directory nodes are empty again (pointer path shrank).
    for dom in deploy.domain_ids() {
        for ep in deploy.subnodes(dom) {
            let node = world
                .service::<DirectoryNode>(ep.host, ep.port)
                .expect("node installed");
            assert_eq!(
                node.num_entries(),
                0,
                "entries left at {}",
                deploy.name(dom)
            );
        }
    }
}

#[test]
fn multiple_replicas_returns_the_near_one() {
    // Replicas in both regions; a client in region 1 must resolve to the
    // region-1 replica without ever seeing region 0's.
    let (mut world, deploy) = build(5, GlsConfig::default());
    let oid = ObjectId(0xC0FFEE);
    let replica_r0 = addr_on(HostId(0));
    let replica_r1 = addr_on(HostId(12));
    run_driver(
        &mut world,
        HostId(0),
        vec![DriverOp::Insert(oid, replica_r0, Level::Site)],
        &deploy,
    );
    run_driver(
        &mut world,
        HostId(12),
        vec![DriverOp::Insert(oid, replica_r1, Level::Site)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));
    run_driver(&mut world, HostId(13), vec![DriverOp::Lookup(oid)], &deploy);
    world.run_to_quiescence();
    match &results(&world, HostId(13))[0] {
        GlsEvent::LookupDone { result, hops, .. } => {
            assert_eq!(result.as_ref().unwrap(), &vec![replica_r1]);
            // Resolved inside the site: the replica is in the client's
            // own leaf domain.
            assert_eq!(*hops, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn lookup_ranks_addrs_by_distance_from_requester() {
    // Two country-level replicas in different sites of country 0. A
    // multi-address reply must lead with the replica nearest the
    // *requester*, whichever site it asks from — the candidate-set
    // client binds to the head of this list when health is even.
    let (mut world, deploy) = build(11, GlsConfig::default());
    let oid = ObjectId(0xD15C0);
    let replica_s0 = addr_on(HostId(0)); // site 0 of country 0
    let replica_s1 = addr_on(HostId(3)); // site 1 of country 0
    run_driver(
        &mut world,
        HostId(0),
        vec![DriverOp::Insert(oid, replica_s0, Level::Country)],
        &deploy,
    );
    run_driver(
        &mut world,
        HostId(3),
        vec![DriverOp::Insert(oid, replica_s1, Level::Country)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));
    run_driver(&mut world, HostId(4), vec![DriverOp::Lookup(oid)], &deploy);
    run_driver(&mut world, HostId(1), vec![DriverOp::Lookup(oid)], &deploy);
    world.run_to_quiescence();
    match &results(&world, HostId(4))[0] {
        GlsEvent::LookupDone { result, .. } => {
            // Host 4 shares a site with the host-3 replica.
            assert_eq!(result.as_ref().unwrap(), &vec![replica_s1, replica_s0]);
        }
        other => panic!("unexpected {other:?}"),
    }
    match &results(&world, HostId(1))[0] {
        GlsEvent::LookupDone { result, .. } => {
            // Host 1 shares a site with the host-0 replica.
            assert_eq!(result.as_ref().unwrap(), &vec![replica_s0, replica_s1]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn survives_datagram_loss_via_retries() {
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default().with_datagram_loss(0.25), 42);
    let deploy = GlsDeployment::plan(world.topology(), &GlsConfig::default());
    deploy.install(&mut world);
    let oid = ObjectId(0xA5A5);
    run_driver(
        &mut world,
        HostId(0),
        vec![
            DriverOp::Insert(oid, addr_on(HostId(0)), Level::Site),
            DriverOp::Lookup(oid),
        ],
        &deploy,
    );
    world.start();
    world.run_until(SimTime::from_secs(60));
    let rs = results(&world, HostId(0));
    // With 25% loss and 4 attempts per op the sequence completes with
    // overwhelming probability at this seed; what matters is that no
    // event is silently dropped.
    assert_eq!(rs.len(), 2, "events: {rs:?}");
}

#[test]
fn persistence_recovers_after_crash() {
    let (mut world, deploy) = build(7, GlsConfig::default().with_persistence());
    let oid = ObjectId(0xBEEF);
    run_driver(
        &mut world,
        HostId(1),
        vec![DriverOp::Insert(oid, addr_on(HostId(0)), Level::Site)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));

    // Crash every directory-node host, then recover.
    let node_hosts: std::collections::BTreeSet<HostId> = deploy
        .domain_ids()
        .flat_map(|d| {
            deploy
                .subnodes(d)
                .iter()
                .map(|e| e.host)
                .collect::<Vec<_>>()
        })
        .collect();
    for &h in &node_hosts {
        world.crash_host(h);
    }
    world.run_for(SimDuration::from_secs(1));
    for &h in &node_hosts {
        world.recover_host(h);
    }
    world.run_for(SimDuration::from_secs(1));

    // A fresh client still finds the object.
    run_driver(&mut world, HostId(3), vec![DriverOp::Lookup(oid)], &deploy);
    world.run_to_quiescence();
    match &results(&world, HostId(3))[0] {
        GlsEvent::LookupDone { result, .. } => {
            assert_eq!(result.as_ref().unwrap(), &vec![addr_on(HostId(0))]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn without_persistence_crash_loses_registrations() {
    let (mut world, deploy) = build(8, GlsConfig::default());
    let oid = ObjectId(0xB0B0);
    run_driver(
        &mut world,
        HostId(1),
        vec![DriverOp::Insert(oid, addr_on(HostId(0)), Level::Site)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));
    let node_hosts: std::collections::BTreeSet<HostId> = deploy
        .domain_ids()
        .flat_map(|d| {
            deploy
                .subnodes(d)
                .iter()
                .map(|e| e.host)
                .collect::<Vec<_>>()
        })
        .collect();
    for &h in &node_hosts {
        world.crash_host(h);
        world.recover_host(h);
    }
    run_driver(&mut world, HostId(3), vec![DriverOp::Lookup(oid)], &deploy);
    world.run_to_quiescence();
    assert!(matches!(
        &results(&world, HostId(3))[0],
        GlsEvent::LookupDone {
            result: Err(GlsError::NotFound),
            ..
        }
    ));
}

#[test]
fn root_partitioning_spreads_load() {
    // Many objects registered in region 0, looked up from region 1 so
    // every lookup crosses the root. With 4 root subnodes the load must
    // spread across all of them.
    let topo = Topology::grid(2, 2, 2, 3);
    let mut world = World::new(topo, NetParams::default(), 9);
    let cfg = GlsConfig::default().with_root_subnodes(4);
    let deploy = GlsDeployment::plan(world.topology(), &cfg);
    deploy.install(&mut world);

    let mut script_insert = Vec::new();
    let mut script_lookup = Vec::new();
    for i in 0..64u128 {
        let oid = ObjectId(0x1000 + i * 7919);
        script_insert.push(DriverOp::Insert(oid, addr_on(HostId(0)), Level::Site));
        script_lookup.push(DriverOp::Lookup(oid));
    }
    run_driver(&mut world, HostId(0), script_insert, &deploy);
    world.start();
    world.run_for(SimDuration::from_secs(30));
    run_driver(&mut world, HostId(12), script_lookup, &deploy);
    world.run_to_quiescence();

    // Lookups all succeeded.
    let rs = results(&world, HostId(12));
    assert_eq!(rs.len(), 64);
    for r in rs {
        assert!(
            matches!(r, GlsEvent::LookupDone { result: Ok(_), .. }),
            "{r:?}"
        );
    }
    // Each root subnode carried some of the load.
    let root = deploy.root();
    let loads: Vec<u64> = deploy
        .subnodes(root)
        .iter()
        .map(|ep| {
            world
                .service::<DirectoryNode>(ep.host, ep.port)
                .expect("root subnode")
                .stats
                .total()
        })
        .collect();
    assert_eq!(loads.len(), 4);
    for (i, &l) in loads.iter().enumerate() {
        assert!(l > 0, "root subnode {i} idle: {loads:?}");
    }
}

#[test]
fn mobile_store_level_keeps_lookups_at_country() {
    // Store at country level (the paper's mobile-object optimization):
    // lookups from another site in the same country resolve at the
    // country node, even though no leaf has the address.
    let (mut world, deploy) = build(10, GlsConfig::default());
    let oid = ObjectId(0x5EED);
    run_driver(
        &mut world,
        HostId(0),
        vec![DriverOp::Insert(oid, addr_on(HostId(0)), Level::Country)],
        &deploy,
    );
    world.start();
    world.run_for(SimDuration::from_secs(2));
    run_driver(&mut world, HostId(3), vec![DriverOp::Lookup(oid)], &deploy);
    world.run_to_quiescence();
    match &results(&world, HostId(3))[0] {
        GlsEvent::LookupDone { result, hops, .. } => {
            assert!(result.is_ok());
            // Site (miss) + country (hit) = 2 hops; no descent needed.
            assert_eq!(*hops, 2);
        }
        other => panic!("unexpected {other:?}"),
    }
}
