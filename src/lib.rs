//! # Globe Distribution Network — a full reproduction in Rust
//!
//! This facade crate re-exports the whole system built for the
//! reproduction of *The Globe Distribution Network* (Bakker et al.,
//! USENIX 2000): an application for worldwide distribution of free
//! software, built on middleware whose distinguishing feature is
//! **per-object replication** — every distributed shared object carries
//! its own replication scenario.
//!
//! ## Layer map
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel (virtual time, RNG, metrics) |
//! | [`net`] | simulated wide-area network: topology tiers, datagrams, streams, crashes |
//! | [`crypto`] | SHA-256/HMAC/ChaCha20, Schnorr certificates, the gTLS channel |
//! | [`gls`] | Globe Location Service: object id → contact addresses, locality-aware |
//! | [`gns`] | Globe Name Service on a DNS substrate: name → object id |
//! | [`rts`] | the Globe runtime: DSOs, subobjects, the typed interface layer, replication protocols, binding, object servers, and the `GlobeClient` operation layer |
//! | [`gdn`] | the GDN application: package + catalog DSOs, HTTPDs, moderator tool, browsers |
//! | [`workloads`] | Zipf traces, load generators, scenario policies, adaptation |
//!
//! ## Defining a DSO class
//!
//! A distributed shared object class is one declaration: typed
//! argument/result structs ([`rts::interface::WireCodec`] via
//! `wire_struct!`), handler methods on the semantics type, and a
//! `dso_interface!` block. Method ids, the read/write table, client-side
//! marshalling ([`rts::MethodDef`]) and server-side dispatch all derive
//! from it — see `globe::gdn::catalog` for a complete class in one file.
//!
//! ```
//! use globe::gdn::package::{AddFile, GetFile, PackageInterface};
//! use globe::rts::{MethodKind, SemanticsObject, WireCodec};
//!
//! // Client side: the typed method definitions marshal invocations...
//! let inv = PackageInterface::ADD_FILE.invocation(&AddFile {
//!     name: "README".into(),
//!     data: b"hello".to_vec(),
//! });
//! assert_eq!(PackageInterface::ADD_FILE.kind(), MethodKind::Write);
//!
//! // ...and the generated dispatch executes them on the semantics
//! // subobject (in deployments this happens at a replica, reached
//! // through a TypedProxy over the runtime).
//! let mut pkg = globe::gdn::PackageDso::new();
//! pkg.dispatch(&inv).unwrap();
//! let raw = pkg
//!     .dispatch(&PackageInterface::GET_FILE.invocation(&GetFile { name: "README".into() }))
//!     .unwrap();
//! let blob = PackageInterface::GET_FILE.decode_result(&raw).unwrap();
//! assert_eq!(blob.verified().unwrap(), b"hello");
//! ```
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` — publish a package and download it from
//! the other side of the (simulated) world; inside the HTTPD each
//! request runs as one typed [`rts::GlobeClient`] operation (resolve →
//! bind → invoke → retry, one [`rts::OpDone`] completion):
//!
//! ```
//! use globe::gdn::{Browser, GdnDeployment, GdnOptions, ModOp, Scenario};
//! use globe::net::{ports, HostId, NetParams, Topology, World};
//! use globe::sim::SimDuration;
//!
//! let topo = Topology::grid(2, 1, 1, 2);
//! let mut world = World::new(topo, NetParams::default(), 7);
//! let gdn = GdnDeployment::install(&mut world, GdnOptions::default());
//!
//! let gos = gdn.gos_endpoints[0];
//! let tool = gdn.moderator_tool(
//!     world.topology(),
//!     HostId(1),
//!     "alice",
//!     vec![ModOp::Publish {
//!         name: "/apps/hello".into(),
//!         description: "hello".into(),
//!         files: vec![("hello.txt".into(), b"hi world".to_vec())],
//!         scenario: Scenario::single(gos),
//!     }],
//! );
//! world.add_service(HostId(1), ports::DRIVER, tool);
//! world.start();
//! world.run_for(SimDuration::from_secs(30));
//!
//! let user = HostId(3);
//! let httpd = gdn.httpd_for(world.topology(), user);
//! let browser = Browser::new(httpd, vec!["/pkg/apps/hello?file=hello.txt".into()])
//!     .keeping_bodies();
//! world.add_service(user, ports::DRIVER, browser);
//! world.run_for(SimDuration::from_secs(60));
//! let b = world.service::<Browser>(user, ports::DRIVER).unwrap();
//! assert_eq!(b.results[0].body, b"hi world");
//! ```

/// Deterministic simulation kernel.
pub use globe_sim as sim;

/// Simulated wide-area network and service runtime.
pub use globe_net as net;

/// Cryptography substrate and the gTLS secure channel.
pub use globe_crypto as crypto;

/// The Globe Location Service.
pub use globe_gls as gls;

/// The Globe Name Service and its DNS substrate.
pub use globe_gns as gns;

/// The Globe runtime: distributed shared objects and object servers.
pub use globe_rts as rts;

/// The GDN application.
pub use gdn_core as gdn;

/// Workload synthesis and replication policies.
pub use globe_workloads as workloads;
