//! The package catalog: a synthetic population of software packages
//! standing in for the department web trace of [Pierre et al. 1999]
//! (see DESIGN.md §2 — the original trace is not available).
//!
//! Each package gets a popularity rank (request shares are Zipf over
//! ranks), an update rate class, a "home" region (where its maintainer
//! publishes from), and a characteristic file size. The catalog is the
//! shared input to the replication-policy experiments (E3/E7).

use gdn_core::{ModOp, Scenario};
use globe_net::{Endpoint, Topology};
use globe_rts::PropagationMode;
use globe_sim::Rng;

use crate::policy::{scenario_for, ObjectProfile, ScenarioPolicy};

/// One synthetic package.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Globe object name, e.g. `/apps/pkg17`.
    pub name: String,
    /// Popularity rank (0 = hottest).
    pub rank: usize,
    /// Mean updates per simulated hour.
    pub updates_per_hour: f64,
    /// Size of the package's main file, bytes.
    pub file_size: usize,
    /// Index of the home region.
    pub home_region: usize,
}

/// Catalog generation parameters.
#[derive(Clone, Debug)]
pub struct CatalogSpec {
    /// Number of packages.
    pub num_packages: usize,
    /// Fraction of packages that are frequently updated (the "news
    /// page" class of the Pierre et al. study).
    pub hot_update_fraction: f64,
    /// Updates per hour for the frequently updated class.
    pub hot_update_rate: f64,
    /// Updates per hour for the stable class.
    pub cold_update_rate: f64,
    /// Small-file size (docs, sources).
    pub small_size: usize,
    /// Large-file size (tarballs).
    pub large_size: usize,
    /// Fraction of packages with a large main file.
    pub large_fraction: f64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            num_packages: 50,
            hot_update_fraction: 0.2,
            hot_update_rate: 12.0,
            cold_update_rate: 0.2,
            small_size: 8 * 1024,
            large_size: 256 * 1024,
            large_fraction: 0.3,
        }
    }
}

/// Generates a catalog.
pub fn generate(spec: &CatalogSpec, topo: &Topology, rng: &mut Rng) -> Vec<CatalogEntry> {
    let regions = topo.num_regions().max(1);
    (0..spec.num_packages)
        .map(|i| {
            let hot_update = rng.gen_bool(spec.hot_update_fraction);
            let large = rng.gen_bool(spec.large_fraction);
            CatalogEntry {
                name: format!("/apps/pkg{i}"),
                rank: i,
                updates_per_hour: if hot_update {
                    spec.hot_update_rate
                } else {
                    spec.cold_update_rate
                },
                file_size: if large {
                    spec.large_size
                } else {
                    spec.small_size
                },
                home_region: i % regions,
            }
        })
        .collect()
}

/// Builds the publish operations installing the catalog under `policy`,
/// with eager-push scenarios propagating in `mode`.
///
/// `gos_by_region[r]` lists object-server endpoints in region `r`; the
/// first is the region's primary.
pub fn publish_ops(
    catalog: &[CatalogEntry],
    policy: ScenarioPolicy,
    mode: PropagationMode,
    gos_by_region: &[Vec<Endpoint>],
) -> Vec<ModOp> {
    catalog
        .iter()
        .map(|e| {
            let profile =
                ObjectProfile::new(e.rank, e.updates_per_hour, e.home_region).with_mode(mode);
            let scenario: Scenario = scenario_for(policy, &profile, gos_by_region);
            ModOp::Publish {
                name: e.name.clone(),
                description: format!("synthetic package {}", e.name),
                files: vec![("pkg.tar".into(), vec![0x5A; e.file_size])],
                scenario,
            }
        })
        .collect()
}

/// Groups a deployment's object servers by region.
pub fn gos_by_region(topo: &Topology, gos_endpoints: &[Endpoint]) -> Vec<Vec<Endpoint>> {
    let mut by_region = vec![Vec::new(); topo.num_regions()];
    for &ep in gos_endpoints {
        by_region[topo.region_of_host(ep.host).0 as usize].push(ep);
    }
    by_region
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_complete() {
        let topo = Topology::grid(2, 1, 1, 2);
        let spec = CatalogSpec {
            num_packages: 20,
            ..CatalogSpec::default()
        };
        let a = generate(&spec, &topo, &mut Rng::new(5));
        let b = generate(&spec, &topo, &mut Rng::new(5));
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.file_size, y.file_size);
            assert_eq!(x.updates_per_hour, y.updates_per_hour);
        }
        // Home regions alternate.
        assert_eq!(a[0].home_region, 0);
        assert_eq!(a[1].home_region, 1);
    }

    #[test]
    fn publish_ops_cover_catalog() {
        let topo = Topology::grid(2, 1, 1, 2);
        let catalog = generate(&CatalogSpec::default(), &topo, &mut Rng::new(1));
        let gos = vec![
            vec![Endpoint::new(globe_net::HostId(0), 700)],
            vec![Endpoint::new(globe_net::HostId(1), 700)],
        ];
        let ops = publish_ops(
            &catalog,
            ScenarioPolicy::Central,
            PropagationMode::PushState,
            &gos,
        );
        assert_eq!(ops.len(), catalog.len());
        match &ops[0] {
            ModOp::Publish { name, files, .. } => {
                assert_eq!(name, "/apps/pkg0");
                assert_eq!(files.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gos_grouping_by_region() {
        let topo = Topology::grid(2, 2, 1, 1);
        let eps = vec![
            Endpoint::new(globe_net::HostId(0), 700),
            Endpoint::new(globe_net::HostId(2), 700),
        ];
        let grouped = gos_by_region(&topo, &eps);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 1);
        assert_eq!(grouped[1].len(), 1);
    }
}
