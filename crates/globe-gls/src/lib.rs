//! The Globe Location Service (GLS).
//!
//! The GLS maps location-independent object identifiers to *contact
//! addresses* — where a distributed shared object's replicas live and
//! which replication protocol they speak (paper §3.4–3.5). Its design
//! goals, all reproduced here:
//!
//! - **Locality**: the Internet is organized into a hierarchy of domains
//!   ([`tree`]); an object with a replica near the client is found using
//!   only "local" communication, so lookup cost grows with the distance
//!   to the nearest replica (experiment E1).
//! - **No root bottleneck**: higher-level directory nodes are partitioned
//!   into subnodes by hashing the object id ([`ObjectId::subnode_index`]),
//!   each placeable on its own machine (experiment E2).
//! - **Forwarding-pointer trees** ([`node`]): each registration installs
//!   a path of pointers from the root toward the storing leaf; lookups
//!   climb until they hit the path and then descend.
//! - **UDP with retries** ([`client`], [`proto`]): the GLS is
//!   datagram-based for efficiency (paper §6.3) and clients retransmit on
//!   loss.
//! - **Crash recovery** ([`node`]): directory tables optionally persist
//!   to stable storage, the mechanism the paper's implementation was
//!   adding (§7).
//!
//! # Examples
//!
//! Planning and installing a GLS over a world, then resolving from an
//! embedded client, is exercised end-to-end in this crate's integration
//! tests (`tests/gls_world.rs`) and by the higher layers (`globe-rts`,
//! `gdn-core`).

pub mod client;
pub mod node;
pub mod proto;
pub mod tree;
pub mod types;

pub use client::{ns_token, owns_token, GlsClient, GlsEvent};
pub use node::{DirectoryNode, NodeStats};
pub use tree::{DomainId, GlsConfig, GlsDeployment};
pub use types::{ContactAddress, GlsError, Level, ObjectId, ADDR_FLAG_WRITES};
