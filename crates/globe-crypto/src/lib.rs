//! Cryptography substrate for the Globe Distribution Network
//! reproduction.
//!
//! The paper (§6.3) secures the GDN with TLS/SSL from JSSE: two-way
//! authenticated channels between GDN hosts, server-authenticated
//! channels toward users' machines, and BIND's TSIG for DNS updates.
//! This crate rebuilds that stack from scratch:
//!
//! - [`sha256`], [`hmac`], [`chacha20`] — real, test-vector-verified
//!   primitives (hashing, MACs, key derivation, bulk cipher).
//! - [`group`], [`sig`] — Schnorr signatures and Diffie–Hellman over a
//!   **simulation-grade 61-bit group**: the schemes are structurally
//!   real, the key size is deliberately small so that everything runs
//!   without a bignum library. Nothing here is secure against a real
//!   adversary; see the [`group`] module docs.
//! - [`cert`] — certificates, roles (user / moderator / administrator /
//!   maintainer, paper §2) and the GDN certification authority.
//! - [`gtls`] — the TLS-like channel: 1.5-round-trip handshake with
//!   one-way or two-way authentication, and a record layer in three
//!   modes (`Null`, `AuthOnly`, `AuthEncrypt`) so experiment E5 can
//!   quantify the paper's observation that SSL makes it "pay for
//!   confidentiality it does not need".
//! - [`channel`] — a per-connection session table for daemons.
//!
//! Every operation charges *virtual CPU time* through
//! [`gtls::CostModel`], calibrated to late-1990s hardware, so security
//! overhead shows up on the simulated timeline exactly where the paper
//! worried it would.

pub mod cert;
pub mod chacha20;
pub mod channel;
pub mod group;
pub mod gtls;
pub mod hmac;
pub mod sha256;
pub mod sig;

pub use cert::{CertAuthority, CertError, Certificate, Credentials, Role};
pub use channel::SecureChannels;
pub use gtls::{CostModel, Mode, TlsConfig, TlsError, TlsEvent, TlsOutput, TlsSession};
pub use sig::{PublicKey, SecretKey, Signature};
