//! Virtual time: instants and durations measured in integer nanoseconds.
//!
//! All timing in the simulator is virtual. Using integers (rather than
//! floating point) guarantees that event ordering is exact, associative and
//! identical on every platform, which the reproducibility of the
//! experiments depends on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of a simulation.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`] when a
/// simulation is created. Arithmetic with [`SimDuration`] saturates on
/// underflow of subtraction through [`SimTime::saturating_sub`]; plain `-`
/// panics on underflow like std integer arithmetic in debug builds.
///
/// # Examples
///
/// ```
/// use globe_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use globe_sim::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis(), 1); // truncating conversion
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the instant as nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the instant as fractional seconds, for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    #[inline]
    pub fn saturating_sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Returns the duration as raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration as fractional seconds, for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction of two durations.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}.{:03}us", ns / 1_000, ns % 1_000)
        } else if ns < 1_000_000_000 {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t1.saturating_sub(t0).as_millis(), 5);
        assert_eq!(t0.saturating_sub(t1), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros(4) * 3,
            SimDuration::from_micros(12)
        );
        assert_eq!(
            SimDuration::from_micros(12) / 3,
            SimDuration::from_micros(4)
        );
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2500).to_string(), "2.500s");
        assert_eq!(format!("{:?}", SimTime::from_millis(1)), "T+1.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
    }
}
