//! The GDN-enabled HTTPD: the users' access point to the GDN (paper §4).
//!
//! "We use URLs that have embedded in them the name of a package DSO.
//! The GDN-HTTPD extracts this object name and binds to the DSO. The
//! HTTPD then invokes the appropriate method(s) ... For example, it
//! could call listContents() to obtain the list of files contained in
//! the package, which is subsequently reformatted into HTML and sent
//! back to the requesting browser. If the URL designates a particular
//! file in the package, the HTTPD calls the getFileContents() method and
//! sends back the returned content."
//!
//! URL scheme: `GET /pkg/<globe-name>` lists a package;
//! `GET /pkg/<globe-name>?file=<name>` downloads one file.
//!
//! The same service type doubles as the paper's *GDN-enabled proxy
//! server* when instantiated on a user's machine with anonymous
//! credentials — the architecture is identical, only the certificates
//! differ.

use std::collections::BTreeMap;

use globe_gls::ObjectId;
use globe_gns::{GnsClient, GnsDeployment, GnsError, GnsEvent};
use globe_net::{
    impl_service_any, ConnEvent, ConnId, Endpoint, Service, ServiceCtx,
};
use globe_rts::{BindError, GlobeRuntime, InvokeError, RtConn, RtEvent};
use globe_sim::{SimDuration, SimTime};

use crate::http::{HttpRequest, HttpResponse};
use crate::package::PackageControl;

/// Load counters for one HTTPD.
#[derive(Clone, Copy, Debug, Default)]
pub struct HttpdStats {
    /// HTTP requests received.
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Requests that skipped name resolution (local name cache).
    pub name_cache_hits: u64,
}

#[derive(Debug)]
struct PendingReq {
    conn: ConnId,
    name: String,
    file: Option<String>,
    oid: Option<ObjectId>,
    started: SimTime,
    /// Rebind attempts used for this request (replica failover).
    attempts: u32,
}

/// The GDN-enabled HTTPD service.
pub struct GdnHttpd {
    /// The embedded Globe runtime (public for experiments: its local
    /// representatives are the paper's "LR installed in the GDN-HTTPD").
    pub runtime: GlobeRuntime,
    gns: GnsClient,
    /// Stable name→OID bindings (paper §5: mappings are stable, so
    /// caching them aggressively is sound).
    name_cache: BTreeMap<String, ObjectId>,
    requests: BTreeMap<u64, PendingReq>,
    next_token: u64,
    /// When each object was last bound; bindings older than
    /// `bind_refresh` are re-resolved against the GLS so newly created
    /// replicas become visible (paper §3.1: scenarios adapt to
    /// popularity changes — clients must notice).
    bind_times: BTreeMap<u128, SimTime>,
    bind_refresh: SimDuration,
    /// Load counters.
    pub stats: HttpdStats,
}

impl GdnHttpd {
    /// Creates an HTTPD with an embedded runtime and a GNS client
    /// resolving via the host's site resolver.
    pub fn new(
        runtime: GlobeRuntime,
        gns_deploy: &GnsDeployment,
        topo: &globe_net::Topology,
        host: globe_net::HostId,
        gns_ns: u16,
    ) -> GdnHttpd {
        GdnHttpd {
            runtime,
            gns: GnsClient::new(gns_deploy, topo, host, gns_ns),
            name_cache: BTreeMap::new(),
            requests: BTreeMap::new(),
            next_token: 1,
            bind_times: BTreeMap::new(),
            bind_refresh: SimDuration::from_secs(30),
            stats: HttpdStats::default(),
        }
    }

    /// Overrides how long a binding is trusted before the GLS is asked
    /// again (default 30 s).
    pub fn with_bind_refresh(mut self, d: SimDuration) -> GdnHttpd {
        self.bind_refresh = d;
        self
    }

    fn bind_fresh(&mut self, ctx: &mut ServiceCtx<'_>, oid: ObjectId, token: u64) {
        let stale = self
            .bind_times
            .get(&oid.0)
            .map(|&t| ctx.now().saturating_sub(t) > self.bind_refresh)
            .unwrap_or(false);
        if stale && self.runtime.is_bound(oid) {
            self.runtime.unbind(ctx, oid);
            self.bind_times.remove(&oid.0);
        }
        if !self.runtime.is_bound(oid) {
            self.bind_times.insert(oid.0, ctx.now());
        }
        self.runtime.bind(ctx, oid, token);
    }

    fn respond(&mut self, ctx: &mut ServiceCtx<'_>, token: u64, status: u16, ctype: &str, body: &[u8]) {
        let Some(req) = self.requests.remove(&token) else {
            return;
        };
        if status == 200 {
            self.stats.ok += 1;
        } else {
            self.stats.errors += 1;
        }
        let latency = ctx.now().saturating_sub(req.started);
        ctx.metrics().record("httpd.response_us", latency.as_micros());
        ctx.metrics().inc(&format!("httpd.status.{status}"), 1);
        ctx.send(req.conn, HttpResponse::build(status, ctype, body));
        ctx.close(req.conn);
    }

    fn handle_http(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, data: &[u8]) {
        self.stats.requests += 1;
        ctx.metrics().inc("httpd.requests", 1);
        let Some(req) = HttpRequest::parse(data) else {
            ctx.send(
                conn,
                HttpResponse::build(400, "text/plain", b"malformed request"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        };
        let (route, query) = req.split_query();
        if req.method != "GET" {
            ctx.send(
                conn,
                HttpResponse::build(400, "text/plain", b"only GET is supported"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        }
        let Some(name) = route.strip_prefix("/pkg") else {
            if route == "/index.html" || route == "/" {
                let body = b"<html><body><h1>Globe Distribution Network</h1>\
                    <p>Fetch /pkg/&lt;package-name&gt; for a listing.</p></body></html>";
                ctx.send(conn, HttpResponse::build(200, "text/html", body));
                ctx.close(conn);
                self.stats.ok += 1;
                return;
            }
            ctx.send(
                conn,
                HttpResponse::build(404, "text/plain", b"unknown route"),
            );
            ctx.close(conn);
            self.stats.errors += 1;
            return;
        };
        let file = query
            .and_then(|q| q.strip_prefix("file="))
            .map(|f| f.to_owned());
        let token = self.next_token;
        self.next_token += 1;
        self.requests.insert(
            token,
            PendingReq {
                conn,
                name: name.to_owned(),
                file,
                oid: None,
                started: ctx.now(),
                attempts: 0,
            },
        );
        // Resolve the embedded object name (paper §4), consulting the
        // local name cache first.
        match self.name_cache.get(name).copied() {
            Some(oid) => {
                self.stats.name_cache_hits += 1;
                if let Some(r) = self.requests.get_mut(&token) {
                    r.oid = Some(oid);
                }
                self.bind_fresh(ctx, oid, token);
                self.drain(ctx);
            }
            None => {
                self.gns.resolve(ctx, name, token);
                self.drain_gns(ctx);
            }
        }
    }

    fn drain_gns(&mut self, ctx: &mut ServiceCtx<'_>) {
        for ev in self.gns.take_events() {
            let GnsEvent::Resolved { token, result, .. } = ev;
            match result {
                Ok(oid) => {
                    if let Some(req) = self.requests.get_mut(&token) {
                        req.oid = Some(oid);
                        let name = req.name.clone();
                        self.name_cache.insert(name, oid);
                        self.bind_fresh(ctx, oid, token);
                    }
                }
                Err(GnsError::Dns(_)) => {
                    self.respond(ctx, token, 404, "text/plain", b"no such package");
                }
                Err(e) => {
                    self.respond(ctx, token, 400, "text/plain", e.to_string().as_bytes());
                }
            }
        }
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut ServiceCtx<'_>) {
        // Loop: handling one event may synchronously produce the next
        // (bind hit → invoke → local cache hit → completion).
        loop {
            let events = self.runtime.take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                self.handle_rt_event(ctx, ev);
            }
        }
    }

    fn handle_rt_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: RtEvent) {
        {
            match ev {
                RtEvent::BindDone { token, result } => match result {
                    Ok(info) => {
                        let Some(req) = self.requests.get(&token) else {
                            return;
                        };
                        let inv = match &req.file {
                            Some(f) => PackageControl::get_file(f),
                            None => PackageControl::list_contents(),
                        };
                        self.runtime.invoke(ctx, info.oid, inv, token);
                    }
                    Err(BindError::NotFound) => {
                        // Stale name cache: the object vanished.
                        if let Some(req) = self.requests.get(&token) {
                            let name = req.name.clone();
                            self.name_cache.remove(&name);
                        }
                        self.respond(ctx, token, 404, "text/plain", b"package not available");
                    }
                    Err(e) => {
                        self.respond(ctx, token, 502, "text/plain", e.to_string().as_bytes());
                    }
                },
                RtEvent::InvokeDone { token, result } => match result {
                    Ok(data) => {
                        let Some(req) = self.requests.get(&token) else {
                            return;
                        };
                        match &req.file {
                            Some(_) => match PackageControl::decode_file(&data) {
                                Ok(contents) => {
                                    self.respond(
                                        ctx,
                                        token,
                                        200,
                                        "application/octet-stream",
                                        &contents,
                                    );
                                }
                                Err(_) => {
                                    self.respond(
                                        ctx,
                                        token,
                                        500,
                                        "text/plain",
                                        b"corrupt file payload",
                                    );
                                }
                            },
                            None => match PackageControl::decode_listing(&data) {
                                Ok(listing) => {
                                    let name = req.name.clone();
                                    let html = render_listing(&name, &listing);
                                    self.respond(ctx, token, 200, "text/html", html.as_bytes());
                                }
                                Err(_) => {
                                    self.respond(ctx, token, 500, "text/plain", b"corrupt listing");
                                }
                            },
                        }
                    }
                    Err(InvokeError::Sem(msg)) if msg.contains("no file") => {
                        self.respond(ctx, token, 404, "text/plain", msg.as_bytes());
                    }
                    Err(InvokeError::AccessDenied) => {
                        self.respond(ctx, token, 403, "text/plain", b"forbidden");
                    }
                    Err(InvokeError::Timeout) | Err(InvokeError::PeerUnreachable) => {
                        // The replica behind the current binding is
                        // unreachable. Re-bind: the GLS still lists every
                        // replica, and its random pointer descent finds a
                        // different (live) one — the paper's replication-
                        // for-availability put into practice at the
                        // client side.
                        ctx.metrics().inc("httpd.err.replica_unreachable", 1);
                        let retry = match self.requests.get_mut(&token) {
                            Some(req) if req.attempts < 3 => {
                                req.attempts += 1;
                                req.oid
                            }
                            _ => None,
                        };
                        match retry {
                            Some(oid) => {
                                ctx.metrics().inc("httpd.rebinds", 1);
                                self.runtime.unbind(ctx, oid);
                                self.bind_times.remove(&oid.0);
                                self.bind_fresh(ctx, oid, token);
                            }
                            None => {
                                self.respond(ctx, token, 504, "text/plain", b"replica unreachable");
                            }
                        }
                    }
                    Err(e) => {
                        self.respond(ctx, token, 502, "text/plain", e.to_string().as_bytes());
                    }
                },
                RtEvent::Registered { .. } | RtEvent::Deregistered { .. } => {}
            }
        }
    }
}

/// Renders a package listing as the paper describes: the contents list
/// "reformatted into HTML".
fn render_listing(name: &str, listing: &[crate::package::FileInfo]) -> String {
    use std::fmt::Write as _;
    let mut html = String::new();
    let _ = write!(
        html,
        "<html><head><title>{name}</title></head><body><h1>{name}</h1><ul>"
    );
    for f in listing {
        let _ = write!(
            html,
            "<li><a href=\"/pkg{name}?file={fname}\">{fname}</a> ({size} bytes)</li>",
            fname = f.name,
            size = f.size
        );
    }
    let _ = write!(html, "</ul></body></html>");
    html
}

impl Service for GdnHttpd {
    fn on_datagram(&mut self, ctx: &mut ServiceCtx<'_>, from: Endpoint, payload: Vec<u8>) {
        if self.runtime.handle_datagram(ctx, from, &payload) {
            self.drain(ctx);
            return;
        }
        if self.gns.handle_datagram(ctx, from, &payload) {
            self.drain_gns(ctx);
        }
    }

    fn on_conn_event(&mut self, ctx: &mut ServiceCtx<'_>, conn: ConnId, ev: ConnEvent) {
        match self.runtime.handle_conn_event(ctx, conn, ev) {
            RtConn::Consumed | RtConn::AppData { .. } => self.drain(ctx),
            RtConn::NotMine(ev) => match ev {
                ConnEvent::Msg(data) => self.handle_http(ctx, conn, &data),
                ConnEvent::Closed(_) => {
                    // Drop pending work for a browser that went away.
                    let stale: Vec<u64> = self
                        .requests
                        .iter()
                        .filter(|(_, r)| r.conn == conn)
                        .map(|(&t, _)| t)
                        .collect();
                    for t in stale {
                        self.requests.remove(&t);
                    }
                }
                ConnEvent::Incoming { .. } | ConnEvent::Opened => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        if self.runtime.handle_timer(ctx, token) {
            self.drain(ctx);
            return;
        }
        if self.gns.handle_timer(ctx, token) {
            self.drain_gns(ctx);
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.runtime.on_crash();
        self.requests.clear();
        self.name_cache.clear();
        self.bind_times.clear();
    }

    impl_service_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::FileInfo;

    #[test]
    fn listing_html_contains_links() {
        let listing = vec![
            FileInfo {
                name: "README".into(),
                size: 5,
                digest: [0; 32],
            },
            FileInfo {
                name: "gimp-1.0.tar".into(),
                size: 1_000_000,
                digest: [1; 32],
            },
        ];
        let html = render_listing("/apps/graphics/gimp", &listing);
        assert!(html.contains("<title>/apps/graphics/gimp</title>"));
        assert!(html.contains("href=\"/pkg/apps/graphics/gimp?file=README\""));
        assert!(html.contains("1000000 bytes"));
    }
}
