//! Wire protocol of the Globe Location Service.
//!
//! The GLS runs over unreliable datagrams (paper §6.3: "for efficiency
//! reasons this is based on UDP"); clients retry on timeout. Requests
//! travel node-to-node along the domain tree; whichever node resolves an
//! operation replies *directly* to the originating endpoint, carrying a
//! hop counter so experiments can observe how far a request travelled.

use globe_net::{Endpoint, HostId, WireError, WireReader, WireWriter};

use crate::tree::DomainId;
use crate::types::{ContactAddress, Level, ObjectId};

/// Outcome code carried in replies.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Operation succeeded / object found.
    Ok,
    /// Lookup reached the root without finding a registration.
    NotFound,
    /// A forwarding pointer led to a node with no entry (transient
    /// inconsistency, e.g. racing a delete).
    Inconsistent,
}

impl Status {
    fn tag(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::NotFound => 1,
            Status::Inconsistent => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Status, WireError> {
        Ok(match t {
            0 => Status::Ok,
            1 => Status::NotFound,
            2 => Status::Inconsistent,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Which mutating operation an [`GlsMsg::Ack`] acknowledges.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AckOp {
    /// Contact-address insertion.
    Insert,
    /// Contact-address deletion.
    Delete,
}

impl AckOp {
    fn tag(self) -> u8 {
        match self {
            AckOp::Insert => 1,
            AckOp::Delete => 2,
        }
    }

    fn from_tag(t: u8) -> Result<AckOp, WireError> {
        Ok(match t {
            1 => AckOp::Insert,
            2 => AckOp::Delete,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// All GLS datagram payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GlsMsg {
    /// Lookup climbing toward the root until an entry is found.
    LookupUp {
        /// Request id, echoed in the reply.
        req: u64,
        /// The object being located.
        oid: ObjectId,
        /// Where the final reply must go.
        origin: Endpoint,
        /// Directory nodes visited so far.
        hops: u32,
    },
    /// Lookup descending along forwarding pointers.
    LookupDown {
        /// Request id, echoed in the reply.
        req: u64,
        /// The object being located.
        oid: ObjectId,
        /// Where the final reply must go.
        origin: Endpoint,
        /// Directory nodes visited so far.
        hops: u32,
    },
    /// Register a contact address at the `store_level` ancestor domain.
    Insert {
        /// Request id, echoed in the acknowledgement.
        req: u64,
        /// The object being registered.
        oid: ObjectId,
        /// The address to store.
        addr: ContactAddress,
        /// Where the acknowledgement must go.
        origin: Endpoint,
        /// Domain level at which the address is stored (leaf by
        /// default; higher for the paper's mobile-object optimization).
        store_level: Level,
        /// Directory nodes visited so far.
        hops: u32,
    },
    /// Remove a previously registered contact address.
    Delete {
        /// Request id, echoed in the acknowledgement.
        req: u64,
        /// The object whose address is removed.
        oid: ObjectId,
        /// The address to remove.
        addr: ContactAddress,
        /// Where the acknowledgement must go.
        origin: Endpoint,
        /// Level the address was stored at.
        store_level: Level,
        /// Directory nodes visited so far.
        hops: u32,
    },
    /// Internal: child tells parent "I have an entry for `oid`".
    PointerAdd {
        /// The object the pointer is for.
        oid: ObjectId,
        /// The child domain that holds the entry.
        child: DomainId,
    },
    /// Internal: child tells parent "my entry for `oid` is gone".
    PointerDel {
        /// The object the pointer was for.
        oid: ObjectId,
        /// The child domain whose entry disappeared.
        child: DomainId,
    },
    /// Reply to a lookup.
    LookupResp {
        /// The request this answers.
        req: u64,
        /// Outcome.
        status: Status,
        /// Contact addresses (empty unless `status == Ok`).
        addrs: Vec<ContactAddress>,
        /// Total directory nodes visited.
        hops: u32,
    },
    /// Acknowledgement of an insert or delete.
    Ack {
        /// The request this answers.
        req: u64,
        /// Which operation completed.
        op: AckOp,
        /// Total directory nodes visited.
        hops: u32,
    },
}

const T_LOOKUP_UP: u8 = 1;
const T_LOOKUP_DOWN: u8 = 2;
const T_INSERT: u8 = 3;
const T_DELETE: u8 = 4;
const T_PTR_ADD: u8 = 5;
const T_PTR_DEL: u8 = 6;
const T_LOOKUP_RESP: u8 = 7;
const T_ACK: u8 = 8;

fn put_endpoint(w: &mut WireWriter, ep: Endpoint) {
    w.put_u32(ep.host.0);
    w.put_u16(ep.port);
}

fn get_endpoint(r: &mut WireReader<'_>) -> Result<Endpoint, WireError> {
    Ok(Endpoint::new(HostId(r.u32()?), r.u16()?))
}

impl GlsMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            GlsMsg::LookupUp {
                req,
                oid,
                origin,
                hops,
            } => {
                w.put_u8(T_LOOKUP_UP);
                w.put_u64(*req);
                w.put_u128(oid.0);
                put_endpoint(&mut w, *origin);
                w.put_u32(*hops);
            }
            GlsMsg::LookupDown {
                req,
                oid,
                origin,
                hops,
            } => {
                w.put_u8(T_LOOKUP_DOWN);
                w.put_u64(*req);
                w.put_u128(oid.0);
                put_endpoint(&mut w, *origin);
                w.put_u32(*hops);
            }
            GlsMsg::Insert {
                req,
                oid,
                addr,
                origin,
                store_level,
                hops,
            } => {
                w.put_u8(T_INSERT);
                w.put_u64(*req);
                w.put_u128(oid.0);
                addr.encode(&mut w);
                put_endpoint(&mut w, *origin);
                w.put_u8(store_level.tag());
                w.put_u32(*hops);
            }
            GlsMsg::Delete {
                req,
                oid,
                addr,
                origin,
                store_level,
                hops,
            } => {
                w.put_u8(T_DELETE);
                w.put_u64(*req);
                w.put_u128(oid.0);
                addr.encode(&mut w);
                put_endpoint(&mut w, *origin);
                w.put_u8(store_level.tag());
                w.put_u32(*hops);
            }
            GlsMsg::PointerAdd { oid, child } => {
                w.put_u8(T_PTR_ADD);
                w.put_u128(oid.0);
                w.put_u32(child.0);
            }
            GlsMsg::PointerDel { oid, child } => {
                w.put_u8(T_PTR_DEL);
                w.put_u128(oid.0);
                w.put_u32(child.0);
            }
            GlsMsg::LookupResp {
                req,
                status,
                addrs,
                hops,
            } => {
                w.put_u8(T_LOOKUP_RESP);
                w.put_u64(*req);
                w.put_u8(status.tag());
                w.put_u32(addrs.len() as u32);
                for a in addrs {
                    a.encode(&mut w);
                }
                w.put_u32(*hops);
            }
            GlsMsg::Ack { req, op, hops } => {
                w.put_u8(T_ACK);
                w.put_u64(*req);
                w.put_u8(op.tag());
                w.put_u32(*hops);
            }
        }
        w.finish()
    }

    /// Deserializes a message; total (never panics on malformed input).
    pub fn decode(buf: &[u8]) -> Result<GlsMsg, WireError> {
        let mut r = WireReader::new(buf);
        let tag = r.u8()?;
        let msg = match tag {
            T_LOOKUP_UP => GlsMsg::LookupUp {
                req: r.u64()?,
                oid: ObjectId(r.u128()?),
                origin: get_endpoint(&mut r)?,
                hops: r.u32()?,
            },
            T_LOOKUP_DOWN => GlsMsg::LookupDown {
                req: r.u64()?,
                oid: ObjectId(r.u128()?),
                origin: get_endpoint(&mut r)?,
                hops: r.u32()?,
            },
            T_INSERT => GlsMsg::Insert {
                req: r.u64()?,
                oid: ObjectId(r.u128()?),
                addr: ContactAddress::decode(&mut r)?,
                origin: get_endpoint(&mut r)?,
                store_level: Level::from_tag(r.u8()?)?,
                hops: r.u32()?,
            },
            T_DELETE => GlsMsg::Delete {
                req: r.u64()?,
                oid: ObjectId(r.u128()?),
                addr: ContactAddress::decode(&mut r)?,
                origin: get_endpoint(&mut r)?,
                store_level: Level::from_tag(r.u8()?)?,
                hops: r.u32()?,
            },
            T_PTR_ADD => GlsMsg::PointerAdd {
                oid: ObjectId(r.u128()?),
                child: DomainId(r.u32()?),
            },
            T_PTR_DEL => GlsMsg::PointerDel {
                oid: ObjectId(r.u128()?),
                child: DomainId(r.u32()?),
            },
            T_LOOKUP_RESP => {
                let req = r.u64()?;
                let status = Status::from_tag(r.u8()?)?;
                let n = r.u32()?;
                if n > 4096 {
                    return Err(WireError::TooLarge);
                }
                let mut addrs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    addrs.push(ContactAddress::decode(&mut r)?);
                }
                GlsMsg::LookupResp {
                    req,
                    status,
                    addrs,
                    hops: r.u32()?,
                }
            }
            T_ACK => GlsMsg::Ack {
                req: r.u64()?,
                op: AckOp::from_tag(r.u8()?)?,
                hops: r.u32()?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(h: u32, p: u16) -> ContactAddress {
        ContactAddress::new(Endpoint::new(HostId(h), p), 2, 1)
    }

    #[test]
    fn all_messages_round_trip() {
        let origin = Endpoint::new(HostId(7), 9000);
        let msgs = vec![
            GlsMsg::LookupUp {
                req: 1,
                oid: ObjectId(99),
                origin,
                hops: 3,
            },
            GlsMsg::LookupDown {
                req: 2,
                oid: ObjectId(100),
                origin,
                hops: 0,
            },
            GlsMsg::Insert {
                req: 3,
                oid: ObjectId(101),
                addr: addr(1, 2112),
                origin,
                store_level: Level::Site,
                hops: 1,
            },
            GlsMsg::Delete {
                req: 4,
                oid: ObjectId(102),
                addr: addr(2, 2112),
                origin,
                store_level: Level::Country,
                hops: 2,
            },
            GlsMsg::PointerAdd {
                oid: ObjectId(103),
                child: DomainId(5),
            },
            GlsMsg::PointerDel {
                oid: ObjectId(104),
                child: DomainId(6),
            },
            GlsMsg::LookupResp {
                req: 5,
                status: Status::Ok,
                addrs: vec![addr(1, 2112), addr(2, 2113)],
                hops: 4,
            },
            GlsMsg::LookupResp {
                req: 6,
                status: Status::NotFound,
                addrs: vec![],
                hops: 7,
            },
            GlsMsg::Ack {
                req: 7,
                op: AckOp::Insert,
                hops: 1,
            },
            GlsMsg::Ack {
                req: 8,
                op: AckOp::Delete,
                hops: 2,
            },
        ];
        for m in msgs {
            let buf = m.encode();
            assert_eq!(GlsMsg::decode(&buf).unwrap(), m, "round trip {m:?}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(GlsMsg::decode(&[]).is_err());
        assert!(GlsMsg::decode(&[0xEE]).is_err());
        assert!(GlsMsg::decode(&[T_LOOKUP_UP, 1, 2]).is_err());
        // Trailing bytes rejected.
        let mut buf = GlsMsg::PointerAdd {
            oid: ObjectId(1),
            child: DomainId(2),
        }
        .encode();
        buf.push(0);
        assert_eq!(GlsMsg::decode(&buf), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_addr_list_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(T_LOOKUP_RESP);
        w.put_u64(1);
        w.put_u8(0);
        w.put_u32(1_000_000); // absurd count
        let buf = w.finish();
        assert_eq!(GlsMsg::decode(&buf), Err(WireError::TooLarge));
    }
}
